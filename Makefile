# Developer entry points.  Everything assumes the repo root as cwd and
# needs no installation beyond python + numpy (+ pytest, pytest-benchmark;
# ruff for `make lint`, pinned in requirements-ci.txt).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench-large bench-gate loadgen-smoke loadgen-scale docs-check link-check lint all

all: docs-check test

## tier-1 test suite (the gate every change must keep green)
test:
	$(PYTHON) -m pytest -x -q

## fast benchmark pass: component micro-benches + engine head-to-head
## + serving throughput + batch fold-in + columnar-world compile/fit
## scaling + streaming-delta splice + observability overhead, writes
## benchmarks/results/bench_run.json and appends to
## benchmarks/results/bench_trajectory.jsonl
bench-smoke:
	cd benchmarks && PYTHONPATH=../src$(if $(PYTHONPATH),:$(PYTHONPATH)) \
		$(PYTHON) -m pytest bench_components.py bench_serving.py \
		bench_batch_foldin.py bench_columnar.py bench_delta.py \
		bench_journal.py bench_obs.py bench_query.py bench_scaling.py -q

## large-world scaling points (minutes + gigabytes): 50k partitioned
## head-to-head, 500k partitioned fit, 1M generate+compile -- then the
## env-gated baseline checks that only apply to these points
bench-large:
	cd benchmarks && BENCH_LARGE=1 \
		PYTHONPATH=../src$(if $(PYTHONPATH),:$(PYTHONPATH)) \
		$(PYTHON) -m pytest bench_components.py bench_serving.py \
		bench_batch_foldin.py bench_columnar.py bench_delta.py \
		bench_journal.py bench_obs.py bench_query.py bench_scaling.py -q
	BENCH_LARGE=1 $(PYTHON) tools/bench_gate.py

## short open-loop load runs against an in-process server -- once
## threaded, once through the multi-process topology (2 workers +
## coalescing front end); appends p50/p99 + rps to
## benchmarks/results/bench_trajectory.jsonl
loadgen-smoke:
	$(PYTHON) tools/loadgen.py --smoke --label loadgen_smoke
	$(PYTHON) tools/loadgen.py --smoke --workers 2 --label loadgen_smoke_mp

## multi-worker scaling demo: the identical cache-busting load against
## 1 then 4 workers, a loadgen_worker_scaling entry (rps_ratio) merged
## into bench_run.json, then the env-gated floor (4-worker rps >= 1.5x
## single-worker) checked by the baseline gate
loadgen-scale:
	$(PYTHON) tools/loadgen.py --smoke --compare-workers 1,4 \
		--label loadgen_scale
	LOADGEN_SCALE=1 $(PYTHON) tools/bench_gate.py

## perf-regression gate: compare bench_run.json against the committed
## baseline bands (run bench-smoke first)
bench-gate:
	$(PYTHON) tools/bench_gate.py

## fail if any public module or public function lacks a docstring
docs-check:
	$(PYTHON) tools/docs_check.py

## fail on broken relative links / anchors across README.md and docs/
link-check:
	$(PYTHON) tools/link_check.py

## ruff lint + format check (config in ruff.toml; formatting is adopted
## incrementally -- see the [format] exclude list there)
lint:
	ruff check .
	ruff format --check .
