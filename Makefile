# Developer entry points.  Everything assumes the repo root as cwd and
# needs no installation beyond python + numpy (+ pytest, pytest-benchmark).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke docs-check all

all: docs-check test

## tier-1 test suite (the gate every change must keep green)
test:
	$(PYTHON) -m pytest -x -q

## fast benchmark pass: component micro-benches + engine head-to-head
## + serving throughput + batch fold-in + columnar-world compile/fit
## scaling, writes benchmarks/results/bench_run.json and appends to
## benchmarks/results/bench_trajectory.jsonl
bench-smoke:
	cd benchmarks && PYTHONPATH=../src$(if $(PYTHONPATH),:$(PYTHONPATH)) \
		$(PYTHON) -m pytest bench_components.py bench_serving.py \
		bench_batch_foldin.py bench_columnar.py -q

## fail if any public module lacks a module docstring
docs-check:
	$(PYTHON) tools/docs_check.py
