"""Columnar-world benchmarks: compile once, share everywhere.

Measures the three claims the ``ColumnarWorld`` refactor makes:

1. **Sharded generation + compile scales**: a >= 50k-user synthetic
   world is generated shard-by-shard and compiled without ever
   materializing the object graph; compile time is journaled across
   world sizes (the docs/PERFORMANCE.md scaling table reads these
   entries).
2. **Compiled exactly once per fit**: a K-chain pooled fit and a
   serving fold-in predictor over the same world trigger **zero**
   additional compiles (``repro.data.columnar.compile_count`` is
   diffed around the whole flow).
3. **Arena setup >= 2x faster**: the vectorized engine's per-fit arena
   construction (the pre-refactor Python-loop offsets/concat/position-
   dict build, replicated here verbatim) is compared against the shared
   :meth:`~repro.core.priors.UserPriors.packed` layout; the packed
   build must be at least 2x faster, and its per-chain *reuse* is
   measured too (cache hit, effectively free).

Everything lands in ``benchmarks/results/bench_run.json`` via the
session journal.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.params import MLPParams
from repro.core.priors import UserPriors, build_user_priors
from repro.data import columnar
from repro.data.generator import SyntheticWorldConfig, generate_columnar_world

#: The acceptance-scale world: >= 50k users, sparse degrees so the
#: end-to-end fit stays a smoke test, 8 shards.
COLUMNAR_USERS = 50_000
COLUMNAR_SHARDS = 8
COLUMNAR_SEED = 1

_world_cache: dict[int, object] = {}


def _sharded_world(n_users: int):
    """Module-level world cache (generation is the expensive part)."""
    if n_users not in _world_cache:
        _world_cache[n_users] = generate_columnar_world(
            SyntheticWorldConfig(
                n_users=n_users,
                seed=COLUMNAR_SEED,
                mean_friends=3.0,
                mean_venues=4.0,
            ),
            shards=COLUMNAR_SHARDS,
        )
    return _world_cache[n_users]


def test_sharded_generate_and_compile_scaling(journal):
    """Generation+compile wall time across world sizes (zero objects)."""
    for n_users in (5_000, 20_000, COLUMNAR_USERS):
        _world_cache.pop(n_users, None)
        t0 = time.perf_counter()
        world = _sharded_world(n_users)
        seconds = time.perf_counter() - t0
        journal(
            "timing",
            name="columnar_generate_compile",
            users=n_users,
            shards=COLUMNAR_SHARDS,
            following=world.n_following,
            tweeting=world.n_tweeting,
            seconds=round(seconds, 3),
        )
        print(
            f"[columnar] generate+compile {n_users} users: "
            f"{seconds:.2f}s ({world.n_following} + {world.n_tweeting} edges)"
        )
    assert _sharded_world(COLUMNAR_USERS).n_users == COLUMNAR_USERS


def _legacy_arena_build(priors: UserPriors, n_loc: int):
    """The pre-refactor per-fit arena build, replicated op for op.

    This is exactly what ``VectorizedGibbsSampler._build_layout`` did
    before the shared packed layout existed: Python-loop offsets,
    per-user concatenations and per-user position dictionaries, all
    rebuilt for every sampler in every fit.
    """
    cands = priors.candidates
    gammas = priors.gamma
    n_users = len(cands)
    offsets = [0]
    for u in range(n_users):
        offsets.append(offsets[-1] + cands[u].size)
    arena_src = (
        np.concatenate([u * n_loc + cands[u] for u in range(n_users)])
        if n_users
        else np.empty(0, dtype=np.int64)
    )
    gamma_flat = (
        np.concatenate([gammas[u] for u in range(n_users)])
        if n_users
        else np.empty(0, dtype=np.float64)
    )
    gamma_vals = gamma_flat.tolist()
    arena_pos = [
        {int(loc): offsets[u] + p for p, loc in enumerate(cands[u])}
        for u in range(n_users)
    ]
    return offsets, arena_src, gamma_flat, gamma_vals, arena_pos


def test_arena_build_speedup(journal):
    """Shared packed arena build is >= 2x the pre-refactor build."""
    world = _sharded_world(COLUMNAR_USERS)
    params = MLPParams(n_iterations=2, burn_in=1, seed=0)
    t0 = time.perf_counter()
    priors = build_user_priors(world, params)
    priors_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    legacy = _legacy_arena_build(priors, world.n_locations)
    legacy_seconds = time.perf_counter() - t0

    # Fresh instance so packed() actually builds (same tuples, no copy).
    fresh = UserPriors(
        candidates=priors.candidates,
        gamma=priors.gamma,
        gamma_sum=priors.gamma_sum,
    )
    t0 = time.perf_counter()
    pack = fresh.packed()
    arena_src = pack.flat_candidates + world.n_locations * pack.slot_user
    packed_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    fresh.packed()  # cache hit: what chains 2..K of a pool pay
    reuse_seconds = time.perf_counter() - t0

    assert np.array_equal(arena_src, legacy[1])
    assert np.array_equal(pack.flat_gamma, legacy[2])
    speedup = legacy_seconds / packed_seconds
    journal(
        "timing",
        name="columnar_arena_build",
        users=world.n_users,
        priors_seconds=round(priors_seconds, 3),
        legacy_seconds=round(legacy_seconds, 3),
        packed_seconds=round(packed_seconds, 3),
        reuse_seconds=round(reuse_seconds, 6),
        speedup=round(speedup, 2),
    )
    print(
        f"[columnar] arena build: legacy {legacy_seconds:.3f}s, "
        f"packed {packed_seconds:.3f}s ({speedup:.1f}x), "
        f"reuse {reuse_seconds * 1e6:.0f}us"
    )
    assert speedup >= 2.0, (
        f"packed arena build only {speedup:.2f}x faster than the "
        "pre-refactor per-fit build (expected >= 2x)"
    )


def test_compile_once_pool_and_serving(journal):
    """K-chain fit + fold-in over one world: zero re-compiles, journaled."""
    from repro.core.model import MLPModel
    from repro.serving.foldin import FoldInPredictor

    world = _sharded_world(COLUMNAR_USERS)
    params = MLPParams(
        n_iterations=2,
        burn_in=1,
        seed=0,
        engine="vectorized",
        n_chains=2,
        track_edge_assignments=False,
    )
    before = columnar.compile_count()
    t0 = time.perf_counter()
    result = MLPModel(params).fit(world)
    fit_seconds = time.perf_counter() - t0
    compiles_fit = columnar.compile_count() - before

    t0 = time.perf_counter()
    predictor = FoldInPredictor(result)
    prediction = predictor.predict(predictor.spec_for_training_user(0))
    serve_seconds = time.perf_counter() - t0
    compiles_total = columnar.compile_count() - before

    journal(
        "timing",
        name="columnar_fit_end_to_end",
        users=world.n_users,
        chains=params.n_chains,
        engine=params.engine,
        iterations=params.n_iterations,
        fit_seconds=round(fit_seconds, 3),
        serve_seconds=round(serve_seconds, 3),
        compiles_during_fit=compiles_fit,
        compiles_total=compiles_total,
        predicted_home=prediction.home,
    )
    print(
        f"[columnar] {params.n_chains}-chain fit on {world.n_users} users: "
        f"{fit_seconds:.1f}s, fold-in {serve_seconds:.2f}s, "
        f"{compiles_total} re-compiles"
    )
    assert compiles_fit == 0, "fit re-compiled the already-compiled world"
    assert compiles_total == 0, "serving fold-in re-compiled the world"
    assert predictor.world is world
    assert result.posterior is not None and result.posterior.n_chains == 2
