"""Population-scale batch fold-in benchmark: 5k users in one pass.

The acceptance contract of the batch serving engine
(:mod:`repro.serving.batch`): on a 5k-user batch over the
population-scale world shape the roadmap targets (the sharded
generator's sparse-degree configuration, the same one
``bench_columnar.py`` scales to 50k), vectorized ``predict_batch``
sustains **at least 5x** the sequential per-user solve rate -- measured
here end to end through the public ``predict_batch`` API on the same
predictor tables, cache off, after asserting a bit-identity sample so
the speedup is provably not buying a different answer.

Also measured (all journaled into ``bench_run.json``):

- ``score_population`` wall time -- the "profile every unlabeled user"
  one-call path;
- cached replay of the same 5k batch (bulk LRU hits).

Note the density dependence documented in docs/PERFORMANCE.md: on
small dense worlds (mean degree ~10+) both paths are memory-bound and
the gap narrows to ~2-3x; the >= 5x contract is pinned to the sparse
population shape this benchmark models.
"""

import time

import numpy as np
import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_columnar_world
from repro.serving.batch import score_population
from repro.serving.foldin import FoldInPredictor

#: The population: 5k users in the sharded generator's sparse shape
#: (mean degree ~3 following / ~4 venues -- the 50k-world configuration
#: of bench_columnar.py, scaled to a batch the sequential path can
#: still traverse in seconds).
BATCH_USERS = 5_000
BATCH_WORLD = SyntheticWorldConfig(
    n_users=BATCH_USERS, seed=1, mean_friends=3.0, mean_venues=4.0
)
BATCH_PARAMS = MLPParams(
    n_iterations=10,
    burn_in=4,
    seed=0,
    engine="vectorized",
    track_edge_assignments=False,
)

#: Bit-identity sample size and sequential timing sample.
GOLDEN_SAMPLE = 100


@pytest.fixture(scope="module")
def fitted():
    """Fitted artifact shared by the fold-in benchmarks."""
    world = generate_columnar_world(BATCH_WORLD, shards=4)
    result = MLPModel(BATCH_PARAMS).fit(world)
    return world, result


def test_bench_batch_vs_sequential_throughput(fitted, journal):
    """The >= 5x batch-over-sequential contract, plus cached replay."""
    world, result = fitted
    # The cache must hold the whole population for the replay leg.
    batching = FoldInPredictor(
        result, artifact_id="bench-batch", cache_size=2 * BATCH_USERS
    )
    sequential = FoldInPredictor(
        result, artifact_id="bench-seq", batch_threshold=10**9
    )
    specs = [
        batching.spec_for_training_user(uid) for uid in range(BATCH_USERS)
    ]

    # Golden gate: the batch engine must return bit-identical solutions
    # before its throughput means anything.
    sample = specs[:GOLDEN_SAMPLE]
    for spec, batch_solution in zip(
        sample, batching.batch_engine.solve(sample)
    ):
        reference = sequential._solve(spec)
        assert np.array_equal(reference.phi, batch_solution.phi)
        assert np.array_equal(reference.theta, batch_solution.theta)
        assert reference.iterations == batch_solution.iterations
        assert reference.converged == batch_solution.converged

    # Sequential: the per-user solve loop (kernel caches now warm for
    # both predictors -- the golden gate above touched them).
    t0 = time.perf_counter()
    sequential_out = sequential.predict_batch(specs, use_cache=False)
    sequential_seconds = time.perf_counter() - t0
    sequential_rps = BATCH_USERS / sequential_seconds

    # Batch: same predictor tables, same specs, one vectorized pass.
    t0 = time.perf_counter()
    batch_out = batching.predict_batch(specs, use_cache=False)
    batch_seconds = time.perf_counter() - t0
    batch_rps = BATCH_USERS / batch_seconds

    assert all(
        a.profile == b.profile and a.iterations == b.iterations
        for a, b in zip(sequential_out, batch_out)
    )

    # Cached replay: prime once, then bulk LRU hits.
    batching.predict_batch(specs)
    t0 = time.perf_counter()
    cached_out = batching.predict_batch(specs)
    cached_seconds = time.perf_counter() - t0
    cached_rps = BATCH_USERS / cached_seconds
    assert all(p.from_cache for p in cached_out)

    speedup = batch_rps / sequential_rps
    journal(
        "timing",
        name="batch_foldin_throughput",
        users=BATCH_USERS,
        world={"mean_friends": 3.0, "mean_venues": 4.0},
        sequential_rps=sequential_rps,
        batch_rps=batch_rps,
        cached_batch_rps=cached_rps,
        batch_over_sequential=speedup,
        mean_iterations=float(
            np.mean([p.iterations for p in batch_out])
        ),
    )
    print(
        f"[batch-foldin] sequential {sequential_rps:.0f}/s  "
        f"batch {batch_rps:.0f}/s ({speedup:.1f}x)  "
        f"cached {cached_rps:.0f}/s"
    )
    assert speedup >= 5.0, (
        f"batch fold-in only {speedup:.2f}x over sequential on a "
        f"{BATCH_USERS}-user batch"
    )


def test_bench_score_population(fitted, journal):
    """One call profiles every unlabeled user of the world."""
    world, result = fitted
    t0 = time.perf_counter()
    predictions = score_population(world, result)
    seconds = time.perf_counter() - t0
    unlabeled = int((~world.labeled_mask).sum())
    assert len(predictions) == unlabeled
    assert all(p.home is not None for p in predictions.values())
    journal(
        "timing",
        name="score_population",
        users=world.n_users,
        unlabeled=unlabeled,
        seconds=seconds,
        users_per_second=unlabeled / seconds,
    )
    print(
        f"[batch-foldin] score_population: {unlabeled} unlabeled users "
        f"in {seconds:.2f}s"
    )
