"""Observability overhead benchmark: instrumented vs dark, same code.

The contract of the obs layer (:mod:`repro.obs`): measuring the system
must not slow it down measurably.  This bench times the vectorized
batch fold-in path -- the hottest serving path, where a per-spec cost
would hurt most -- twice over identical inputs: once with metrics
recording enabled (the default) and once with
``repro.obs.metrics.set_enabled(False)``, which turns every
``inc``/``observe`` into an early return on the *same* instrumented
code.  The ratio is gated at <= 1.05 (5% overhead) in
``benchmarks/results/baseline.json``.

Each round times both legs back to back (alternating order) and the
gate takes the median of the per-round ratios, so scheduler noise
cannot manufacture (or hide) an overhead; a bit-identity check first
proves the two legs computed the same thing, which is also the
read-only golden contract: metrics on or off, the predictions are the
same bits.
"""

import time

import numpy as np
import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_columnar_world
from repro.obs import metrics as obs_metrics
from repro.serving.foldin import FoldInPredictor

#: Same population shape as bench_batch_foldin.py, smaller batch: the
#: point is the ratio, not the absolute throughput.
OBS_USERS = 3_000
OBS_WORLD = SyntheticWorldConfig(
    n_users=OBS_USERS, seed=1, mean_friends=3.0, mean_venues=4.0
)
OBS_PARAMS = MLPParams(
    n_iterations=10,
    burn_in=4,
    seed=0,
    engine="vectorized",
    track_edge_assignments=False,
)

#: Timing rounds; each round times both legs back to back and the gate
#: uses the median of the per-round ratios.
REPEATS = 5


@pytest.fixture(scope="module")
def obs_predictor():
    """Fold-in predictor serving the overhead measurements."""
    world = generate_columnar_world(OBS_WORLD, shards=4)
    result = MLPModel(OBS_PARAMS).fit(world)
    predictor = FoldInPredictor(result, artifact_id="bench-obs")
    specs = [
        predictor.spec_for_training_user(uid) for uid in range(OBS_USERS)
    ]
    return predictor, specs


def _time_batch(predictor, specs) -> float:
    t0 = time.perf_counter()
    predictor.predict_batch(specs, use_cache=False)
    return time.perf_counter() - t0


def test_bench_obs_overhead(obs_predictor, journal):
    """Instrumentation overhead on the batch fold-in path, gated <= 5%."""
    predictor, specs = obs_predictor

    # Warm the kernel caches and prove read-only-ness: the same batch
    # solved with metrics on and off must be bit-identical.
    enabled_out = predictor.predict_batch(specs[:200], use_cache=False)
    previous = obs_metrics.set_enabled(False)
    try:
        dark_out = predictor.predict_batch(specs[:200], use_cache=False)
    finally:
        obs_metrics.set_enabled(previous)
    assert all(
        a.profile == b.profile
        and a.iterations == b.iterations
        and a.converged == b.converged
        for a, b in zip(enabled_out, dark_out)
    )

    # Time both legs back to back within each round (alternating which
    # goes first) and gate on the *median* of the per-round ratios:
    # adjacent-in-time pairs cancel drift, and the median shrugs off a
    # single lucky/unlucky run that would skew a min-vs-min comparison
    # on a noisy single-core CI box.
    enabled_times = []
    dark_times = []
    ratios = []
    for round_index in range(REPEATS):
        if round_index % 2 == 0:
            enabled = _time_batch(predictor, specs)
            previous = obs_metrics.set_enabled(False)
            try:
                dark = _time_batch(predictor, specs)
            finally:
                obs_metrics.set_enabled(previous)
        else:
            previous = obs_metrics.set_enabled(False)
            try:
                dark = _time_batch(predictor, specs)
            finally:
                obs_metrics.set_enabled(previous)
            enabled = _time_batch(predictor, specs)
        enabled_times.append(enabled)
        dark_times.append(dark)
        ratios.append(enabled / dark)

    enabled_best = min(enabled_times)
    dark_best = min(dark_times)
    overhead_ratio = float(np.median(ratios))
    journal(
        "timing",
        name="obs_overhead",
        users=OBS_USERS,
        repeats=REPEATS,
        enabled_seconds=enabled_best,
        dark_seconds=dark_best,
        overhead_ratio=overhead_ratio,
    )
    print(
        f"[obs] batch fold-in: enabled {enabled_best:.3f}s  "
        f"dark {dark_best:.3f}s  median ratio {overhead_ratio:.3f}"
    )
    assert overhead_ratio <= 1.05, (
        f"instrumentation overhead {overhead_ratio:.3f}x exceeds the "
        "5% budget on the batch fold-in path"
    )


def test_bench_metrics_render(journal):
    """Prometheus rendering cost of a populated registry (not gated)."""
    registry = obs_metrics.MetricsRegistry()
    latency = registry.histogram(
        "bench_render_seconds", "bench", labelnames=("route",)
    )
    rng = np.random.default_rng(0)
    for route in ("/a", "/b", "/c", "/d"):
        child = latency.labels(route=route)
        for value in rng.lognormal(-5.0, 0.5, 10_000):
            child.observe(value)
    t0 = time.perf_counter()
    for _ in range(100):
        text = obs_metrics.render_prometheus(registry)
    seconds = (time.perf_counter() - t0) / 100
    journal(
        "timing",
        name="obs_render",
        series=4,
        bytes=len(text),
        seconds_per_render=seconds,
    )
    print(f"[obs] render: {len(text)} bytes in {seconds * 1e3:.2f}ms")
