"""Fig. 5: Gibbs convergence (accuracy change per iteration).

The paper observes convergence in ~14 sweeps on its 160K-user corpus
and credits the candidacy-vector initialization.  The measured unit is
one full MLP fit with a per-sweep accuracy probe.
"""

from conftest import save_artifact

from repro.experiments import report


def test_fig5_convergence_trace(benchmark, suite, artifact_dir):
    result = benchmark.pedantic(lambda: suite.fig5, rounds=1, iterations=1)
    save_artifact(artifact_dir, "fig5", report.render_fig5(result))

    accuracies = result.accuracies
    assert len(accuracies) == suite.config.mlp.n_iterations
    # Late-chain accuracy must comfortably exceed the first sweep's.
    early = accuracies[0]
    late = sum(accuracies[-5:]) / 5
    assert late > early
    # Accuracy changes must shrink: the paper's Fig. 5 shape.
    changes = result.accuracy_changes
    first_half = sum(changes[: len(changes) // 2])
    second_half = sum(changes[len(changes) // 2 :])
    assert second_half <= first_half * 1.5
