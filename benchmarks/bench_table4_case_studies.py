"""Table 4: multi-location discovery case studies.

Reuses the Table 3 runs; measures case selection + rendering.  The
paper's point: MLP lists both true regions, the baseline lists one
region and its neighbours.
"""

from conftest import save_artifact

from repro.experiments import report, tables


def test_table4_case_studies(benchmark, suite, artifact_dir):
    multi = suite.multi_results
    result = benchmark(
        tables.table4, suite.dataset, multi["MLP"], multi["BaseU"]
    )
    save_artifact(artifact_dir, "table4", report.render_table4(result))

    assert len(result.rows) == 3
    for row in result.rows:
        assert len(row.true_locations) >= 2
        assert len(row.mlp_locations) == 2
