"""Component micro-benchmarks: honest multi-round timings of the
building blocks (no paper artifact attached).

These give pytest-benchmark real statistics and catch performance
regressions in the hot paths: world generation, prior construction,
one Gibbs sweep (both engines), distance-matrix construction, venue
extraction.  The loop-vs-vectorized head-to-head runs on the *medium*
dataset (below) and records its numbers to the JSON journal.
"""

import time

import pytest

from repro.core.gibbs import GibbsSampler
from repro.core.params import MLPParams
from repro.core.priors import build_user_priors
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.engine import VectorizedGibbsSampler
from repro.geo.coords import pairwise_distance_matrix
from repro.geo.us_cities import builtin_gazetteer
from repro.text.venues import VenueExtractor

#: The medium synthetic dataset of the engine head-to-head: a
#: follow-dominated corpus in the spirit of the paper's Twitter crawl
#: (following relationships outnumber venue mentions roughly 5:1, and a
#: celebrity-noise share matching the rho_f prior below).  Medium sits
#: between the 400-user micro world here and the 1500-user default
#: experiment scale.
MEDIUM_WORLD = SyntheticWorldConfig(
    n_users=1200,
    seed=11,
    mean_friends=30.0,
    mean_venues=6.0,
    noise_following=0.35,
)
MEDIUM_PARAMS = MLPParams(n_iterations=4, burn_in=0, seed=1, rho_f=0.35)


@pytest.fixture(scope="module")
def bench_world():
    """Small world for component micro-benchmarks."""
    return generate_world(SyntheticWorldConfig(n_users=400, seed=3))


@pytest.fixture(scope="module")
def medium_world():
    """Mid-size world for the heavier component benches."""
    return generate_world(MEDIUM_WORLD)


def test_bench_world_generation(benchmark):
    """Generate a 400-user world from scratch."""
    ds = benchmark.pedantic(
        lambda: generate_world(SyntheticWorldConfig(n_users=400, seed=3)),
        rounds=3,
        iterations=1,
    )
    assert ds.n_users == 400


def test_bench_distance_matrix(benchmark):
    """All-pairs haversine over the full gazetteer (~517 cities)."""
    gaz = builtin_gazetteer()
    lats, lons = gaz.lats, gaz.lons
    mat = benchmark(pairwise_distance_matrix, lats, lons)
    assert mat.shape[0] == len(gaz)


def test_bench_build_priors(benchmark, bench_world):
    """Candidacy vectors + gamma priors for every user."""
    params = MLPParams()
    priors = benchmark(build_user_priors, bench_world, params)
    assert priors.n_users == bench_world.n_users


def test_bench_gibbs_sweep(benchmark, bench_world):
    """One full Gibbs sweep over all relationships (the inner loop)."""
    params = MLPParams(n_iterations=2, burn_in=0, seed=1)
    sampler = GibbsSampler(bench_world, params)
    sampler.initialize()
    sampler.sweep()  # warm the chain
    benchmark.pedantic(sampler.sweep, rounds=3, iterations=1)


def test_bench_gibbs_sweep_vectorized(benchmark, bench_world):
    """The same sweep on the vectorized engine (identical chain)."""
    params = MLPParams(n_iterations=2, burn_in=0, seed=1)
    sampler = VectorizedGibbsSampler(bench_world, params)
    sampler.initialize()
    sampler.sweep()  # warm the chain and build the layout
    benchmark.pedantic(sampler.sweep, rounds=3, iterations=1)


def _sustained_sweep_seconds(sampler, sweeps: int, repeats: int) -> float:
    """Best sustained per-sweep time over several measurement windows."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(sweeps):
            sampler.sweep()
        best = min(best, (time.perf_counter() - start) / sweeps)
    return best


def test_bench_engine_head_to_head(medium_world, artifact_dir, journal):
    """Loop vs vectorized on the medium dataset: same chain, wall clock.

    Both engines run the identical chain (same seed, bit-identical
    states -- the golden tests prove it), so the comparison is pure
    implementation speed.  The measured speedup and the per-engine
    sweep times land in the JSON journal and in
    ``results/engine_head_to_head.txt``.  The hard floor asserted here
    is a regression guard; the issue-level target (>= 3x) is recorded
    as a flag because single-core hosts top out around 2.5-2.9x -- see
    docs/PERFORMANCE.md for why bit-identity caps the ratio.
    """
    loop = GibbsSampler(medium_world, MEDIUM_PARAMS)
    vec = VectorizedGibbsSampler(medium_world, MEDIUM_PARAMS)
    loop.initialize()
    vec.initialize()
    for _ in range(3):  # warm both chains past the cold start
        loop.sweep()
        vec.sweep()
    loop_s = _sustained_sweep_seconds(loop, sweeps=4, repeats=2)
    vec_s = _sustained_sweep_seconds(vec, sweeps=4, repeats=2)
    speedup = loop_s / vec_s
    edges = medium_world.n_following + medium_world.n_tweeting
    summary = (
        f"engine head-to-head (medium dataset: {medium_world.n_users} users, "
        f"{edges} relationships)\n"
        f"  loop       {loop_s * 1e3:8.1f} ms/sweep "
        f"({loop_s / edges * 1e6:.1f} us/edge)\n"
        f"  vectorized {vec_s * 1e3:8.1f} ms/sweep "
        f"({vec_s / edges * 1e6:.1f} us/edge)\n"
        f"  speedup    {speedup:8.2f}x"
    )
    (artifact_dir / "engine_head_to_head.txt").write_text(summary + "\n")
    print()
    print(summary)
    journal(
        "timing",
        bench="engine_head_to_head",
        n_users=medium_world.n_users,
        n_relationships=edges,
        loop_seconds_per_sweep=loop_s,
        vectorized_seconds_per_sweep=vec_s,
        speedup=speedup,
        meets_3x_target=bool(speedup >= 3.0),
    )
    assert speedup >= 2.0, (
        f"vectorized engine regressed: only {speedup:.2f}x over loop"
    )


def test_bench_venue_extraction(benchmark):
    """Extract venues from 200 tweets against the full gazetteer."""
    gaz = builtin_gazetteer()
    extractor = VenueExtractor(gaz)
    texts = [
        f"heading from round rock to los angeles then {city.city.lower()}"
        for city in list(gaz)[:200]
    ]

    def run():
        return sum(len(extractor.extract(t)) for t in texts)

    count = benchmark(run)
    assert count >= 400
