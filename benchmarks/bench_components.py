"""Component micro-benchmarks: honest multi-round timings of the
building blocks (no paper artifact attached).

These give pytest-benchmark real statistics and catch performance
regressions in the hot paths: world generation, prior construction,
one Gibbs sweep, distance-matrix construction, venue extraction.
"""

import numpy as np
import pytest

from repro.core.gibbs import GibbsSampler
from repro.core.params import MLPParams
from repro.core.priors import build_user_priors
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.geo.coords import pairwise_distance_matrix
from repro.geo.us_cities import builtin_gazetteer
from repro.text.venues import VenueExtractor


@pytest.fixture(scope="module")
def bench_world():
    return generate_world(SyntheticWorldConfig(n_users=400, seed=3))


def test_bench_world_generation(benchmark):
    """Generate a 400-user world from scratch."""
    ds = benchmark.pedantic(
        lambda: generate_world(SyntheticWorldConfig(n_users=400, seed=3)),
        rounds=3,
        iterations=1,
    )
    assert ds.n_users == 400


def test_bench_distance_matrix(benchmark):
    """All-pairs haversine over the full gazetteer (~517 cities)."""
    gaz = builtin_gazetteer()
    lats, lons = gaz.lats, gaz.lons
    mat = benchmark(pairwise_distance_matrix, lats, lons)
    assert mat.shape[0] == len(gaz)


def test_bench_build_priors(benchmark, bench_world):
    """Candidacy vectors + gamma priors for every user."""
    params = MLPParams()
    priors = benchmark(build_user_priors, bench_world, params)
    assert priors.n_users == bench_world.n_users


def test_bench_gibbs_sweep(benchmark, bench_world):
    """One full Gibbs sweep over all relationships (the inner loop)."""
    params = MLPParams(n_iterations=2, burn_in=0, seed=1)
    sampler = GibbsSampler(bench_world, params)
    sampler.initialize()
    sampler.sweep()  # warm the chain
    benchmark.pedantic(sampler.sweep, rounds=3, iterations=1)


def test_bench_venue_extraction(benchmark):
    """Extract venues from 200 tweets against the full gazetteer."""
    gaz = builtin_gazetteer()
    extractor = VenueExtractor(gaz)
    texts = [
        f"heading from round rock to los angeles then {city.city.lower()}"
        for city in list(gaz)[:200]
    ]

    def run():
        return sum(len(extractor.extract(t)) for t in texts)

    count = benchmark(run)
    assert count >= 400
