"""Table 5: per-edge assignments of one two-location user's followers.

Reuses the Fig. 8 fit; measures case extraction + rendering.
"""

from conftest import save_artifact

from repro.experiments import report, tables


def test_table5_explanation_case_study(benchmark, suite, artifact_dir):
    mlp_result = suite.mlp_full_prediction.detail  # shared with Fig. 8
    result = benchmark(tables.table5, suite.dataset, mlp_result)
    save_artifact(artifact_dir, "table5", report.render_table5(result))

    assert result.rows, "the profiled user must have explained followers"
    # Geo-group application: assignments must name real cities.
    for row in result.rows:
        assert "," in row.assigned_user_location
        assert "," in row.assigned_follower_location
