"""Shared benchmark fixtures and the machine-readable run journal.

One :class:`ExperimentSuite` is shared across all benchmark modules, so
the five method fits behind Table 2 / Fig. 4, the multi-location runs
behind Table 3 / Figs. 6-7 and the explanation fit behind Fig. 8 /
Table 5 are each computed exactly once per session.  The *first* bench
touching an artifact pays its cost (and that is the number to read);
benches that reuse shared results measure only their incremental work
and say so in their docstrings.

Every bench writes its rendered artifact to ``benchmarks/results/`` so
a bench run leaves the full set of paper tables/figures on disk.

**Machine-readable output.**  Benches additionally call
:func:`record_json` with structured measurements; at session end the
journal is written to ``benchmarks/results/bench_run.json`` together
with interpreter/library/host metadata, so performance history can be
tracked across machines and commits (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentSuite

#: Scale of the benchmark campaign.  Large enough that method ordering
#: is stable, small enough that the full harness runs in minutes.
BENCH_USERS = 900
BENCH_SEED = 11

RESULTS_DIR = Path(__file__).parent / "results"

#: Structured measurements accumulated over one pytest session.
_JOURNAL: list[dict] = []


def bench_config() -> ExperimentConfig:
    """Benchmark-scale experiment configuration."""
    return ExperimentConfig(
        world=SyntheticWorldConfig(n_users=BENCH_USERS, seed=BENCH_SEED),
        mlp=MLPParams(
            n_iterations=28, burn_in=11, seed=0, track_edge_assignments=False
        ),
        n_folds=1,
        max_multi_cohort=200,
    )


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    """Experiment suite over the benchmark config."""
    return ExperimentSuite(bench_config())


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    """Session-scoped directory for benchmark artifacts."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(artifact_dir: Path, name: str, text: str) -> None:
    """Write a rendered table/figure and echo it to the log."""
    (artifact_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
    record_json("artifact", name=name, path=str(artifact_dir / f"{name}.txt"))


def record_json(kind: str, **payload) -> None:
    """Append one structured measurement to the session journal.

    ``kind`` groups entries (``"timing"``, ``"artifact"``, ...); the
    payload is whatever the bench wants to persist -- numbers, not
    prose.  The journal lands in ``benchmarks/results/bench_run.json``.
    """
    _JOURNAL.append({"kind": kind, **payload})


@pytest.fixture(scope="session")
def journal():
    """The :func:`record_json` recorder, as a fixture.

    Benches take this instead of importing from conftest -- fixture
    resolution works under every pytest import mode, a cross-conftest
    import only under the default rootdir sys.path insertion.
    """
    return record_json


def _git_commit() -> str | None:
    """Best-effort current commit id, for the trajectory journal."""
    import subprocess

    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).parent,
            check=True,
        ).stdout.strip()
    except Exception:
        return None


def pytest_sessionfinish(session, exitstatus):
    """Persist the journal with enough metadata to compare runs.

    ``bench_run.json`` is the full snapshot of *this* run, overwritten
    by design; the perf *trajectory* accumulates in
    ``bench_trajectory.jsonl``: one appended line per run holding the
    timing entries plus commit, exit status and host metadata, so
    local performance history survives across runs (CI checkouts are
    fresh, so each uploaded artifact holds its own run; the stored
    per-PR artifacts are the cross-PR record).
    """
    if not _JOURNAL:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "exit_status": int(exitstatus),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "platform": platform.platform(),
        "entries": _JOURNAL,
    }
    out = RESULTS_DIR / "bench_run.json"
    out.write_text(json.dumps(run, indent=2) + "\n")
    print(f"\n[bench] wrote {len(_JOURNAL)} journal entries -> {out}")
    trajectory_entry = {
        **{k: v for k, v in run.items() if k != "entries"},
        "commit": _git_commit(),
        "timings": [e for e in _JOURNAL if e.get("kind") == "timing"],
    }
    trajectory = RESULTS_DIR / "bench_trajectory.jsonl"
    with trajectory.open("a") as f:
        f.write(json.dumps(trajectory_entry) + "\n")
    print(f"[bench] appended run to {trajectory}")
