"""Shared benchmark fixtures.

One :class:`ExperimentSuite` is shared across all benchmark modules, so
the five method fits behind Table 2 / Fig. 4, the multi-location runs
behind Table 3 / Figs. 6-7 and the explanation fit behind Fig. 8 /
Table 5 are each computed exactly once per session.  The *first* bench
touching an artifact pays its cost (and that is the number to read);
benches that reuse shared results measure only their incremental work
and say so in their docstrings.

Every bench writes its rendered artifact to ``benchmarks/results/`` so
a bench run leaves the full set of paper tables/figures on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentSuite
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig

#: Scale of the benchmark campaign.  Large enough that method ordering
#: is stable, small enough that the full harness runs in minutes.
BENCH_USERS = 900
BENCH_SEED = 11

RESULTS_DIR = Path(__file__).parent / "results"


def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        world=SyntheticWorldConfig(n_users=BENCH_USERS, seed=BENCH_SEED),
        mlp=MLPParams(
            n_iterations=28, burn_in=11, seed=0, track_edge_assignments=False
        ),
        n_folds=1,
        max_multi_cohort=200,
    )


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    return ExperimentSuite(bench_config())


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(artifact_dir: Path, name: str, text: str) -> None:
    """Write a rendered table/figure and echo it to the log."""
    (artifact_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
