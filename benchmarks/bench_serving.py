"""Serving-layer benchmarks: artifact I/O and fold-in throughput.

Measures the three serving paths end to end on a fresh (not
suite-shared) fitted world:

- **artifact round-trip** -- ``save_result`` / ``load_result`` wall
  time and on-disk size;
- **cold single-user fold-in** -- one request per call, cache cleared
  between calls (the worst case: every request solves the fixed
  point);
- **cached + batched serving** -- the production path: batched
  requests answered from the LRU cache.

All numbers land in the JSON journal
(``benchmarks/results/bench_run.json``); the headline assertion is the
serving-layer contract that batched cached throughput beats the cold
single-user path by >= 10x.
"""

import time

import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.serving.artifacts import load_result, save_result
from repro.serving.foldin import FoldInPredictor

#: Serving-bench world: big enough that a fold-in solve does real
#: linear algebra, small enough that the one-time fit stays seconds.
SERVING_WORLD = SyntheticWorldConfig(n_users=300, seed=13)
SERVING_PARAMS = MLPParams(
    n_iterations=16,
    burn_in=6,
    seed=0,
    engine="vectorized",
    track_edge_assignments=False,
)

#: How many distinct training users the throughput measurements replay.
N_REQUEST_USERS = 60


@pytest.fixture(scope="module")
def fitted_result():
    """Fitted model shared by the serving benchmarks."""
    dataset = generate_world(SERVING_WORLD)
    return MLPModel(SERVING_PARAMS).fit(dataset)


@pytest.fixture(scope="module")
def artifact_path(fitted_result, tmp_path_factory):
    """Saved .mlp.npz artifact path."""
    path = tmp_path_factory.mktemp("serving") / "model.mlp.npz"
    save_result(fitted_result, path)
    return path


@pytest.fixture(scope="module")
def predictor(artifact_path):
    """Fold-in predictor loaded from the saved artifact."""
    return FoldInPredictor(load_result(artifact_path), artifact_id="bench")


def test_bench_artifact_round_trip(fitted_result, tmp_path, journal):
    """Save + load wall time and compressed size of one artifact."""
    path = tmp_path / "roundtrip.mlp.npz"
    t0 = time.perf_counter()
    save_result(fitted_result, path)
    save_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    loaded = load_result(path)
    load_seconds = time.perf_counter() - t0
    assert loaded.profiles == fitted_result.profiles
    journal(
        "timing",
        name="serving_artifact_round_trip",
        save_seconds=save_seconds,
        load_seconds=load_seconds,
        artifact_bytes=path.stat().st_size,
        users=fitted_result.dataset.n_users,
    )


def test_bench_fold_in_throughput(predictor, journal):
    """Cold vs cached, single vs batched fold-in serving throughput.

    The acceptance contract: batched cached serving sustains at least
    10x the cold single-user request rate (in practice the gap is
    orders of magnitude -- a cache hit is one dict lookup).
    """
    specs = [
        predictor.spec_for_training_user(uid)
        for uid in range(N_REQUEST_USERS)
    ]

    # Cold single-user: every request pays the full fixed-point solve.
    t0 = time.perf_counter()
    for spec in specs:
        predictor.cache.clear()
        prediction = predictor.predict(spec)
        assert prediction.home is not None
    cold_seconds = time.perf_counter() - t0
    cold_rps = len(specs) / cold_seconds

    # Cold through the batch API: past the crossover size this now
    # runs the vectorized batch engine (bench_batch_foldin.py measures
    # it at population scale; here it shows up as cold batched > cold
    # single even on a small dense world).
    predictor.cache.clear()
    t0 = time.perf_counter()
    predictor.predict_batch(specs)
    batched_cold_seconds = time.perf_counter() - t0
    batched_cold_rps = len(specs) / batched_cold_seconds

    # Cached batched: the steady-state serving path.  The batch above
    # primed the cache; replay it enough times for a stable timing.
    rounds = 20
    t0 = time.perf_counter()
    for _ in range(rounds):
        predictions = predictor.predict_batch(specs)
    cached_seconds = time.perf_counter() - t0
    assert all(p.from_cache for p in predictions)
    cached_rps = rounds * len(specs) / cached_seconds

    speedup = cached_rps / cold_rps
    journal(
        "timing",
        name="serving_throughput",
        requests=len(specs),
        cold_single_rps=cold_rps,
        cold_batched_rps=batched_cold_rps,
        cached_batched_rps=cached_rps,
        cached_over_cold_speedup=speedup,
        cache=predictor.cache.stats(),
    )
    assert speedup >= 10.0, (
        f"cached+batched serving only {speedup:.1f}x over cold single-user"
    )


def test_bench_unseen_user_fold_in(predictor, journal):
    """Latency of scoring genuinely new users (no cache reuse)."""
    dataset = predictor.dataset
    labeled = list(dataset.labeled_user_ids)
    from repro.serving.foldin import UserSpec

    specs = [
        UserSpec(friends=(labeled[i % len(labeled)],
                          labeled[(i * 7 + 1) % len(labeled)]),
                 venues=(dataset.tweeting[i % dataset.n_tweeting].venue_id,))
        for i in range(30)
    ]
    t0 = time.perf_counter()
    predictions = predictor.predict_batch(specs, use_cache=False)
    seconds = time.perf_counter() - t0
    assert all(p.home is not None for p in predictions)
    journal(
        "timing",
        name="serving_unseen_user_fold_in",
        requests=len(specs),
        rps=len(specs) / seconds,
        mean_iterations=sum(p.iterations for p in predictions)
        / len(predictions),
    )
