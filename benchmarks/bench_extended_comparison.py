"""Extended comparisons beyond the paper's five methods.

Two extra reference points sharpen the paper's argument:

- **BaseUDI** (the authors' earlier unified single-location model,
  citation [11]): on *home* prediction it is competitive with MLP
  (unification carries that task), but it cannot discover multiple
  locations or explain relationships -- the capabilities the paper's
  other two tasks measure.
- **NeighborVote** (Macskassy & Provost): the distance-blind collective
  classifier Sec. 2 argues must fail.

Plus the geo-grouping application (Sec. 5.3) made quantitative.
"""


from conftest import save_artifact

from repro.baselines import MajorityNeighborBaseline, UnifiedInfluenceBaseline
from repro.evaluation.geo_groups import mean_grouping_score
from repro.evaluation.metrics import accuracy_at
from repro.evaluation.significance import paired_bootstrap


def test_extended_home_prediction(benchmark, suite, artifact_dir):
    """MLP vs BaseUDI vs NeighborVote on the shared holdout."""
    split = suite.splits[0]
    test = list(split.test_user_ids)
    truth = list(split.test_truth)
    gaz = suite.dataset.gazetteer

    def run_extras():
        udi = UnifiedInfluenceBaseline().predict(split.train_dataset)
        vote = MajorityNeighborBaseline().predict(split.train_dataset)
        return udi, vote

    udi, vote = benchmark.pedantic(run_extras, rounds=1, iterations=1)

    accs = {
        name: result.accuracy_at(suite.dataset)
        for name, result in suite.home_results.items()
    }
    accs["BaseUDI"] = accuracy_at(gaz, [udi.home_of(u) for u in test], truth)
    accs["NeighborVote"] = accuracy_at(
        gaz, [vote.home_of(u) for u in test], truth
    )

    lines = ["Extended Home Prediction Comparison (ACC@100)", "-" * 64]
    for name in (
        "NeighborVote", "BaseC", "BaseU", "BaseUDI", "MLP_U", "MLP_C", "MLP",
    ):
        lines.append(f"  {name:<14s} {accs[name]:6.1%}")
    save_artifact(artifact_dir, "extended_table2", "\n".join(lines))

    # Unified single-location is competitive on the home task; MLP must
    # stay within statistical range of it here (its edge shows on the
    # multi-location and explanation tasks BaseUDI cannot attempt).
    assert accs["MLP"] > accs["BaseUDI"] - 0.05
    # Sec. 2's claim: distance-aware BaseU beats distance-blind voting.
    assert accs["BaseU"] >= accs["NeighborVote"] - 0.02


def test_mlp_vs_baseu_significance(benchmark, suite, artifact_dir):
    """Paired bootstrap of the MLP-vs-BaseU gap (Table 2's headline)."""
    mlp = suite.home_results["MLP"]
    baseu = suite.home_results["BaseU"]

    cmp = benchmark(
        paired_bootstrap,
        suite.dataset.gazetteer,
        mlp.predictions,
        baseu.predictions,
        mlp.truths,
        name_a="MLP",
        name_b="BaseU",
        seed=0,
    )
    text = (
        "Significance: MLP vs BaseU (paired bootstrap, ACC@100)\n"
        + "-" * 64
        + f"\n  MLP {cmp.accuracy_a:.1%} vs BaseU {cmp.accuracy_b:.1%}"
        + f"\n  gap {cmp.mean_gap:+.1%}  95% CI [{cmp.ci_low:+.1%}, {cmp.ci_high:+.1%}]"
        + f"\n  P(MLP beats BaseU) = {cmp.p_a_beats_b:.3f}"
    )
    save_artifact(artifact_dir, "significance_mlp_vs_baseu", text)
    assert cmp.accuracy_a > cmp.accuracy_b
    assert cmp.p_a_beats_b > 0.8


def test_geo_grouping_quality(benchmark, suite, artifact_dir):
    """Sec. 5.3 application: follower geo-groups vs ground truth."""
    result = suite.mlp_full_prediction.detail
    dataset = suite.dataset
    top_users = sorted(
        range(dataset.n_users),
        key=lambda u: -len(dataset.followers_of[u]),
    )[:30]

    def compute():
        predicted = {uid: result.geo_groups(uid) for uid in top_users}
        return mean_grouping_score(dataset, predicted)

    score = benchmark(compute)
    text = (
        "Geo-Group Quality (30 most-followed users)\n"
        + "-" * 64
        + f"\n  purity              {score.purity:6.1%}"
        + f"\n  pairwise precision  {score.pairwise_precision:6.1%}"
        + f"\n  pairwise recall     {score.pairwise_recall:6.1%}"
        + f"\n  pairwise F1         {score.pairwise_f1:6.1%}"
        + f"\n  followers compared  {score.n_followers}"
    )
    save_artifact(artifact_dir, "geo_grouping", text)
    assert score.purity > 0.6
    assert score.pairwise_f1 > 0.4
