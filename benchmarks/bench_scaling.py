"""Scaling study: sampler cost and accuracy versus corpus size.

The paper argues complexity "scales with the number of observed
relationships rather than the number of user pairs" (Sec. 4.4).  This
bench fits MLP at three corpus sizes and checks that per-relationship
sweep cost stays flat (linear total cost) while accuracy holds.
"""

import time


from conftest import save_artifact

from repro.core.gibbs import GibbsSampler
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.evaluation.metrics import accuracy_at
from repro.evaluation.splits import single_holdout_split

SIZES = (200, 400, 800)


def _sweep_cost_and_accuracy(n_users: int) -> tuple[float, float, int]:
    """(seconds per relationship-sweep, ACC@100, n relationships)."""
    world = generate_world(SyntheticWorldConfig(n_users=n_users, seed=29))
    split = single_holdout_split(world, 0.2, seed=0)
    params = MLPParams(
        n_iterations=10, burn_in=4, seed=0, track_edge_assignments=False
    )
    sampler = GibbsSampler(split.train_dataset, params)
    sampler.initialize()
    start = time.time()
    for _ in range(3):
        sampler.sweep()
    per_sweep = (time.time() - start) / 3.0
    n_rel = world.n_following + world.n_tweeting
    # Finish the schedule to read an accuracy.
    for _ in range(params.n_iterations - 3):
        sampler.sweep()
        sampler.state.accumulate_theta_snapshot()
    homes = sampler.current_home_estimates()
    acc = accuracy_at(
        world.gazetteer,
        [int(homes[u]) for u in split.test_user_ids],
        list(split.test_truth),
    )
    return per_sweep / n_rel, acc, n_rel


def test_scaling_linear_in_relationships(benchmark, artifact_dir):
    rows = benchmark.pedantic(
        lambda: [_sweep_cost_and_accuracy(n) for n in SIZES],
        rounds=1,
        iterations=1,
    )
    lines = ["Scaling: sweep cost vs corpus size", "-" * 64]
    lines.append(f"{'users':>7s}  {'relations':>10s}  {'us/rel/sweep':>13s}  {'ACC@100':>8s}")
    for n_users, (cost, acc, n_rel) in zip(SIZES, rows):
        lines.append(
            f"{n_users:7d}  {n_rel:10d}  {cost * 1e6:13.1f}  {acc:8.1%}"
        )
    save_artifact(artifact_dir, "scaling", "\n".join(lines))

    costs = [cost for cost, _acc, _n in rows]
    # Per-relationship cost must not blow up with corpus size: the
    # 4x-larger corpus may cost at most ~2.5x more per relationship
    # (candidate sets grow slowly with density, not with N).
    assert costs[-1] < costs[0] * 2.5
    # Accuracy does not degrade with scale.
    accs = [acc for _c, acc, _n in rows]
    assert accs[-1] >= accs[0] - 0.05
