"""Scaling study: sampler cost versus corpus size, small to 1M users.

Three tiers:

1. **Always on** -- the paper's Sec. 4.4 claim that complexity "scales
   with the number of observed relationships rather than the number of
   user pairs": fit MLP at three small corpus sizes and check that
   per-relationship sweep cost stays flat while accuracy holds.
2. **Gated (BENCH_LARGE=1)** -- the 50k-user partitioned-vs-vectorized
   head-to-head behind the committed ``partitioned_over_vectorized``
   bench-gate floor, and a 500k-user partitioned fit journaled with
   wall time and peak RSS (the "journaled time/memory budget").
3. **Gated (BENCH_LARGE=1)** -- the million-user generate+compile
   point: sharded columnar generation straight into a compiled world,
   with the per-arena memory ledger journaled.

The large points take minutes and gigabytes, so CI runs skip them by
default; ``make bench-large`` opts in.  Their journal entries carry
``requires_env`` baselines in ``benchmarks/results/baseline.json``, so
the gate checks them exactly when they ran.
"""

import os
import resource
import time

import pytest

from conftest import save_artifact

from repro.core.gibbs import GibbsSampler
from repro.core.params import MLPParams
from repro.data.generator import (
    SyntheticWorldConfig,
    generate_columnar_world,
    generate_world,
)
from repro.engine.factory import make_sampler
from repro.evaluation.metrics import accuracy_at
from repro.evaluation.splits import single_holdout_split

SIZES = (200, 400, 800)

BENCH_LARGE = os.environ.get("BENCH_LARGE", "") not in ("", "0")
large = pytest.mark.skipif(
    not BENCH_LARGE,
    reason="large-world scaling points run only with BENCH_LARGE=1 "
    "(make bench-large)",
)


def _peak_rss_mb() -> float:
    """Process peak resident set size in MiB (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _per_sweep_seconds(sampler, sweeps: int) -> float:
    sampler.initialize()
    sampler.sweep()  # pay one-time layout builds outside the timed window
    start = time.perf_counter()
    for _ in range(sweeps):
        sampler.sweep()
    return (time.perf_counter() - start) / sweeps


def _sweep_cost_and_accuracy(n_users: int) -> tuple[float, float, int]:
    """(seconds per relationship-sweep, ACC@100, n relationships)."""
    world = generate_world(SyntheticWorldConfig(n_users=n_users, seed=29))
    split = single_holdout_split(world, 0.2, seed=0)
    params = MLPParams(
        n_iterations=10, burn_in=4, seed=0, track_edge_assignments=False
    )
    sampler = GibbsSampler(split.train_dataset, params)
    sampler.initialize()
    start = time.time()
    for _ in range(3):
        sampler.sweep()
    per_sweep = (time.time() - start) / 3.0
    n_rel = world.n_following + world.n_tweeting
    # Finish the schedule to read an accuracy.
    for _ in range(params.n_iterations - 3):
        sampler.sweep()
        sampler.state.accumulate_theta_snapshot()
    homes = sampler.current_home_estimates()
    acc = accuracy_at(
        world.gazetteer,
        [int(homes[u]) for u in split.test_user_ids],
        list(split.test_truth),
    )
    return per_sweep / n_rel, acc, n_rel


def test_scaling_linear_in_relationships(benchmark, artifact_dir):
    rows = benchmark.pedantic(
        lambda: [_sweep_cost_and_accuracy(n) for n in SIZES],
        rounds=1,
        iterations=1,
    )
    lines = ["Scaling: sweep cost vs corpus size", "-" * 64]
    lines.append(f"{'users':>7s}  {'relations':>10s}  {'us/rel/sweep':>13s}  {'ACC@100':>8s}")
    for n_users, (cost, acc, n_rel) in zip(SIZES, rows):
        lines.append(
            f"{n_users:7d}  {n_rel:10d}  {cost * 1e6:13.1f}  {acc:8.1%}"
        )
    save_artifact(artifact_dir, "scaling", "\n".join(lines))

    costs = [cost for cost, _acc, _n in rows]
    # Per-relationship cost must not blow up with corpus size: the
    # 4x-larger corpus may cost at most ~2.5x more per relationship
    # (candidate sets grow slowly with density, not with N).
    assert costs[-1] < costs[0] * 2.5
    # Accuracy does not degrade with scale.
    accs = [acc for _c, acc, _n in rows]
    assert accs[-1] >= accs[0] - 0.05


@large
def test_partitioned_head_to_head_50k(artifact_dir, journal):
    """The bench-gate point: partitioned(n_jobs=4) vs vectorized, 50k.

    Per-sweep wall time over identical worlds and schedules; the
    machine-independent ratio carries the committed >= 2x floor.
    """
    n_users, sweeps = 50_000, 3
    world = generate_columnar_world(
        SyntheticWorldConfig(n_users=n_users, seed=29), shards=16
    )

    def sampler(engine, n_jobs=1):
        params = MLPParams(
            engine=engine, n_jobs=n_jobs, seed=0, n_iterations=sweeps + 2,
            burn_in=1, track_edge_assignments=False,
        )
        return make_sampler(world, params)

    vec_seconds = _per_sweep_seconds(sampler("vectorized"), sweeps)
    part = sampler("partitioned", n_jobs=4)
    part_seconds = _per_sweep_seconds(part, sweeps)
    ratio = vec_seconds / part_seconds
    stats = part.partition.stats()

    lines = [
        "Partitioned head-to-head (50k users, n_jobs=4)", "-" * 64,
        f"vectorized     {vec_seconds:8.2f} s/sweep",
        f"partitioned    {part_seconds:8.2f} s/sweep",
        f"speedup        {ratio:8.2f}x",
        f"colors={stats['n_colors']}  conflict_edges={stats['conflict_edges']}"
        f"  largest_block={stats['largest_block']}",
        f"peak RSS       {_peak_rss_mb():8.0f} MiB",
    ]
    save_artifact(artifact_dir, "partitioned_head_to_head", "\n".join(lines))
    journal(
        "timing",
        name="partitioned_head_to_head",
        n_users=n_users,
        n_jobs=4,
        vectorized_seconds_per_sweep=vec_seconds,
        partitioned_seconds_per_sweep=part_seconds,
        partitioned_over_vectorized=ratio,
        n_colors=stats["n_colors"],
        peak_rss_mb=_peak_rss_mb(),
    )
    assert ratio >= 2.0


@large
def test_partitioned_fit_500k(artifact_dir, journal):
    """A 500k-user partitioned fit inside the journaled budget.

    The budget is deliberately loose -- an order-of-magnitude tripwire
    for the single-core container, not a tuned bound: the fit must
    finish its schedule in under 30 minutes and under 24 GiB peak RSS.
    """
    n_users = 500_000
    t0 = time.perf_counter()
    world = generate_columnar_world(
        SyntheticWorldConfig(n_users=n_users, seed=29), shards=64
    )
    gen_seconds = time.perf_counter() - t0
    params = MLPParams(
        engine="partitioned", n_jobs=4, seed=0, n_iterations=8, burn_in=3,
        track_edge_assignments=False,
    )
    t0 = time.perf_counter()
    sampler = make_sampler(world, params)
    trace = sampler.run()
    fit_seconds = time.perf_counter() - t0
    rss = _peak_rss_mb()

    lines = [
        "Partitioned fit (500k users, n_jobs=4)", "-" * 64,
        f"generate+compile {gen_seconds:8.1f} s",
        f"fit ({params.n_iterations} sweeps) {fit_seconds:8.1f} s",
        f"noise fraction   {trace.noise_following_fractions()[-1]:8.3f}",
        f"peak RSS         {rss:8.0f} MiB",
    ]
    save_artifact(artifact_dir, "partitioned_fit_500k", "\n".join(lines))
    journal(
        "timing",
        name="partitioned_fit_500k",
        n_users=n_users,
        generate_seconds=gen_seconds,
        fit_seconds=fit_seconds,
        n_iterations=params.n_iterations,
        peak_rss_mb=rss,
    )
    assert fit_seconds < 1800
    assert rss < 24 * 1024


@large
def test_million_user_generate_compile(artifact_dir, journal):
    """The 1M-user generate+compile presence point with memory ledger."""
    n_users = 1_000_000
    t0 = time.perf_counter()
    world = generate_columnar_world(
        SyntheticWorldConfig(n_users=n_users, seed=29), shards=128
    )
    seconds = time.perf_counter() - t0
    report = world.memory_report()
    rss = _peak_rss_mb()

    lines = [
        "Million-user world: sharded generate + compile", "-" * 64,
        f"users={world.n_users}  following={world.n_following}  "
        f"tweeting={world.n_tweeting}",
        f"generate+compile {seconds:8.1f} s",
        f"arena bytes      {report['total_bytes'] / 2**20:8.0f} MiB",
        f"peak RSS         {rss:8.0f} MiB",
    ]
    save_artifact(artifact_dir, "million_user_world", "\n".join(lines))
    journal(
        "timing",
        name="million_user_generate_compile",
        n_users=n_users,
        generate_seconds=seconds,
        n_following=world.n_following,
        n_tweeting=world.n_tweeting,
        arena_bytes=report["total_bytes"],
        peak_rss_mb=rss,
    )
    assert world.n_users == n_users
