"""Table 3: multiple location discovery DP@2 / DR@2.

Paper's numbers (Sec 5.2): MLP 50.6% DP@2 / 47.0% DR@2, beating BaseU
(33.8/27.2) and BaseC (39.3/33.1); the recall gap is the headline (+14%
over baselines) because single-location methods can only find one
region and its neighbours.

Heavy bench: five method runs over the cohort-hidden dataset.
"""

from conftest import save_artifact

from repro.experiments import report


def test_table3_multi_location_discovery(benchmark, suite, artifact_dir):
    result = benchmark.pedantic(lambda: suite.table3, rounds=1, iterations=1)
    save_artifact(artifact_dir, "table3", report.render_table3(result))

    dp, dr = result.dp, result.dr
    # Recall: MLP must clearly beat both baselines (the paper's +14%).
    assert dr["MLP"] > dr["BaseU"]
    assert dr["MLP"] > dr["BaseC"]
    # Precision: MLP at least matches the best baseline.
    assert dp["MLP"] >= max(dp["BaseU"], dp["BaseC"]) - 0.03
    # Single-source MLP variants also beat their baselines on recall.
    assert dr["MLP_U"] > dr["BaseU"]
    assert dr["MLP_C"] > dr["BaseC"]
