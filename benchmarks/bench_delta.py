"""Streaming-delta benchmarks: splice vs recompile, ingest throughput.

Measures the two claims the streaming ingest layer makes:

1. **Delta apply beats full recompile >= 10x** on the acceptance shape
   (a 50k-user sparse world absorbing 1% arrivals): the spliced world
   is first golden-gated to be *bit-identical* to the from-scratch
   ``ColumnarWorld.from_edge_arrays`` compile (a wrong-but-fast apply
   must fail loudly, not win the ratio), then both paths are timed
   interleaved and the median ratio asserted.
2. **Sustained ingest throughput**: a stream of small deltas applied
   back to back, journaled as rows/second -- the number capacity
   planning reads (one "row" = one arriving user, edge or mention).

Everything lands in ``benchmarks/results/bench_run.json`` via the
session journal, which the CI perf gate (``tools/bench_gate.py``)
checks against the committed baseline.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro.data.columnar import WORLD_ARRAY_KEYS, ColumnarWorld
from repro.data.delta import WorldDelta, apply_delta
from repro.data.generator import SyntheticWorldConfig, generate_columnar_world

#: The acceptance shape: 50k users, sparse degrees (the sharded
#: generator's population profile), 1% arrivals per delta.
DELTA_USERS = 50_000
DELTA_SHARDS = 8
DELTA_SEED = 1
ARRIVAL_FRACTION = 0.01

_world_cache: dict[int, ColumnarWorld] = {}


def _base_world(n_users: int = DELTA_USERS) -> ColumnarWorld:
    if n_users not in _world_cache:
        _world_cache[n_users] = generate_columnar_world(
            SyntheticWorldConfig(
                n_users=n_users,
                seed=DELTA_SEED,
                mean_friends=3.0,
                mean_venues=4.0,
            ),
            shards=DELTA_SHARDS,
        )
    return _world_cache[n_users]


def _arrival_delta(
    world: ColumnarWorld,
    rng: np.random.Generator,
    fraction: float,
    n_users: int | None = None,
) -> WorldDelta:
    """``fraction`` of the world arrives: labeled users + edges + mentions.

    ``n_users`` overrides the current population (used when deltas for
    a stream are built ahead of the applies that grow the world).
    """
    n = world.n_users if n_users is None else n_users
    n_new = max(1, int(world.n_users * fraction))
    new_ids = np.arange(n, n + n_new)
    new_users = [
        int(rng.integers(world.n_locations)) if rng.random() < 0.8 else None
        for _ in range(n_new)
    ]
    src = np.repeat(new_ids, 3)
    dst = rng.integers(0, n, size=src.size)
    keep = src != dst
    tweet_user = np.repeat(new_ids, 4)
    tweet_venue = rng.integers(0, world.n_venues, size=tweet_user.size)
    return WorldDelta(
        new_users=new_users,
        edges=list(zip(src[keep].tolist(), dst[keep].tolist())),
        tweets=list(zip(tweet_user.tolist(), tweet_venue.tolist())),
    )


def _recompile_inputs(world: ColumnarWorld, delta: WorldDelta):
    observed = np.concatenate([world.observed_location, delta.new_user_labels])
    observed[delta.label_users] = delta.label_locations
    return dict(
        observed_location=observed,
        edge_src=np.concatenate([world.edge_src, delta.edge_src]),
        edge_dst=np.concatenate([world.edge_dst, delta.edge_dst]),
        tweet_user=np.concatenate([world.tweet_user, delta.tweet_user]),
        tweet_venue=np.concatenate([world.tweet_venue, delta.tweet_venue]),
    )


def test_delta_apply_beats_full_recompile(journal):
    """Golden-gated speed claim: >= 10x vs from-scratch on 1% arrivals."""
    world = _base_world()
    rng = np.random.default_rng(7)
    delta = _arrival_delta(world, rng, ARRIVAL_FRACTION)
    world.content_hash  # the chained hash pays the base digest once

    inputs = _recompile_inputs(world, delta)
    applied = apply_delta(world, delta)
    scratch = ColumnarWorld.from_edge_arrays(world.gazetteer, **inputs)
    # The bit-identity gate comes first: a splice that drifted from the
    # from-scratch compile must fail here, never win the timing below.
    for key in WORLD_ARRAY_KEYS:
        assert np.array_equal(getattr(applied, key), getattr(scratch, key)), (
            f"delta-applied world differs from recompile in {key}"
        )
    assert applied.rehash() == scratch.rehash()

    apply_times: list[float] = []
    recompile_times: list[float] = []
    for _ in range(7):
        start = time.perf_counter()
        apply_delta(world, delta)
        apply_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        ColumnarWorld.from_edge_arrays(world.gazetteer, **inputs)
        recompile_times.append(time.perf_counter() - start)
    apply_s = statistics.median(apply_times)
    recompile_s = statistics.median(recompile_times)
    ratio = recompile_s / apply_s
    journal(
        "timing",
        name="delta_apply_vs_recompile",
        users=world.n_users,
        arrivals=delta.n_new_users,
        delta_edges=delta.n_edges,
        delta_tweets=delta.n_tweets,
        apply_ms=round(apply_s * 1000, 3),
        recompile_ms=round(recompile_s * 1000, 3),
        ratio=round(ratio, 2),
    )
    print(
        f"\n[delta] apply {apply_s * 1000:.1f} ms vs recompile "
        f"{recompile_s * 1000:.1f} ms on {world.n_users} users "
        f"({delta.n_new_users} arrivals): {ratio:.1f}x"
    )
    assert ratio >= 10.0, (
        f"delta apply only {ratio:.1f}x faster than full recompile "
        f"({apply_s * 1000:.1f} ms vs {recompile_s * 1000:.1f} ms)"
    )


def test_ingest_stream_throughput(journal):
    """Sustained ingest: a stream of small deltas, journaled as rows/s."""
    world = _base_world()
    world.content_hash
    rng = np.random.default_rng(11)
    current = world
    rows = 0
    deltas = []
    n_virtual = world.n_users
    for _ in range(20):
        delta = _arrival_delta(world, rng, 0.0005, n_users=n_virtual)
        n_virtual += delta.n_new_users
        deltas.append(delta)
        rows += delta.n_new_users + delta.n_edges + delta.n_tweets
    start = time.perf_counter()
    for delta in deltas:
        current = apply_delta(current, delta)
    elapsed = time.perf_counter() - start
    journal(
        "timing",
        name="delta_ingest_stream",
        users=world.n_users,
        deltas=len(deltas),
        rows=rows,
        seconds=round(elapsed, 4),
        rows_per_second=round(rows / elapsed),
        final_generation=current.generation,
    )
    print(
        f"\n[delta] streamed {len(deltas)} deltas ({rows} rows) in "
        f"{elapsed * 1000:.1f} ms -> {rows / elapsed:,.0f} rows/s, "
        f"generation {current.generation}"
    )
    assert current.generation == len(deltas)
    assert rows / elapsed > 1_000
