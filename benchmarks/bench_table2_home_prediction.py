"""Table 2: home location prediction ACC@100 for the five methods.

Paper's numbers (Sec 5.1): BaseU 52.44%, BaseC 49.67%, MLP_U 58.8%,
MLP_C 55.3%, MLP 62.3%.  The reproduction checks the *shape*: each MLP
variant beats its same-resource baseline and full MLP beats everything.

This is the heavy bench: it runs all five methods (three of them full
Gibbs fits) on the shared holdout, once.
"""

from conftest import save_artifact

from repro.experiments import report


def test_table2_five_method_comparison(benchmark, suite, artifact_dir):
    result = benchmark.pedantic(
        lambda: suite.table2, rounds=1, iterations=1
    )
    acc = result.accuracies
    save_artifact(artifact_dir, "table2", report.render_table2(result))

    # The paper's ordering claims (Sec. 5.1).
    assert acc["MLP_U"] >= acc["BaseU"] - 0.03, "MLP_U should match/beat BaseU"
    assert acc["MLP_C"] > acc["BaseC"], "MLP_C should beat BaseC"
    assert acc["MLP"] == max(acc.values()), "full MLP should win overall"
    assert acc["MLP"] > 0.4, "absolute accuracy should be substantial"
