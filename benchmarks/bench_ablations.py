"""Ablation benches: the design choices DESIGN.md calls out.

Each bench removes one mechanism of MLP and checks the direction of the
paper's corresponding claim.  These run at a reduced scale (the point
is the *pairing*, both variants see identical data and schedule).
"""

import pytest

from conftest import save_artifact

from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.evaluation.splits import single_holdout_split
from repro.experiments import ablations


@pytest.fixture(scope="module")
def ablation_world():
    """Shared mid-size world for the ablation benchmarks."""
    return generate_world(SyntheticWorldConfig(n_users=500, seed=17))


@pytest.fixture(scope="module")
def ablation_split(ablation_world):
    """Single holdout split over the ablation world."""
    return single_holdout_split(ablation_world, 0.2, seed=0)


@pytest.fixture(scope="module")
def ablation_params():
    """Baseline MLP parameters the ablations vary."""
    return MLPParams(
        n_iterations=22, burn_in=9, seed=0, track_edge_assignments=False
    )


def test_ablation_noise_mixture(
    benchmark, ablation_world, ablation_split, ablation_params, artifact_dir
):
    """Sec. 4.2: modeling noisy relationships should not hurt, and the
    mixture must identify noise (checked in tests); accuracy with the
    mixture stays within noise of -- or above -- the ablated variant."""
    outcomes = benchmark.pedantic(
        ablations.ablate_noise_mixture,
        args=(ablation_world, ablation_split, ablation_params),
        rounds=1,
        iterations=1,
    )
    save_artifact(
        artifact_dir,
        "ablation_noise_mixture",
        ablations.render_ablation("noise mixture (Sec 4.2)", outcomes),
    )
    with_noise, without_noise = outcomes
    assert with_noise.accuracy >= without_noise.accuracy - 0.05


def test_ablation_supervision(
    benchmark, ablation_world, ablation_split, ablation_params, artifact_dir
):
    """Sec. 4.3: without the label boost the 'hidden clusters of near
    locations would be floating' -- accuracy must drop sharply."""
    outcomes = benchmark.pedantic(
        ablations.ablate_supervision,
        args=(ablation_world, ablation_split, ablation_params),
        rounds=1,
        iterations=1,
    )
    save_artifact(
        artifact_dir,
        "ablation_supervision",
        ablations.render_ablation("partial supervision (Sec 4.3)", outcomes),
    )
    with_boost, without_boost = outcomes
    assert with_boost.accuracy > without_boost.accuracy + 0.05


def test_ablation_candidacy(benchmark, artifact_dir):
    """Sec. 4.3: candidacy vectors 'greatly improve the efficiency' --
    the full-gazetteer variant must be much slower and no better.

    Runs at a reduced scale: the ablated variant scores every one of
    the 517 gazetteer cities for every assignment, which is exactly the
    blow-up the paper's candidacy vectors exist to avoid.
    """
    world = generate_world(SyntheticWorldConfig(n_users=250, seed=17))
    split = single_holdout_split(world, 0.2, seed=0)
    params = MLPParams(
        n_iterations=10, burn_in=4, seed=0, track_edge_assignments=False
    )
    outcomes = benchmark.pedantic(
        ablations.ablate_candidacy,
        args=(world, split, params),
        rounds=1,
        iterations=1,
    )
    save_artifact(
        artifact_dir,
        "ablation_candidacy",
        ablations.render_ablation("candidacy vectors (Sec 4.3)", outcomes),
    )
    with_cand, full_gaz = outcomes
    assert full_gaz.seconds > with_cand.seconds * 2
    assert with_cand.accuracy >= full_gaz.accuracy - 0.05


def test_ablation_gibbs_em(
    benchmark, ablation_world, ablation_split, ablation_params, artifact_dir
):
    """Sec. 4.5: Gibbs-EM refinement of (alpha, beta).  Refits must not
    degrade accuracy, and refined laws stay decaying (alpha < 0)."""
    outcomes = benchmark.pedantic(
        ablations.ablate_gibbs_em,
        args=(ablation_world, ablation_split, ablation_params),
        rounds=1,
        iterations=1,
    )
    save_artifact(
        artifact_dir,
        "ablation_gibbs_em",
        ablations.render_ablation("Gibbs-EM rounds (Sec 4.5)", outcomes),
    )
    accs = [o.accuracy for o in outcomes]
    assert max(accs[1:]) >= accs[0] - 0.05
    assert all("alpha=-" in o.detail for o in outcomes)
