"""Prediction-index maintenance benchmark: refresh vs full rebuild at 50k.

The query layer's acceptance contract (ISSUE 10 / ROADMAP): after an
ingest delta on the 50k-user population shape, the **incremental**
index refresh (re-score only touched users, merge over retained rows)
must beat a from-scratch ``PredictionIndex.build`` by **at least 5x**
-- and the refreshed index must be *bit-identical* to the rebuild, so
the speedup provably does not buy a different answer.  The golden gate
runs before any timing, exactly like ``bench_delta.py``.

Also journaled (never gated -- wall-clock is machine-dependent): the
initial index build time and per-route query latencies over the 50k
index, the numbers capacity planning reads.

Everything lands in ``benchmarks/results/bench_run.json``; the
``refresh_over_rebuild`` ratio is floor-checked by the committed
baseline (``tools/bench_gate.py``).
"""

from __future__ import annotations

import statistics
import time

import numpy as np
import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.delta import WorldDelta
from repro.data.generator import SyntheticWorldConfig, generate_columnar_world
from repro.query import PredictionIndex, QueryService
from repro.serving.foldin import FoldInPredictor

#: The acceptance shape: 50k users in the sharded generator's sparse
#: configuration (same world as bench_columnar.py / bench_delta.py).
QUERY_USERS = 50_000
QUERY_SHARDS = 8
QUERY_SEED = 1

#: Short fit -- the index projects the posterior, it does not care how
#: converged it is (same tradeoff as bench_columnar's end-to-end fit).
QUERY_PARAMS = MLPParams(
    n_iterations=2,
    burn_in=1,
    seed=0,
    engine="vectorized",
    track_edge_assignments=False,
)

#: Arrival fraction per delta: 0.1% of the population.
ARRIVAL_FRACTION = 0.001

TIMING_ROUNDS = 3


@pytest.fixture(scope="module")
def predictor():
    """50k-user fitted predictor shared by the query benches."""
    world = generate_columnar_world(
        SyntheticWorldConfig(
            n_users=QUERY_USERS,
            seed=QUERY_SEED,
            mean_friends=3.0,
            mean_venues=4.0,
        ),
        shards=QUERY_SHARDS,
    )
    result = MLPModel(QUERY_PARAMS).fit(world)
    return FoldInPredictor(result, artifact_id="bench-query")


def _arrival_delta(predictor, rng) -> WorldDelta:
    """0.1% arrivals with edges into the existing population."""
    n = predictor.world.n_users
    n_new = max(1, int(n * ARRIVAL_FRACTION))
    new_ids = np.arange(n, n + n_new)
    new_users = [
        int(rng.integers(predictor.n_locations)) if rng.random() < 0.8
        else None
        for _ in range(n_new)
    ]
    src = np.repeat(new_ids, 3)
    dst = rng.integers(0, n, size=src.size)
    keep = src != dst
    tweet_user = np.repeat(new_ids, 4)
    tweet_venue = rng.integers(0, predictor.n_venues, size=tweet_user.size)
    return WorldDelta(
        new_users=new_users,
        edges=list(zip(src[keep].tolist(), dst[keep].tolist())),
        tweets=list(zip(tweet_user.tolist(), tweet_venue.tolist())),
    )


def test_bench_index_refresh_vs_rebuild(predictor, journal):
    """Golden-gated speed claim: refresh >= 5x over full rebuild."""
    start = time.perf_counter()
    index = PredictionIndex.build(predictor)
    initial_s = time.perf_counter() - start
    rng = np.random.default_rng(7)
    predictor.refresh(_arrival_delta(predictor, rng))

    # Bit-identity gate before any timing: a refresh that drifted from
    # the from-scratch rebuild must fail here, never win the ratio.
    refreshed = index.refreshed(predictor)
    rebuilt = PredictionIndex.build(predictor)
    assert refreshed.generation == predictor.world.generation
    assert refreshed.same_projection(rebuilt), (
        "refreshed index differs from a from-scratch rebuild"
    )

    refresh_times: list[float] = []
    rebuild_times: list[float] = []
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        index.refreshed(predictor)
        refresh_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        PredictionIndex.build(predictor)
        rebuild_times.append(time.perf_counter() - start)
    refresh_s = statistics.median(refresh_times)
    rebuild_s = statistics.median(rebuild_times)
    ratio = rebuild_s / refresh_s
    journal(
        "timing",
        name="query_index_refresh",
        users=predictor.world.n_users,
        indexed_users=len(rebuilt),
        arrivals=predictor.world.n_users - QUERY_USERS,
        initial_build_ms=round(initial_s * 1000, 3),
        refresh_ms=round(refresh_s * 1000, 3),
        rebuild_ms=round(rebuild_s * 1000, 3),
        refresh_over_rebuild=round(ratio, 2),
    )
    print(
        f"\n[query] refresh {refresh_s * 1000:.1f} ms vs rebuild "
        f"{rebuild_s * 1000:.1f} ms on {len(rebuilt)} indexed users: "
        f"{ratio:.1f}x"
    )
    assert ratio >= 5.0, (
        f"incremental refresh only {ratio:.1f}x faster than a full "
        f"rebuild ({refresh_s * 1000:.1f} ms vs {rebuild_s * 1000:.1f} ms)"
    )


def test_bench_query_latency(predictor, journal):
    """Per-route answer latency over the 50k index (journal only)."""
    service = QueryService(predictor)
    targets = [
        ("radius", "/query/radius", "radius=500&lat=40&lon=-95&limit=100"),
        ("top_cities", "/query/top-cities", "k=25"),
        (
            "venue_residents",
            "/query/venue-residents",
            "venue_id=0&limit=100",
        ),
        ("aggregate", "/query/aggregate", "by=state"),
    ]
    service.answer("/query/top-cities", "")  # pay the lazy build once
    latencies = {}
    for kind, route, query in targets:
        times = []
        for _ in range(5):
            start = time.perf_counter()
            service.answer(route, query)
            times.append(time.perf_counter() - start)
        latencies[kind] = round(statistics.median(times) * 1000, 3)
    journal(
        "timing",
        name="query_route_latency",
        users=predictor.world.n_users,
        indexed_users=len(service.current_index()),
        **{f"{kind}_ms": ms for kind, ms in latencies.items()},
    )
    print(f"\n[query] route latencies (ms): {latencies}")
    # Array scans over a 50k projection: anything near a second means
    # the index degenerated into per-user work.
    assert max(latencies.values()) < 1000
