"""Fig. 4: accumulative accuracy at distance (AAD) curves.

Reuses the Table 2 method fits (shared suite); the measured unit is the
curve computation over the pooled predictions.
"""

from conftest import save_artifact

from repro.experiments import figures, report


def test_fig4_aad_curves(benchmark, suite, artifact_dir):
    home_results = suite.home_results  # shared with Table 2
    result = benchmark(figures.fig4, suite.dataset, home_results)

    save_artifact(
        artifact_dir,
        "fig4",
        "\n\n".join(
            [
                report.render_fig4(result, methods=("BaseU", "MLP_U"))
                + "\n(Fig 4a: user-based performance)",
                report.render_fig4(result, methods=("BaseC", "MLP_C"))
                + "\n(Fig 4b: content-based performance)",
                report.render_fig4(
                    result, methods=("BaseU", "BaseC", "MLP_U", "MLP_C", "MLP")
                )
                + "\n(Fig 4c: overall performance)",
            ]
        ),
    )

    # Curves are monotone and MLP dominates at the 100-mile point.
    idx_100 = list(result.mile_grid).index(100.0)
    for curve in result.curves.values():
        assert list(curve) == sorted(curve)
    mlp_at_100 = result.curves["MLP"][idx_100]
    assert all(
        mlp_at_100 >= result.curves[m][idx_100]
        for m in ("BaseU", "BaseC", "MLP_U", "MLP_C")
    )
