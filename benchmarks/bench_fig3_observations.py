"""Fig. 3(a)-(c): the observation studies of Sec. 4.1 / 4.2.

These are cheap measurements over the corpus (no model fits), so they
get honest multi-round timings.
"""

from conftest import save_artifact

from repro.experiments import figures, report


def test_fig3a_following_probability_curve(benchmark, suite, artifact_dir):
    """Bucket labeled pairs by distance and fit the power law."""
    result = benchmark(figures.fig3a, suite.dataset)
    assert result.law.alpha < 0
    save_artifact(artifact_dir, "fig3a", report.render_fig3a(result))


def test_fig3b_tweeting_probabilities(benchmark, suite, artifact_dir):
    """Per-city venue multinomials of labeled users."""
    result = benchmark(figures.fig3b, suite.dataset)
    assert result.top_venues[0] and result.top_venues[1]
    save_artifact(artifact_dir, "fig3b", report.render_fig3b(result))


def test_fig3c_mixture_case_study(benchmark, suite, artifact_dir):
    """Split a two-location user's relationships by region."""
    result = benchmark(figures.fig3c, suite.dataset)
    assert len(result.true_locations) == 2
    save_artifact(artifact_dir, "fig3c", report.render_fig3c(result))
