"""Figs. 6-7: DP@K and DR@K at ranks 1..3.

Reuses the Table 3 method runs; the measured unit is the rank sweep
itself.  The paper's observation: baseline recall barely grows with K
(they rediscover one region's neighbours), MLP's recall keeps growing.
"""

from conftest import save_artifact

from repro.experiments import figures, report


def test_fig6_dp_at_ranks(benchmark, suite, artifact_dir):
    multi = suite.multi_results  # shared with Table 3
    result = benchmark(figures.fig6, suite.dataset, multi)
    save_artifact(artifact_dir, "fig6", report.render_rank_sweep(result))
    # MLP beats baselines at every K (the paper's first observation).
    for idx in range(len(result.ranks)):
        assert result.values["MLP"][idx] >= result.values["BaseC"][idx] - 0.02


def test_fig7_dr_at_ranks(benchmark, suite, artifact_dir):
    multi = suite.multi_results
    result = benchmark(figures.fig7, suite.dataset, multi)
    save_artifact(artifact_dir, "fig7", report.render_rank_sweep(result))

    # DR grows with K for every method...
    for values in result.values.values():
        assert list(values) == sorted(values)
    # ...but MLP gains more from K=1 to K=3 than the baselines gain
    # (the paper's second observation: baselines are not good at
    # discovering *multiple* locations).
    def gain(name):
        return result.values[name][-1] - result.values[name][0]

    assert gain("MLP") > 0
    assert result.values["MLP"][-1] > result.values["BaseU"][-1]
    assert result.values["MLP"][-1] > result.values["BaseC"][-1]
