"""Durable-ingest benchmarks: journal append and recovery replay.

Measures the two claims the write-ahead journal makes:

1. **Append throughput**: journaling a delta (validate, encode,
   CRC, write) must not gate ingest.  Rows/second are journaled for
   the batched-fsync policy (the production setting for bulk loads)
   and, for reference, the fsync-per-append policy that makes every
   acknowledged delta crash-proof.
2. **Recovery beats recompile**: after a compaction, restarting from
   snapshot + tail replay must be faster than recompiling the world
   from scratch -- otherwise the snapshot machinery is pure overhead.
   The recovered world is first golden-gated bit-identical to the
   live one (a wrong-but-fast recovery must fail loudly, not win the
   ratio).

Both land in ``benchmarks/results/bench_run.json`` via the session
journal; the CI perf gate pins the machine-independent numbers
(``rows_per_second`` floor, ``replay_over_recompile`` ratio).
"""

from __future__ import annotations

import statistics
import tempfile
import time

import numpy as np

from repro.data.columnar import WORLD_ARRAY_KEYS, ColumnarWorld
from repro.data.delta import WorldDelta
from repro.data.generator import SyntheticWorldConfig, generate_columnar_world
from repro.data.journal import DeltaJournal, append_and_apply, open_journal

#: A mid-size sparse world: big enough that recompiles cost real time,
#: small enough that snapshot IO stays benchmark-friendly.
JOURNAL_USERS = 20_000
JOURNAL_SHARDS = 4
JOURNAL_SEED = 2
N_DELTAS = 24
COMPACT_AT = 20  # snapshot here; recovery replays the 4-delta tail

_world_cache: dict[int, ColumnarWorld] = {}


def _base_world(n_users: int = JOURNAL_USERS) -> ColumnarWorld:
    if n_users not in _world_cache:
        _world_cache[n_users] = generate_columnar_world(
            SyntheticWorldConfig(
                n_users=n_users,
                seed=JOURNAL_SEED,
                mean_friends=3.0,
                mean_venues=4.0,
            ),
            shards=JOURNAL_SHARDS,
        )
    return _world_cache[n_users]


def _arrival_delta(
    world: ColumnarWorld, rng: np.random.Generator, n_users: int
) -> WorldDelta:
    """0.1% arrivals against a virtual population of ``n_users``."""
    n_new = max(1, world.n_users // 1000)
    new_ids = np.arange(n_users, n_users + n_new)
    new_users = [
        int(rng.integers(world.n_locations)) if rng.random() < 0.8 else None
        for _ in range(n_new)
    ]
    src = np.repeat(new_ids, 3)
    dst = rng.integers(0, n_users, size=src.size)
    keep = src != dst
    tweet_user = np.repeat(new_ids, 4)
    tweet_venue = rng.integers(0, world.n_venues, size=tweet_user.size)
    return WorldDelta(
        new_users=new_users,
        edges=list(zip(src[keep].tolist(), dst[keep].tolist())),
        tweets=list(zip(tweet_user.tolist(), tweet_venue.tolist())),
    )


def _delta_stream(world: ColumnarWorld, seed: int, n: int):
    rng = np.random.default_rng(seed)
    deltas, n_virtual = [], world.n_users
    for _ in range(n):
        delta = _arrival_delta(world, rng, n_virtual)
        n_virtual += delta.n_new_users
        deltas.append(delta)
    return deltas


def _rows(deltas) -> int:
    return sum(d.n_new_users + d.n_edges + d.n_tweets for d in deltas)


def test_journal_append_throughput(journal):
    """Write-ahead append must not gate ingest (batched fsync)."""
    world = _base_world()
    world.content_hash
    deltas = _delta_stream(world, seed=5, n=N_DELTAS)
    rows = _rows(deltas)

    def run(fsync_every: int) -> float:
        with tempfile.TemporaryDirectory() as directory:
            wal = DeltaJournal(directory, fsync_every=fsync_every)
            current = world
            start = time.perf_counter()
            for delta in deltas:
                current = append_and_apply(wal, current, delta)
            wal.sync()
            elapsed = time.perf_counter() - start
            wal.close()
            assert current.generation == len(deltas)
            return elapsed

    batched_s = min(run(fsync_every=len(deltas)) for _ in range(3))
    fsync_each_s = run(fsync_every=1)
    journal(
        "timing",
        name="journal_append",
        users=world.n_users,
        deltas=len(deltas),
        rows=rows,
        seconds=round(batched_s, 4),
        rows_per_second=round(rows / batched_s),
        fsync_each_rows_per_second=round(rows / fsync_each_s),
    )
    print(
        f"\n[journal] appended {len(deltas)} deltas ({rows} rows) in "
        f"{batched_s * 1000:.1f} ms batched -> {rows / batched_s:,.0f} "
        f"rows/s ({rows / fsync_each_s:,.0f} rows/s with fsync per append)"
    )
    assert rows / batched_s > 1_000


def test_journal_replay_beats_recompile(journal):
    """Snapshot + tail replay vs from-scratch compile, golden-gated."""
    world = _base_world()
    world.content_hash
    deltas = _delta_stream(world, seed=6, n=N_DELTAS)

    with tempfile.TemporaryDirectory() as directory:
        current, wal, _ = open_journal(
            directory, world, fsync_every=len(deltas)
        )
        for i, delta in enumerate(deltas):
            current = append_and_apply(wal, current, delta)
            if i + 1 == COMPACT_AT:
                wal.compact(current)
        wal.close()

        # Golden gate first: recovery that drifted from the live world
        # must fail here, never win the timing below.
        recovered, wal2, report = open_journal(directory, world)
        wal2.close()
        assert report["snapshot_generation"] == COMPACT_AT
        assert report["replayed"] == N_DELTAS - COMPACT_AT
        assert recovered.content_hash == current.content_hash
        for key in WORLD_ARRAY_KEYS:
            assert np.array_equal(
                getattr(recovered, key), getattr(current, key)
            ), f"recovered world differs from live world in {key}"

        recompile_inputs = dict(
            observed_location=current.observed_location,
            edge_src=current.edge_src,
            edge_dst=current.edge_dst,
            tweet_user=current.tweet_user,
            tweet_venue=current.tweet_venue,
        )
        replay_times: list[float] = []
        recompile_times: list[float] = []
        for _ in range(5):
            start = time.perf_counter()
            _w, wal3, _ = open_journal(directory, world)
            replay_times.append(time.perf_counter() - start)
            wal3.close()
            start = time.perf_counter()
            ColumnarWorld.from_edge_arrays(
                world.gazetteer, **recompile_inputs
            )
            recompile_times.append(time.perf_counter() - start)
    replay_s = statistics.median(replay_times)
    recompile_s = statistics.median(recompile_times)
    ratio = recompile_s / replay_s
    journal(
        "timing",
        name="journal_replay",
        users=current.n_users,
        generation=current.generation,
        tail_records=N_DELTAS - COMPACT_AT,
        replay_ms=round(replay_s * 1000, 3),
        recompile_ms=round(recompile_s * 1000, 3),
        replay_over_recompile=round(ratio, 2),
    )
    print(
        f"\n[journal] recovery {replay_s * 1000:.1f} ms (snapshot + "
        f"{N_DELTAS - COMPACT_AT} tail records) vs recompile "
        f"{recompile_s * 1000:.1f} ms on {current.n_users} users: "
        f"{ratio:.1f}x"
    )
    assert ratio >= 1.2, (
        f"snapshot recovery only {ratio:.2f}x faster than a from-scratch "
        f"recompile ({replay_s * 1000:.1f} ms vs {recompile_s * 1000:.1f} ms)"
    )
