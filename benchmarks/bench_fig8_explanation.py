"""Fig. 8: relationship explanation ACC@m, MLP vs home-location Base.

Paper (Sec 5.3): MLP 57% @100 vs Base 40%, and MLP's ACC@50 is nearly
its ACC@100.  Our Base is *stronger* than the paper's (it gets true
homes for every user, not just registered ones), so the margin is
narrower -- the required shape is MLP >= Base with the same
flat-beyond-50-miles curve.

Heavy bench: one full-dataset MLP fit with per-edge assignment
tracking.
"""

from conftest import save_artifact

from repro.experiments import report


def test_fig8_explanation_accuracy(benchmark, suite, artifact_dir):
    result = benchmark.pedantic(lambda: suite.fig8, rounds=1, iterations=1)
    save_artifact(artifact_dir, "fig8", report.render_fig8(result))

    idx_100 = list(result.mile_grid).index(100.0)
    mlp = result.curves["MLP"]
    base = result.curves["Base"]
    # MLP explains edges at least as well as the true-home baseline.
    assert mlp[idx_100] >= base[idx_100]
    # Both accuracies are substantial (most edges are explainable).
    assert mlp[idx_100] > 0.5
    # The paper's flatness observation: ACC@50 is close to ACC@100.
    idx_50 = list(result.mile_grid).index(50.0)
    assert mlp[idx_100] - mlp[idx_50] < 0.08
