"""Regenerate every table and figure of the paper's evaluation.

This drives the full :class:`~repro.experiments.ExperimentSuite` and
prints the text rendering of Tables 2-5 and Figures 3-8.  Expect a few
minutes of compute at the default scale.

Run:  python examples/reproduce_paper.py [n_users]
"""

import sys
import time

from repro.data.stats import compute_stats
from repro.experiments import report
from repro.experiments.config import default_config
from repro.experiments.runner import ExperimentSuite


def main(n_users: int = 900) -> None:
    """Regenerate the paper's tables and figures at small scale."""
    start = time.time()
    suite = ExperimentSuite(default_config(n_users=n_users, seed=11))
    print(f"corpus: {suite.dataset}")
    print(f"stats : {compute_stats(suite.dataset).as_dict()}\n")

    sections = [
        report.render_fig3a(suite.fig3a),
        report.render_fig3b(suite.fig3b),
        report.render_fig3c(suite.fig3c),
        report.render_table2(suite.table2),
        report.render_fig4(
            suite.fig4, methods=("BaseU", "BaseC", "MLP_U", "MLP_C", "MLP")
        ),
        report.render_fig5(suite.fig5),
        report.render_table3(suite.table3),
        report.render_rank_sweep(suite.fig6),
        report.render_rank_sweep(suite.fig7),
        report.render_table4(suite.table4),
        report.render_fig8(suite.fig8),
        report.render_table5(suite.table5),
    ]
    for text in sections:
        print(text)
        print()
    print(f"total wall time: {time.time() - start:.0f}s")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 900)
