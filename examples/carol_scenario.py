"""The paper's Fig. 1 scenario, reconstructed end to end.

Carol lives in Los Angeles and studied in Austin.  She follows her
co-worker Bob (San Diego), her classmate Lucy (Austin), her neighbour
Mike (LA) -- and Lady Gaga in New York, which is pure noise.  She
tweets about Hollywood, Austin and (noise) Honolulu.

A handcrafted core of six users is embedded into a synthetic crowd so
the sampler has corpus-level statistics to calibrate against; MLP must
(1) discover both of Carol's locations and (2) explain the Carol->Lucy
edge with Austin, not with her LA home.

Run:  python examples/carol_scenario.py
"""


from repro import MLPModel, MLPParams, SyntheticWorldConfig, generate_world
from repro.data.model import Dataset, FollowingEdge, TweetingEdge, User


def build_world() -> tuple[Dataset, dict[str, int]]:
    """Embed the Fig. 1 cast into a 300-user synthetic crowd."""
    crowd = generate_world(SyntheticWorldConfig(n_users=300, seed=42))
    gaz = crowd.gazetteer
    city = {
        name: gaz.lookup_city_state(*name.split(", ")).location_id
        for name in (
            "Los Angeles, CA",
            "Austin, TX",
            "San Diego, CA",
            "New York, NY",
            "Hollywood, FL",  # only to show ambiguity handling below
        )
    }
    la = city["Los Angeles, CA"]
    austin = city["Austin, TX"]
    san_diego = city["San Diego, CA"]
    ny = city["New York, NY"]

    base = crowd.n_users
    cast = {
        "carol": base + 0,
        "lucy": base + 1,
        "bob": base + 2,
        "mike": base + 3,
        "gaga": base + 4,
        "jean": base + 5,
    }
    users = list(crowd.users) + [
        # Carol: UNLABELED, truly bi-located LA + Austin.
        User(cast["carol"], None, la, (la, austin), (0.6, 0.4)),
        User(cast["lucy"], austin, austin, (austin,), (1.0,)),
        User(cast["bob"], san_diego, san_diego, (san_diego,), (1.0,)),
        User(cast["mike"], la, la, (la,), (1.0,)),
        User(cast["gaga"], ny, ny, (ny,), (1.0,)),
        User(cast["jean"], None, la, (la,), (1.0,)),
    ]

    vid = gaz.venue_index
    following = list(crowd.following) + [
        FollowingEdge(cast["carol"], cast["lucy"], austin, austin, False),
        FollowingEdge(cast["carol"], cast["bob"], la, san_diego, False),
        FollowingEdge(cast["carol"], cast["mike"], la, la, False),
        FollowingEdge(cast["carol"], cast["gaga"], None, None, True),
        FollowingEdge(cast["jean"], cast["carol"], la, la, False),
        FollowingEdge(cast["lucy"], cast["carol"], austin, austin, False),
    ]
    tweeting = list(crowd.tweeting) + [
        # "See Gaga in Hollywood." -- an LA-area mention (the venue name
        # also names Hollywood, FL: ambiguity the model must resolve).
        TweetingEdge(cast["carol"], vid["hollywood"], la, False),
        TweetingEdge(cast["carol"], vid["los angeles"], la, False),
        TweetingEdge(cast["carol"], vid["austin"], austin, False),
        TweetingEdge(cast["carol"], vid["round rock"], austin, False),
        # "Want to go to Honolulu for Spring vacation!" -- noise.
        TweetingEdge(cast["carol"], vid["honolulu"], None, True),
    ]
    return Dataset(gaz, users, following, tweeting), cast


def main() -> None:
    """Run the Carol walkthrough end to end."""
    dataset, cast = build_world()
    gaz = dataset.gazetteer
    result = MLPModel(MLPParams(n_iterations=24, burn_in=10, seed=1)).fit(dataset)

    carol = cast["carol"]
    profile = result.profile_of(carol)
    print("Carol's location profile (true: Los Angeles + Austin):")
    print("  " + profile.describe(gaz, k=3))

    top2 = {gaz.by_id(l).name for l in profile.top_k(2)}
    print(f"  top-2 = {sorted(top2)}")

    print("\nCarol's explained following relationships:")
    names = {v: k for k, v in cast.items()}
    for expl in result.explanations:
        if expl.follower != carol:
            continue
        friend = names.get(expl.friend, f"user {expl.friend}")
        print(
            f"  carol -> {friend:<6s}: carol@{gaz.by_id(expl.x).name:<18s} "
            f"friend@{gaz.by_id(expl.y).name:<18s} "
            f"(noise prob {expl.noise_probability:.2f})"
        )

    gaga_edges = [
        e
        for e in result.explanations
        if e.follower == carol and e.friend == cast["gaga"]
    ]
    lucy_edges = [
        e
        for e in result.explanations
        if e.follower == carol and e.friend == cast["lucy"]
    ]
    if gaga_edges and lucy_edges:
        print(
            f"\nnoise posterior: carol->gaga {gaga_edges[0].noise_probability:.2f} "
            f"vs carol->lucy {lucy_edges[0].noise_probability:.2f} "
            "(the celebrity edge should look more random)"
        )


if __name__ == "__main__":
    main()
