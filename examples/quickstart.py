"""Quickstart: generate a world, fit MLP, inspect a profile.

Run:  python examples/quickstart.py
"""

from repro import MLPModel, MLPParams, SyntheticWorldConfig, generate_world
from repro.data.stats import compute_stats


def main() -> None:
    """Minimal fit-and-predict walkthrough."""
    # 1. A synthetic Twitter world with known ground truth (the crawl
    #    substitution described in DESIGN.md): users with 1-3 true
    #    locations, power-law-local following edges, venue tweets.
    dataset = generate_world(SyntheticWorldConfig(n_users=400, seed=7))
    stats = compute_stats(dataset)
    print(f"world: {dataset}")
    print(
        f"  mean friends {stats.mean_friends:.1f}, "
        f"mean venues {stats.mean_venues:.1f}, "
        f"labeled {stats.labeled_fraction:.0%}"
    )

    # 2. Fit the Multiple Location Profiling model.
    params = MLPParams(n_iterations=20, burn_in=8, seed=0)
    result = MLPModel(params).fit(dataset)
    print(
        f"fitted following law: alpha={result.fitted_law.alpha:.3f} "
        f"beta={result.fitted_law.beta:.5f}"
    )

    # 3. Inspect a multi-location user's discovered profile (prefer an
    #    unlabeled one: their home is genuinely inferred, not given).
    gaz = dataset.gazetteer
    cohort = dataset.multi_location_user_ids()
    unlabeled = [u for u in cohort if not dataset.users[u].is_labeled]
    uid = (unlabeled or list(cohort))[0]
    user = dataset.users[uid]
    profile = result.profile_of(uid)
    print(f"\nuser {uid}")
    print(
        "  true locations :",
        " | ".join(gaz.by_id(l).name for l in user.true_locations),
    )
    print("  MLP profile    :", profile.describe(gaz, k=3))
    print("  predicted home :", gaz.by_id(result.predicted_home(uid)).name)

    # 4. Explanations: why does each following edge exist?
    print("\nfirst three explained following relationships:")
    for expl in result.explanations[:3]:
        print("  " + expl.describe(gaz))


if __name__ == "__main__":
    main()
