"""Five-method home-location shootout (the Table 2 protocol).

Runs BaseU, BaseC, MLP_U, MLP_C and MLP on one 80/20 label holdout and
prints ACC@100 plus the AAD curve -- the paper's Sec. 5.1 evaluation at
example scale.

Run:  python examples/home_prediction_shootout.py [n_users]
"""

import sys

from repro import MLPParams, SyntheticWorldConfig, generate_world
from repro.evaluation.methods import standard_methods
from repro.evaluation.splits import single_holdout_split
from repro.evaluation.tasks import run_home_prediction
from repro.experiments import figures, report, tables


def main(n_users: int = 600) -> None:
    """Run the five-method shootout on a synthetic world."""
    dataset = generate_world(SyntheticWorldConfig(n_users=n_users, seed=11))
    print(f"world: {dataset}\n")

    params = MLPParams(
        n_iterations=24, burn_in=10, seed=0, track_edge_assignments=False
    )
    split = single_holdout_split(dataset, 0.2, seed=0)
    print(
        f"holdout: {len(split.test_user_ids)} test users "
        f"(labels hidden), {len(split.train_dataset.labeled_user_ids)} "
        "labeled users remain as supervision\n"
    )

    results = run_home_prediction(
        dataset, standard_methods(params), splits=[split]
    )

    print(report.render_table2(tables.table2(dataset, results)))
    print()
    fig = figures.fig4(dataset, results)
    print(report.render_fig4(fig, methods=("BaseU", "BaseC", "MLP_U", "MLP_C", "MLP")))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)
