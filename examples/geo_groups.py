"""Geo-grouping a user's followers via relationship explanations.

The Sec. 5.3 application: because MLP assigns a location pair to every
following relationship, a user's followers can be grouped by the
location *of the user* that each follow is grounded in -- e.g. Carol's
"Austin group" (classmates) vs her "Los Angeles group" (co-workers).

Run:  python examples/geo_groups.py
"""

from repro import MLPModel, MLPParams, SyntheticWorldConfig, generate_world


def main() -> None:
    """Demo: group a user's followers into geo groups."""
    dataset = generate_world(SyntheticWorldConfig(n_users=500, seed=19))
    gaz = dataset.gazetteer

    result = MLPModel(MLPParams(n_iterations=24, burn_in=10, seed=2)).fit(dataset)

    # Pick the two-location user with the most followers.
    cohort = dataset.multi_location_user_ids()
    uid = max(cohort, key=lambda u: len(dataset.followers_of[u]))
    user = dataset.users[uid]

    print(f"user {uid}")
    print(
        "  true locations:",
        " | ".join(gaz.by_id(l).name for l in user.true_locations),
    )
    print("  MLP profile   :", result.profile_of(uid).describe(gaz, k=3))
    print(f"  followers     : {len(dataset.followers_of[uid])}")

    print("\nfollowers grouped by the location grounding their follow:")
    groups = result.geo_groups(uid, radius_miles=100.0)
    for location_id, members in sorted(
        groups.items(), key=lambda kv: -len(kv[1])
    ):
        print(f"  {gaz.by_id(location_id).name:<20s} {len(members):3d} followers")
        for follower in members[:4]:
            home = dataset.users[follower].true_home
            home_name = gaz.by_id(home).name if home is not None else "?"
            print(f"      u{follower:<5d} (home: {home_name})")
        if len(members) > 4:
            print(f"      ... and {len(members) - 4} more")


if __name__ == "__main__":
    main()
