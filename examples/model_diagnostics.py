"""Intrinsic model diagnostics on a fitted MLP.

Shows the health checks a practitioner runs without any ground-truth
labels (held-out likelihood) and the calibration checks available on
synthetic worlds (noise AUC, profile concentration).

Run:  python examples/model_diagnostics.py
"""

from repro import MLPModel, MLPParams, SyntheticWorldConfig, generate_world
from repro.core.diagnostics import (
    following_log_likelihood,
    noise_detection_report,
    profile_concentration_report,
    tweeting_log_likelihood,
)
from repro.data.model import Dataset


def main() -> None:
    """Fit a world and print convergence diagnostics."""
    world = generate_world(SyntheticWorldConfig(n_users=400, seed=31))

    # Hold out 10% of each relationship type before fitting.
    n_f = world.n_following
    n_t = world.n_tweeting
    held_f = list(world.following[: n_f // 10])
    held_t = list(world.tweeting[: n_t // 10])
    train = Dataset(
        world.gazetteer,
        world.users,
        world.following[n_f // 10 :],
        world.tweeting[n_t // 10 :],
    )

    result = MLPModel(MLPParams(n_iterations=20, burn_in=8, seed=0)).fit(train)

    print("held-out likelihood (higher is better):")
    print(f"  following : {following_log_likelihood(result, held_f):8.3f} nats/edge")
    print(f"  tweeting  : {tweeting_log_likelihood(result, held_t):8.3f} nats/mention")

    noise = noise_detection_report(result)
    print("\nnoise detection (vs generator ground truth):")
    print(f"  AUC                      {noise.auc:.3f}")
    print(
        f"  mean posterior on noise  {noise.mean_noise_posterior_on_noise:.3f}"
        f"  ({noise.n_noise} edges)"
    )
    print(
        f"  mean posterior on clean  {noise.mean_noise_posterior_on_clean:.3f}"
        f"  ({noise.n_clean} edges)"
    )

    conc = profile_concentration_report(result)
    print("\nprofile concentration:")
    print(
        f"  effective locations, single-location users: "
        f"{conc.mean_effective_locations_single:.2f}"
    )
    print(
        f"  effective locations, multi-location users : "
        f"{conc.mean_effective_locations_multi:.2f}"
    )


if __name__ == "__main__":
    main()
