"""Hyper-parameter sensitivity sweeps.

The paper fixes its hyper-parameters with one-line justifications
(tau = 0.1 "prefers sparse distributions", a large label boost, rho
priors).  This driver sweeps one parameter at a time over a grid and
reports ACC@100 on a fixed holdout, so the sensitivity of each choice
is measurable rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.model import Dataset
from repro.evaluation.metrics import accuracy_at
from repro.evaluation.splits import LabelSplit

#: Parameters the sweep knows how to vary, with their default grids.
DEFAULT_GRIDS: dict[str, tuple[float, ...]] = {
    "tau": (0.01, 0.05, 0.1, 0.5, 1.0),
    "boost": (1.0, 10.0, 50.0, 200.0),
    "rho_f": (0.02, 0.1, 0.15, 0.3),
    "rho_t": (0.02, 0.1, 0.2, 0.4),
    "delta": (0.01, 0.05, 0.2, 1.0),
}


@dataclass(frozen=True, slots=True)
class SensitivityPoint:
    """One (parameter value, ACC@100) point of a sweep."""

    parameter: str
    value: float
    accuracy: float


def sweep_parameter(
    dataset: Dataset,
    split: LabelSplit,
    base: MLPParams,
    parameter: str,
    grid: tuple[float, ...] | None = None,
) -> list[SensitivityPoint]:
    """Fit MLP at each grid value of ``parameter``; report ACC@100.

    Every fit shares the same data, split, seed and schedule, so the
    accuracy differences isolate the parameter.
    """
    if grid is None:
        if parameter not in DEFAULT_GRIDS:
            raise ValueError(
                f"no default grid for {parameter!r}; pass one explicitly"
            )
        grid = DEFAULT_GRIDS[parameter]
    if not hasattr(base, parameter):
        raise ValueError(f"unknown MLPParams field: {parameter!r}")
    points = []
    for value in grid:
        params = base.with_overrides(**{parameter: value})
        result = MLPModel(params).fit(split.train_dataset)
        predictions = [
            result.predicted_home(uid) for uid in split.test_user_ids
        ]
        acc = accuracy_at(
            dataset.gazetteer, predictions, list(split.test_truth)
        )
        points.append(
            SensitivityPoint(parameter=parameter, value=value, accuracy=acc)
        )
    return points


def best_point(points: list[SensitivityPoint]) -> SensitivityPoint:
    """The grid point with the highest accuracy (ties: smaller value)."""
    if not points:
        raise ValueError("empty sweep")
    return max(points, key=lambda p: (p.accuracy, -p.value))


def accuracy_spread(points: list[SensitivityPoint]) -> float:
    """Max minus min accuracy over the sweep -- the sensitivity measure."""
    if not points:
        raise ValueError("empty sweep")
    accs = [p.accuracy for p in points]
    return max(accs) - min(accs)


def render_sweep(points: list[SensitivityPoint]) -> str:
    """Aligned text rendering of one sweep."""
    if not points:
        raise ValueError("empty sweep")
    name = points[0].parameter
    lines = [f"Sensitivity: {name}", "-" * 40]
    for p in points:
        lines.append(f"  {name} = {p.value:<8g} ACC@100 {p.accuracy:6.1%}")
    lines.append(f"  spread: {accuracy_spread(points):.1%}")
    return "\n".join(lines)
