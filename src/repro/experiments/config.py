"""Experiment configuration: world size, schedules, evaluation knobs."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """One reproducible experiment campaign.

    ``world`` parameterizes the synthetic corpus (the crawl
    substitution); ``mlp`` sets the shared inference schedule; the
    remaining fields control the evaluation protocols of Sec. 5.
    """

    world: SyntheticWorldConfig = field(default_factory=SyntheticWorldConfig)
    mlp: MLPParams = field(
        default_factory=lambda: MLPParams(track_edge_assignments=False)
    )
    #: Folds for the Sec. 5.1 protocol (the paper uses 5).  ``1`` means
    #: a single 80/20 holdout -- the quick option for benchmarks.
    n_folds: int = 1
    holdout_fraction: float = 0.2
    #: Cap on the Sec. 5.2 cohort (None = all multi-location users).
    max_multi_cohort: int | None = 300
    split_seed: int = 0

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Copy of the config with the given fields replaced."""
        return replace(self, **kwargs)


def default_config(
    n_users: int = 1500,
    seed: int = 11,
    engine: str = "loop",
    jobs: int = 1,
    chains: int = 1,
) -> ExperimentConfig:
    """The configuration behind EXPERIMENTS.md's recorded numbers.

    ``engine``, ``jobs`` and ``chains`` thread the inference-engine
    knobs (see :mod:`repro.engine`) into every fit the suite performs,
    so any figure/table experiment can opt into the vectorized or
    partitioned sweeps or multi-chain pooling.
    """
    return ExperimentConfig(
        world=SyntheticWorldConfig(n_users=n_users, seed=seed),
        mlp=MLPParams(
            n_iterations=36,
            burn_in=14,
            seed=0,
            track_edge_assignments=False,
            engine=engine,
            n_jobs=jobs,
            n_chains=chains,
        ),
    )


def quick_config(
    n_users: int = 500,
    seed: int = 11,
    engine: str = "loop",
    jobs: int = 1,
    chains: int = 1,
) -> ExperimentConfig:
    """A small configuration for smoke tests and CI."""
    return ExperimentConfig(
        world=SyntheticWorldConfig(n_users=n_users, seed=seed),
        mlp=MLPParams(
            n_iterations=16,
            burn_in=6,
            seed=0,
            track_edge_assignments=False,
            engine=engine,
            n_jobs=jobs,
            n_chains=chains,
        ),
        max_multi_cohort=100,
    )
