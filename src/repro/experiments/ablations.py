"""Ablation drivers: quantify the design choices DESIGN.md calls out.

Each driver takes a dataset plus a label split, runs MLP with one
mechanism removed/varied, and returns paired ACC@100 numbers:

- :func:`ablate_noise_mixture` -- remove the FR/TR random models
  (rho -> ~0): the paper's noisy-signal claim (Sec. 4.2).
- :func:`ablate_supervision` -- remove the label boost (Lambda = 0):
  the "anchoring" claim of Sec. 4.3.
- :func:`ablate_candidacy` -- full gazetteer instead of candidacy
  vectors: the efficiency (and accuracy) claim of Sec. 4.3.
- :func:`ablate_gibbs_em` -- sweep em_rounds: the (alpha, beta)
  refinement of Sec. 4.5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.model import Dataset
from repro.evaluation.metrics import accuracy_at
from repro.evaluation.splits import LabelSplit

#: rho value that effectively disables a mixture branch while keeping
#: the math well-defined (rho = 0 exactly is allowed too, but a tiny
#: epsilon keeps the selector code path exercised).
_RHO_OFF = 1e-6


@dataclass(frozen=True, slots=True)
class AblationOutcome:
    """One (variant name, ACC@100, wall seconds) ablation row."""

    variant: str
    accuracy: float
    seconds: float
    detail: str = ""


def _evaluate(
    dataset: Dataset, split: LabelSplit, params: MLPParams, variant: str,
    detail: str = "",
) -> AblationOutcome:
    start = time.time()
    result = MLPModel(params).fit(split.train_dataset)
    elapsed = time.time() - start
    predictions = [
        result.predicted_home(uid) for uid in split.test_user_ids
    ]
    acc = accuracy_at(
        dataset.gazetteer, predictions, list(split.test_truth)
    )
    return AblationOutcome(
        variant=variant, accuracy=acc, seconds=elapsed, detail=detail
    )


def ablate_noise_mixture(
    dataset: Dataset, split: LabelSplit, base: MLPParams
) -> list[AblationOutcome]:
    """Default mixture vs no-noise-model (everything location-based)."""
    return [
        _evaluate(dataset, split, base, "with noise mixture"),
        _evaluate(
            dataset,
            split,
            base.with_overrides(rho_f=_RHO_OFF, rho_t=_RHO_OFF),
            "without noise mixture",
        ),
    ]


def ablate_supervision(
    dataset: Dataset, split: LabelSplit, base: MLPParams
) -> list[AblationOutcome]:
    """Default label boost vs no anchoring (boost = 0)."""
    return [
        _evaluate(dataset, split, base, "with supervision boost"),
        _evaluate(
            dataset,
            split,
            base.with_overrides(boost=0.0),
            "without supervision boost",
        ),
    ]


def ablate_candidacy(
    dataset: Dataset, split: LabelSplit, base: MLPParams
) -> list[AblationOutcome]:
    """Candidacy vectors vs full-gazetteer candidates."""
    return [
        _evaluate(dataset, split, base, "with candidacy vectors"),
        _evaluate(
            dataset,
            split,
            base.with_overrides(use_candidacy=False),
            "full gazetteer candidates",
        ),
    ]


def ablate_gibbs_em(
    dataset: Dataset, split: LabelSplit, base: MLPParams,
    rounds: tuple[int, ...] = (0, 1, 2),
) -> list[AblationOutcome]:
    """Sweep the number of Gibbs-EM (alpha, beta) refits."""
    outcomes = []
    for r in rounds:
        params = base.with_overrides(em_rounds=r)
        result = MLPModel(params).fit(split.train_dataset)
        predictions = [
            result.predicted_home(uid) for uid in split.test_user_ids
        ]
        acc = accuracy_at(
            dataset.gazetteer, predictions, list(split.test_truth)
        )
        law = result.fitted_law
        outcomes.append(
            AblationOutcome(
                variant=f"em_rounds={r}",
                accuracy=acc,
                seconds=float("nan"),
                detail=f"alpha={law.alpha:.3f} beta={law.beta:.5f}",
            )
        )
    return outcomes


def render_ablation(title: str, outcomes: list[AblationOutcome]) -> str:
    """Aligned text rendering of one ablation's rows."""
    lines = [f"Ablation: {title}", "-" * 64]
    for o in outcomes:
        timing = f"{o.seconds:7.1f}s" if np.isfinite(o.seconds) else "       -"
        suffix = f"  [{o.detail}]" if o.detail else ""
        lines.append(f"  {o.variant:<28s} ACC@100 {o.accuracy:6.1%} {timing}{suffix}")
    return "\n".join(lines)
