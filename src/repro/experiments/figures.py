"""Figure drivers: compute the data series behind each paper figure.

Every driver returns a plain dataclass of series (no plotting backend
needed offline); :mod:`repro.experiments.report` renders them as
aligned text so benchmark logs read like the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ConvergenceTrace
from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.model import Dataset
from repro.evaluation.metrics import accuracy_at
from repro.evaluation.tasks import (
    ExplanationTaskResult,
    HomePredictionResult,
    MultiLocationResult,
)
from repro.mathx.buckets import log_spaced_bucket_following_pairs
from repro.mathx.powerlaw import PowerLaw, fit_power_law, r_squared_loglog


# ---------------------------------------------------------------------------
# Fig. 3(a): following probability versus distance
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig3aResult:
    """The empirical curve, the fitted power law, and the fit quality."""

    distances: np.ndarray
    probabilities: np.ndarray
    pair_counts: np.ndarray
    law: PowerLaw
    r_squared: float


def fig3a(
    dataset: Dataset,
    max_users: int = 2000,
    n_buckets: int = 30,
    seed: int = 0,
) -> Fig3aResult:
    """Reproduce Fig. 3(a) over the labeled users of a dataset."""
    rng = np.random.default_rng(seed)
    labeled = np.array(dataset.labeled_user_ids, dtype=np.int64)
    if labeled.size < 10:
        raise ValueError("need at least 10 labeled users for Fig. 3(a)")
    if labeled.size > max_users:
        labeled = rng.choice(labeled, size=max_users, replace=False)
    observed = dataset.observed_locations
    locs = np.array([observed[int(u)] for u in labeled], dtype=np.int64)
    dmat = dataset.gazetteer.distance_matrix
    pair_d = dmat[locs][:, locs]
    n = labeled.size
    off = ~np.eye(n, dtype=bool)
    index_of = {int(u): k for k, u in enumerate(labeled)}
    has_edge = np.zeros((n, n), dtype=bool)
    chosen = set(index_of)
    for e in dataset.following:
        if e.follower in chosen and e.friend in chosen:
            has_edge[index_of[e.follower], index_of[e.friend]] = True
    buckets = log_spaced_bucket_following_pairs(
        pair_d[off], has_edge[off], n_buckets=n_buckets
    ).nonzero()
    law = fit_power_law(
        buckets.centers, buckets.probabilities, weights=buckets.totals
    )
    r2 = r_squared_loglog(law, buckets.centers, buckets.probabilities)
    return Fig3aResult(
        distances=buckets.centers,
        probabilities=buckets.probabilities,
        pair_counts=buckets.totals,
        law=law,
        r_squared=r2,
    )


# ---------------------------------------------------------------------------
# Fig. 3(b): tweeting probabilities of venues at two cities
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig3bResult:
    """Per-city venue probabilities: the Fig. 3(b) bars."""

    city_names: tuple[str, str]
    #: Per city: [(venue name, probability), ...] sorted descending.
    top_venues: tuple[tuple[tuple[str, float], ...], tuple[tuple[str, float], ...]]


def fig3b(
    dataset: Dataset,
    city_a: str = "Austin, TX",
    city_b: str = "Los Angeles, CA",
    top_n: int = 5,
    min_labeled_users: int = 3,
) -> Fig3bResult:
    """Venue tweeting probabilities of labeled users at two cities.

    Defaults to the paper's Austin/Los Angeles pair; when a requested
    city hosts fewer than ``min_labeled_users`` labeled users (small
    synthetic worlds), the most-populated labeled cities are used
    instead so the figure always has data.
    """
    gaz = dataset.gazetteer
    observed = dataset.observed_locations
    labeled_counts = np.zeros(len(gaz), dtype=np.int64)
    for loc in observed.values():
        labeled_counts[loc] += 1

    resolved = []
    for name in (city_a, city_b):
        city, _, state = name.rpartition(",")
        loc = gaz.lookup_city_state(city.strip(), state.strip())
        if loc is None:
            raise ValueError(f"unknown city: {name}")
        resolved.append(loc.location_id)
    if any(labeled_counts[loc] < min_labeled_users for loc in resolved):
        by_count = np.argsort(-labeled_counts)
        resolved = [int(by_count[0]), int(by_count[1])]
        city_a = gaz.by_id(resolved[0]).name
        city_b = gaz.by_id(resolved[1]).name
    n_venues = len(gaz.venue_vocabulary)
    counts = {loc: np.zeros(n_venues) for loc in resolved}
    for t in dataset.tweeting:
        loc = observed.get(t.user)
        if loc in counts:
            counts[loc][t.venue_id] += 1.0
    tops = []
    for loc in resolved:
        c = counts[loc]
        total = c.sum()
        if total == 0:
            tops.append(())
            continue
        order = np.argsort(-c)[:top_n]
        tops.append(
            tuple(
                (gaz.venue_vocabulary[v], float(c[v] / total))
                for v in order
                if c[v] > 0
            )
        )
    return Fig3bResult(
        city_names=(city_a, city_b), top_venues=(tops[0], tops[1])
    )


# ---------------------------------------------------------------------------
# Fig. 3(c): one user's relationships as a mixture of locations
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig3cResult:
    """A two-location user's relationships grouped by nearest region."""

    user_id: int
    true_locations: tuple[str, ...]
    #: Per true location: friend home city names within the region.
    friends_by_region: tuple[tuple[str, ...], ...]
    #: Per true location: venues tweeted whose referent lies in-region.
    venues_by_region: tuple[tuple[str, ...], ...]
    unassigned_friends: tuple[str, ...]


def fig3c(
    dataset: Dataset,
    user_id: int | None = None,
    region_miles: float = 100.0,
) -> Fig3cResult:
    """Pick (or accept) a two-location user and split their signals."""
    if user_id is None:
        user_id = _pick_two_location_user(dataset)
    user = dataset.users[user_id]
    if len(user.true_locations) < 2:
        raise ValueError(f"user {user_id} does not have multiple locations")
    gaz = dataset.gazetteer
    regions = list(user.true_locations)
    friends_by_region: list[list[str]] = [[] for _ in regions]
    unassigned: list[str] = []
    for friend in dataset.friends_of[user_id]:
        home = dataset.users[friend].true_home
        if home is None:
            continue
        dists = [gaz.distance(home, r) for r in regions]
        best = int(np.argmin(dists))
        if dists[best] <= region_miles:
            friends_by_region[best].append(gaz.by_id(home).name)
        else:
            unassigned.append(gaz.by_id(home).name)
    venues_by_region: list[list[str]] = [[] for _ in regions]
    referent_cache: dict[int, list[int]] = {}
    for vid in dataset.venues_of[user_id]:
        if vid not in referent_cache:
            name = gaz.venue_vocabulary[vid]
            referent_cache[vid] = [loc.location_id for loc in gaz.lookup_name(name)]
        for r_idx, region in enumerate(regions):
            if any(
                gaz.distance(ref, region) <= region_miles
                for ref in referent_cache[vid]
            ):
                venues_by_region[r_idx].append(gaz.venue_vocabulary[vid])
                break
    return Fig3cResult(
        user_id=user_id,
        true_locations=tuple(gaz.by_id(r).name for r in regions),
        friends_by_region=tuple(tuple(f) for f in friends_by_region),
        venues_by_region=tuple(tuple(v) for v in venues_by_region),
        unassigned_friends=tuple(unassigned),
    )


def _pick_two_location_user(
    dataset: Dataset, region_miles: float = 100.0
) -> int:
    """The two-location user whose *weaker* region has the most signal.

    "Signal" counts friends whose true home lies in a region plus venue
    mentions referring into it; maximizing the minimum across the two
    regions guarantees the Fig. 3(c) case study shows both clusters.
    """
    gaz = dataset.gazetteer
    referents: dict[int, list[int]] = {}
    best_uid, best_score = -1, -1.0
    for uid in dataset.multi_location_user_ids():
        user = dataset.users[uid]
        if len(user.true_locations) != 2:
            continue
        signal = [0, 0]
        for friend in dataset.friends_of[uid]:
            home = dataset.users[friend].true_home
            if home is None:
                continue
            for r_idx, region in enumerate(user.true_locations):
                if gaz.distance(home, region) <= region_miles:
                    signal[r_idx] += 1
                    break
        for vid in dataset.venues_of[uid]:
            if vid not in referents:
                name = gaz.venue_vocabulary[vid]
                referents[vid] = [
                    loc.location_id for loc in gaz.lookup_name(name)
                ]
            for r_idx, region in enumerate(user.true_locations):
                if any(
                    gaz.distance(ref, region) <= region_miles
                    for ref in referents[vid]
                ):
                    signal[r_idx] += 1
                    break
        score = min(signal) + 0.01 * max(signal)
        if score > best_score:
            best_uid, best_score = uid, score
    if best_uid < 0:
        raise ValueError("dataset has no two-location users")
    return best_uid


# ---------------------------------------------------------------------------
# Fig. 4: accumulative accuracy at distance
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig4Result:
    """AAD curves per method over a shared mile grid."""

    mile_grid: tuple[float, ...]
    #: method name -> accuracies parallel to ``mile_grid``.
    curves: dict[str, tuple[float, ...]]


def fig4(
    dataset: Dataset,
    home_results: dict[str, HomePredictionResult],
    mile_grid: tuple[float, ...] = tuple(float(m) for m in range(0, 150, 10)),
) -> Fig4Result:
    """Fig. 4: ACC@m curves per method over the mile grid."""
    curves = {
        name: tuple(acc for _, acc in result.aad(dataset, mile_grid))
        for name, result in home_results.items()
    }
    return Fig4Result(mile_grid=mile_grid, curves=curves)


# ---------------------------------------------------------------------------
# Fig. 5: convergence
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig5Result:
    """Per-iteration accuracy and the accuracy-change series."""

    accuracies: tuple[float, ...]
    accuracy_changes: tuple[float, ...]
    converged_at: int | None


def fig5(
    dataset: Dataset,
    params: MLPParams,
    test_user_ids: np.ndarray,
    test_truth: np.ndarray,
    tolerance: float = 1e-3,
) -> Fig5Result:
    """Run MLP with a per-sweep accuracy probe (the Fig. 5 series).

    Fig. 5 plots the trajectory of *one* chain, so the fit is forced to
    a single chain: the per-sweep probe needs the live sampler, which a
    chain pool (possibly running in worker processes) cannot expose.
    """

    def probe(sampler, _iteration: int) -> float:
        homes = sampler.current_home_estimates()
        return accuracy_at(
            dataset.gazetteer, homes[test_user_ids], test_truth
        )

    single_chain = params.with_overrides(n_chains=1)
    result = MLPModel(single_chain).fit(dataset, metric_callback=probe)
    return fig5_from_trace(result.trace, tolerance)


def fig5_from_trace(
    trace: ConvergenceTrace, tolerance: float = 1e-3
) -> Fig5Result:
    """Fig. 5: per-sweep |metric change| from a recorded trace."""
    accuracies = tuple(m for m in trace.metrics() if m is not None)
    changes = tuple(trace.metric_changes())
    return Fig5Result(
        accuracies=accuracies,
        accuracy_changes=changes,
        converged_at=trace.converged_at(tolerance),
    )


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 7: DP and DR at ranks
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RankSweepResult:
    """DP@K (Fig. 6) or DR@K (Fig. 7) per method per rank."""

    metric: str  # "DP" or "DR"
    ranks: tuple[int, ...]
    values: dict[str, tuple[float, ...]]


def fig6(
    dataset: Dataset,
    multi_results: dict[str, MultiLocationResult],
    ranks: tuple[int, ...] = (1, 2, 3),
) -> RankSweepResult:
    """Fig. 6: DP at each rank k per method."""
    values = {
        name: tuple(result.dp(dataset, k) for k in ranks)
        for name, result in multi_results.items()
    }
    return RankSweepResult(metric="DP", ranks=ranks, values=values)


def fig7(
    dataset: Dataset,
    multi_results: dict[str, MultiLocationResult],
    ranks: tuple[int, ...] = (1, 2, 3),
) -> RankSweepResult:
    """Fig. 7: DR at each rank k per method."""
    values = {
        name: tuple(result.dr(dataset, k) for k in ranks)
        for name, result in multi_results.items()
    }
    return RankSweepResult(metric="DR", ranks=ranks, values=values)


# ---------------------------------------------------------------------------
# Fig. 8: relationship explanation accuracy at distance
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig8Result:
    """Explanation ACC@m per method over a mile grid."""

    mile_grid: tuple[float, ...]
    curves: dict[str, tuple[float, ...]]


def fig8(
    dataset: Dataset,
    explanation_results: dict[str, ExplanationTaskResult],
    mile_grid: tuple[float, ...] = (25.0, 50.0, 75.0, 100.0),
) -> Fig8Result:
    """Fig. 8: explanation accuracy vs mile threshold."""
    curves = {
        name: tuple(result.accuracy_at(dataset, m) for m in mile_grid)
        for name, result in explanation_results.items()
    }
    return Fig8Result(mile_grid=mile_grid, curves=curves)
