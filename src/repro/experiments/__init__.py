"""Experiment drivers: one per table and figure of the paper.

The :class:`~repro.experiments.runner.ExperimentSuite` owns a synthetic
world and lazily computes each artifact exactly once, so the benchmark
harness and the ``reproduce_paper`` example share work:

=========  ==========================================================
Artifact    Paper reference
=========  ==========================================================
fig3a       following probability vs distance (power law, Sec. 4.1)
fig3b       tweeting probabilities of venues at two cities
fig3c       one user's relationships split across two regions
table2      home-prediction ACC@100 for the five methods (Sec. 5.1)
fig4        accumulative accuracy at distance curves
fig5        Gibbs convergence (accuracy change per iteration)
table3      multi-location discovery DP@2 / DR@2 (Sec. 5.2)
fig6,fig7   DP@K and DR@K at ranks 1..3
table4      multi-location case studies
fig8        relationship-explanation ACC@m (Sec. 5.3)
table5      relationship-explanation case study
=========  ==========================================================
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentSuite

__all__ = ["ExperimentConfig", "ExperimentSuite"]
