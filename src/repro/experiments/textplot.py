"""Text plots: render figure series as ASCII charts.

The original figures are scatter/line plots; offline we render them as
character grids so bench logs and EXPERIMENTS.md show the curve
*shapes* (the power-law straight line of Fig. 3(a), the dominance gaps
of Fig. 4) and not just number columns.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Markers assigned to successive series of a multi-line plot.
SERIES_MARKERS = "*o+x#@%&"


def _transform(values: Sequence[float], log: bool) -> list[float]:
    if not log:
        return [float(v) for v in values]
    out = []
    for v in values:
        if v <= 0:
            raise ValueError("log-scale axis requires positive values")
        out.append(math.log10(v))
    return out


def _scale(values: list[float], size: int) -> list[int]:
    lo, hi = min(values), max(values)
    if hi == lo:
        return [size // 2 for _ in values]
    return [
        min(size - 1, int(round((v - lo) / (hi - lo) * (size - 1))))
        for v in values
    ]


def scatter(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 60,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    marker: str = "*",
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one series as an ASCII scatter plot."""
    return multi_scatter(
        {marker: (x, y)},
        width=width,
        height=height,
        log_x=log_x,
        log_y=log_y,
        title=title,
        x_label=x_label,
        y_label=y_label,
        markers_are_labels=False,
    )


def multi_scatter(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    markers_are_labels: bool = True,
) -> str:
    """Render several named series on one ASCII grid.

    Each series gets a marker from :data:`SERIES_MARKERS` (in insertion
    order); overlapping points keep the earlier series' marker.  When
    ``markers_are_labels`` is false the dict keys *are* the markers.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 10 or height < 5:
        raise ValueError("plot area too small")

    all_x: list[float] = []
    all_y: list[float] = []
    prepared: list[tuple[str, list[float], list[float]]] = []
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: x and y must be parallel")
        if not xs:
            continue
        tx = _transform(xs, log_x)
        ty = _transform(ys, log_y)
        marker = (
            SERIES_MARKERS[idx % len(SERIES_MARKERS)]
            if markers_are_labels
            else name
        )
        prepared.append((marker, tx, ty))
        all_x.extend(tx)
        all_y.extend(ty)
    if not all_x:
        raise ValueError("all series are empty")

    lo_x, hi_x = min(all_x), max(all_x)
    lo_y, hi_y = min(all_y), max(all_y)

    def col(v: float) -> int:
        if hi_x == lo_x:
            return width // 2
        return min(width - 1, int(round((v - lo_x) / (hi_x - lo_x) * (width - 1))))

    def row(v: float) -> int:
        if hi_y == lo_y:
            return height // 2
        return min(
            height - 1, int(round((v - lo_y) / (hi_y - lo_y) * (height - 1)))
        )

    grid = [[" "] * width for _ in range(height)]
    for marker, tx, ty in prepared:
        for vx, vy in zip(tx, ty):
            r = height - 1 - row(vy)
            c = col(vx)
            if grid[r][c] == " ":
                grid[r][c] = marker

    def fmt_axis(v: float, log: bool) -> str:
        real = 10**v if log else v
        if abs(real) >= 1000 or (abs(real) < 0.01 and real != 0):
            return f"{real:.1e}"
        return f"{real:.3g}"

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = fmt_axis(hi_y, log_y)
    bottom_label = fmt_axis(lo_y, log_y)
    label_width = max(len(top_label), len(bottom_label))
    for r, grid_row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_width)
        elif r == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(grid_row)}|")
    x_lo = fmt_axis(lo_x, log_x)
    x_hi = fmt_axis(hi_x, log_x)
    pad = width - len(x_lo) - len(x_hi)
    lines.append(
        " " * label_width + "  " + x_lo + " " * max(1, pad) + x_hi
    )
    footer = []
    if x_label:
        footer.append(f"x: {x_label}" + (" (log)" if log_x else ""))
    if y_label:
        footer.append(f"y: {y_label}" + (" (log)" if log_y else ""))
    if markers_are_labels and len(series) > 1:
        legend = ", ".join(
            f"{SERIES_MARKERS[i % len(SERIES_MARKERS)]}={name}"
            for i, name in enumerate(series)
        )
        footer.append(f"legend: {legend}")
    if footer:
        lines.append(" " * label_width + "  " + "; ".join(footer))
    return "\n".join(lines)
