"""Table drivers: the rows behind the paper's Tables 2-5."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import MLPResult
from repro.data.model import Dataset
from repro.evaluation.tasks import (
    HomePredictionResult,
    MultiLocationResult,
)

#: Method column order used throughout the paper's tables.
METHOD_ORDER = ("BaseU", "BaseC", "MLP_U", "MLP_C", "MLP")


# ---------------------------------------------------------------------------
# Table 2: home location prediction
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Table2Result:
    """ACC@m per method -- the paper's headline comparison."""

    miles: float
    accuracies: dict[str, float]

    def ordered_rows(self) -> list[tuple[str, float]]:
        """(method, ACC) rows in the paper's method order."""
        ordered = [
            (name, self.accuracies[name])
            for name in METHOD_ORDER
            if name in self.accuracies
        ]
        extras = sorted(
            (n, a) for n, a in self.accuracies.items() if n not in METHOD_ORDER
        )
        return ordered + extras


def table2(
    dataset: Dataset,
    home_results: dict[str, HomePredictionResult],
    miles: float = 100.0,
) -> Table2Result:
    """Compute Table 2: ACC@miles per method."""
    return Table2Result(
        miles=miles,
        accuracies={
            name: result.accuracy_at(dataset, miles)
            for name, result in home_results.items()
        },
    )


# ---------------------------------------------------------------------------
# Table 3: multiple location discovery
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Table3Result:
    """DP@K and DR@K per method."""

    k: int
    miles: float
    dp: dict[str, float]
    dr: dict[str, float]

    def ordered_rows(self) -> list[tuple[str, float, float]]:
        """(method, DP, DR) rows in the paper's method order."""
        names = [n for n in METHOD_ORDER if n in self.dp] + sorted(
            n for n in self.dp if n not in METHOD_ORDER
        )
        return [(n, self.dp[n], self.dr[n]) for n in names]


def table3(
    dataset: Dataset,
    multi_results: dict[str, MultiLocationResult],
    k: int = 2,
    miles: float = 100.0,
) -> Table3Result:
    """Compute Table 3: DP/DR at k per method."""
    return Table3Result(
        k=k,
        miles=miles,
        dp={
            name: result.dp(dataset, k, miles)
            for name, result in multi_results.items()
        },
        dr={
            name: result.dr(dataset, k, miles)
            for name, result in multi_results.items()
        },
    )


# ---------------------------------------------------------------------------
# Table 4: multi-location case studies
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CaseStudyRow:
    """One Table 4 row: a user's true vs discovered locations."""

    user_id: int
    true_locations: tuple[str, ...]
    mlp_locations: tuple[str, ...]
    baseline_locations: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class Table4Result:
    rows: tuple[CaseStudyRow, ...]


def table4(
    dataset: Dataset,
    mlp_result: MultiLocationResult,
    baseline_result: MultiLocationResult,
    n_cases: int = 3,
    k: int = 2,
) -> Table4Result:
    """Pick the clearest multi-location wins for the case-study table.

    Cases are cohort users ranked by (MLP DR@k - baseline DR@k), i.e.
    where modeling multiple locations mattered most -- mirroring the
    paper's hand-picked examples.
    """
    from repro.evaluation.metrics import dr_of_user

    gaz = dataset.gazetteer
    if mlp_result.cohort != baseline_result.cohort:
        raise ValueError("case studies need results over the same cohort")
    gains = []
    for idx, uid in enumerate(mlp_result.cohort):
        truth = mlp_result.truths[idx]
        mlp_dr = dr_of_user(gaz, mlp_result.rankings[idx][:k], truth)
        base_dr = dr_of_user(gaz, baseline_result.rankings[idx][:k], truth)
        gains.append((mlp_dr - base_dr, mlp_dr, idx, uid))
    gains.sort(key=lambda g: (-g[0], -g[1], g[3]))
    rows = []
    for _gain, _dr, idx, uid in gains[:n_cases]:
        rows.append(
            CaseStudyRow(
                user_id=uid,
                true_locations=tuple(
                    gaz.by_id(l).name for l in mlp_result.truths[idx]
                ),
                mlp_locations=tuple(
                    gaz.by_id(l).name for l in mlp_result.rankings[idx][:k]
                ),
                baseline_locations=tuple(
                    gaz.by_id(l).name for l in baseline_result.rankings[idx][:k]
                ),
            )
        )
    return Table4Result(rows=tuple(rows))


# ---------------------------------------------------------------------------
# Table 5: relationship-explanation case study
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ExplanationCaseRow:
    """One Table 5 row: a follower edge and its location assignments."""

    follower_id: int
    follower_home: str
    assigned_user_location: str
    assigned_follower_location: str


@dataclass(frozen=True, slots=True)
class Table5Result:
    user_id: int
    user_home: str
    rows: tuple[ExplanationCaseRow, ...]


def table5(
    dataset: Dataset,
    mlp_result: MLPResult,
    user_id: int | None = None,
    max_rows: int = 8,
) -> Table5Result:
    """Show the per-edge assignments of one two-location user's followers."""
    from repro.experiments.figures import _pick_two_location_user

    if user_id is None:
        user_id = _pick_two_location_user(dataset)
    gaz = dataset.gazetteer
    user = dataset.users[user_id]
    rows = []
    for expl in mlp_result.explanations:
        if expl.friend != user_id:
            continue
        follower_home = dataset.users[expl.follower].true_home
        rows.append(
            ExplanationCaseRow(
                follower_id=expl.follower,
                follower_home=(
                    gaz.by_id(follower_home).name
                    if follower_home is not None
                    else "(unknown)"
                ),
                assigned_user_location=gaz.by_id(expl.y).name,
                assigned_follower_location=gaz.by_id(expl.x).name,
            )
        )
        if len(rows) >= max_rows:
            break
    home = user.true_home if user.true_home is not None else user.registered_location
    return Table5Result(
        user_id=user_id,
        user_home=gaz.by_id(home).name if home is not None else "(unknown)",
        rows=tuple(rows),
    )
