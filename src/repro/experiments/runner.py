"""The experiment suite: build the world once, share results across
all tables and figures.

Heavy artifacts are computed lazily and cached on the instance, so a
benchmark session that regenerates Table 2, Fig. 4 and Fig. 5 pays for
the five method fits exactly once.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.baselines import HomeLocationExplainer
from repro.data.generator import generate_world
from repro.data.model import Dataset
from repro.data.stats import DatasetStats, compute_stats
from repro.evaluation.methods import (
    MethodPrediction,
    MLPMethod,
    standard_methods,
)
from repro.evaluation.splits import (
    LabelSplit,
    k_fold_label_splits,
    single_holdout_split,
)
from repro.evaluation.tasks import (
    ExplanationTaskResult,
    HomePredictionResult,
    MultiLocationResult,
    run_explanation_task,
    run_home_prediction,
    run_multi_location_discovery,
)
from repro.experiments import figures, tables
from repro.experiments.config import ExperimentConfig


class ExperimentSuite:
    """Lazily-evaluated bundle of every paper artifact for one config."""

    def __init__(self, config: ExperimentConfig | None = None):
        self.config = config or ExperimentConfig()

    # -- shared inputs -----------------------------------------------------

    @cached_property
    def dataset(self) -> Dataset:
        """The synthetic world under experiment."""
        return generate_world(self.config.world)

    @cached_property
    def stats(self) -> DatasetStats:
        """Dataset summary statistics."""
        return compute_stats(self.dataset)

    @cached_property
    def splits(self) -> list[LabelSplit]:
        """Label splits: k-fold, or a single holdout."""
        if self.config.n_folds <= 1:
            return [
                single_holdout_split(
                    self.dataset,
                    self.config.holdout_fraction,
                    seed=self.config.split_seed,
                )
            ]
        return k_fold_label_splits(
            self.dataset, self.config.n_folds, seed=self.config.split_seed
        )

    @cached_property
    def methods(self):
        """The standard five-method lineup."""
        return standard_methods(self.config.mlp)

    # -- task results (shared by tables and figures) -------------------------

    @cached_property
    def home_results(self) -> dict[str, HomePredictionResult]:
        """Task 1 home-prediction results per method."""
        return run_home_prediction(self.dataset, self.methods, splits=self.splits)

    @cached_property
    def multi_results(self) -> dict[str, MultiLocationResult]:
        """Task 2 multi-location results per method."""
        return run_multi_location_discovery(
            self.dataset,
            self.methods,
            max_cohort=self.config.max_multi_cohort,
            seed=self.config.split_seed,
        )

    @cached_property
    def mlp_full_prediction(self) -> MethodPrediction:
        """MLP fit on the full dataset with edge tracking (Sec. 5.3)."""
        params = self.config.mlp.with_overrides(track_edge_assignments=True)
        return MLPMethod(params).predict(self.dataset)

    @cached_property
    def explanation_results(self) -> dict[str, ExplanationTaskResult]:
        """Task 3 explanation results (MLP vs Base)."""
        base = HomeLocationExplainer.from_ground_truth(self.dataset)
        return run_explanation_task(
            self.dataset,
            [
                ("MLP", self.mlp_full_prediction.edge_assignments),
                ("Base", base.edge_assignments(self.dataset)),
            ],
        )

    # -- figures ---------------------------------------------------------------

    @cached_property
    def fig3a(self) -> figures.Fig3aResult:
        """Fig. 3a result over the shared dataset."""
        return figures.fig3a(self.dataset, seed=self.config.split_seed)

    @cached_property
    def fig3b(self) -> figures.Fig3bResult:
        """Fig. 3b result over the shared dataset."""
        return figures.fig3b(self.dataset)

    @cached_property
    def fig3c(self) -> figures.Fig3cResult:
        """Fig. 3c result over the shared dataset."""
        return figures.fig3c(self.dataset)

    @cached_property
    def fig4(self) -> figures.Fig4Result:
        """Fig. 4 result from the shared home-prediction runs."""
        return figures.fig4(self.dataset, self.home_results)

    @cached_property
    def fig5(self) -> figures.Fig5Result:
        """Fig. 5 result from a fresh traced fit."""
        split = self.splits[0]
        return figures.fig5(
            self.dataset.with_labels_hidden(split.test_user_ids),
            self.config.mlp,
            np.array(split.test_user_ids, dtype=np.int64),
            np.array(split.test_truth, dtype=np.int64),
        )

    @cached_property
    def fig6(self) -> figures.RankSweepResult:
        """Fig. 6 result from the shared multi-location runs."""
        return figures.fig6(self.dataset, self.multi_results)

    @cached_property
    def fig7(self) -> figures.RankSweepResult:
        """Fig. 7 result from the shared multi-location runs."""
        return figures.fig7(self.dataset, self.multi_results)

    @cached_property
    def fig8(self) -> figures.Fig8Result:
        """Fig. 8 result from the shared explanation runs."""
        return figures.fig8(self.dataset, self.explanation_results)

    # -- tables -----------------------------------------------------------------

    @cached_property
    def table2(self) -> tables.Table2Result:
        """Table 2 from the shared home-prediction runs."""
        return tables.table2(self.dataset, self.home_results)

    @cached_property
    def table3(self) -> tables.Table3Result:
        """Table 3 from the shared multi-location runs."""
        return tables.table3(self.dataset, self.multi_results)

    @cached_property
    def table4(self) -> tables.Table4Result:
        """Table 4: MLP vs BaseU case-study rows."""
        return tables.table4(
            self.dataset,
            self.multi_results["MLP"],
            self.multi_results["BaseU"],
        )

    @cached_property
    def table5(self) -> tables.Table5Result:
        """Table 5: explanation case study for one user."""
        return tables.table5(self.dataset, self.mlp_full_prediction.detail)
