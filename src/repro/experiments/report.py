"""Text renderers: print tables and figures the way the paper shows them.

Everything returns a string (and never prints directly) so benchmark
logs, example scripts and EXPERIMENTS.md generation share one renderer.
"""

from __future__ import annotations

from repro.experiments import figures, tables
from repro.experiments.textplot import multi_scatter, scatter


def _rule(width: int = 64) -> str:
    return "-" * width


def render_table2(result: tables.Table2Result) -> str:
    """ASCII rendering of Table 2 (ACC@m per method)."""
    lines = [
        f"Table 2: Home Location Prediction (ACC@{result.miles:.0f})",
        _rule(),
    ]
    header = "  ".join(f"{name:>7s}" for name, _ in result.ordered_rows())
    values = "  ".join(f"{acc:6.1%}" for _, acc in result.ordered_rows())
    lines.append(header)
    lines.append(values)
    return "\n".join(lines)


def render_table3(result: tables.Table3Result) -> str:
    """ASCII rendering of Table 3 (DP/DR at k per method)."""
    lines = [
        f"Table 3: Multiple Location Discovery (K={result.k}, m={result.miles:.0f})",
        _rule(),
        f"{'Method':>8s}  {'DP@'+str(result.k):>7s}  {'DR@'+str(result.k):>7s}",
    ]
    for name, dp, dr in result.ordered_rows():
        lines.append(f"{name:>8s}  {dp:7.1%}  {dr:7.1%}")
    return "\n".join(lines)


def render_table4(result: tables.Table4Result) -> str:
    """ASCII rendering of Table 4 (multi-location case study)."""
    lines = ["Table 4: Case Studies on Multiple Location Discovery", _rule()]
    for row in result.rows:
        lines.append(f"user {row.user_id}:")
        lines.append(f"  true : {' | '.join(row.true_locations)}")
        lines.append(f"  MLP  : {' | '.join(row.mlp_locations)}")
        lines.append(f"  BaseU: {' | '.join(row.baseline_locations)}")
    return "\n".join(lines)


def render_table5(result: tables.Table5Result) -> str:
    """ASCII rendering of Table 5 (explanation case study)."""
    lines = [
        "Table 5: Case Studies on Relationship Explanation",
        _rule(),
        f"profiled user {result.user_id} (home: {result.user_home})",
        f"{'follower':>9s}  {'follower home':>18s}  {'user@':>18s}  {'follower@':>18s}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.follower_id:>9d}  {row.follower_home:>18s}  "
            f"{row.assigned_user_location:>18s}  {row.assigned_follower_location:>18s}"
        )
    return "\n".join(lines)


def render_fig3a(result: figures.Fig3aResult) -> str:
    """ASCII rendering of Fig. 3a."""
    lines = [
        "Fig 3(a): Following Probabilities versus Distances",
        _rule(),
        f"fitted power law: alpha={result.law.alpha:.3f} "
        f"beta={result.law.beta:.5f}  (log-log R^2={result.r_squared:.3f})",
        f"{'miles':>9s}  {'P(follow)':>10s}  {'pairs':>9s}",
    ]
    for d, p, n in zip(
        result.distances, result.probabilities, result.pair_counts
    ):
        lines.append(f"{d:9.1f}  {p:10.5f}  {int(n):9d}")
    lines.append("")
    lines.append(
        scatter(
            list(result.distances),
            list(result.probabilities),
            log_x=True,
            log_y=True,
            x_label="distance (miles)",
            y_label="P(follow)",
            title="(log-log: a power law is a straight line)",
        )
    )
    return "\n".join(lines)


def render_fig3b(result: figures.Fig3bResult) -> str:
    """ASCII rendering of Fig. 3b."""
    lines = ["Fig 3(b): Tweeting Probabilities of Top Venues", _rule()]
    for city, venues in zip(result.city_names, result.top_venues):
        lines.append(f"at {city}:")
        for venue, p in venues:
            lines.append(f"  {venue:<20s} {p:6.1%}")
    return "\n".join(lines)


def render_fig3c(result: figures.Fig3cResult) -> str:
    """ASCII rendering of Fig. 3c."""
    lines = [
        "Fig 3(c): Relationships as a Mixture of a User's Locations",
        _rule(),
        f"user {result.user_id}, true locations: "
        + " | ".join(result.true_locations),
    ]
    for region, friends, venues in zip(
        result.true_locations, result.friends_by_region, result.venues_by_region
    ):
        lines.append(
            f"  region {region}: {len(friends)} friends, "
            f"{len(venues)} venue mentions"
        )
    lines.append(f"  outside both regions: {len(result.unassigned_friends)} friends")
    return "\n".join(lines)


def render_fig4(result: figures.Fig4Result, methods: tuple[str, ...] | None = None) -> str:
    """ASCII table of the Fig. 4 accuracy curves."""
    names = list(methods) if methods else sorted(result.curves)
    lines = [
        "Fig 4: Accumulative Accuracy at Various Distance",
        _rule(),
        f"{'miles':>6s}  " + "  ".join(f"{n:>7s}" for n in names),
    ]
    for idx, m in enumerate(result.mile_grid):
        row = "  ".join(f"{result.curves[n][idx]:7.1%}" for n in names)
        lines.append(f"{m:6.0f}  {row}")
    lines.append("")
    lines.append(
        multi_scatter(
            {
                n: (list(result.mile_grid), list(result.curves[n]))
                for n in names
            },
            x_label="miles",
            y_label="accuracy",
        )
    )
    return "\n".join(lines)


def render_fig5(result: figures.Fig5Result) -> str:
    """ASCII rendering of the Fig. 5 convergence series."""
    lines = [
        "Fig 5: Accuracy Change over Iterations",
        _rule(),
        f"{'iter':>5s}  {'accuracy':>9s}  {'|change|':>9s}",
    ]
    for i, acc in enumerate(result.accuracies):
        change = (
            f"{result.accuracy_changes[i - 1]:9.4f}" if i > 0 else " " * 9
        )
        lines.append(f"{i:5d}  {acc:9.3f}  {change}")
    lines.append(
        f"converged at iteration: {result.converged_at}"
        if result.converged_at is not None
        else "did not converge within the run"
    )
    return "\n".join(lines)


def render_rank_sweep(result: figures.RankSweepResult) -> str:
    """Shared ASCII table for the Fig. 6/7 rank sweeps."""
    fig_no = "6" if result.metric == "DP" else "7"
    names = [n for n in tables.METHOD_ORDER if n in result.values] + sorted(
        n for n in result.values if n not in tables.METHOD_ORDER
    )
    lines = [
        f"Fig {fig_no}: {result.metric} at Different Ranks",
        _rule(),
        f"{'rank':>5s}  " + "  ".join(f"{n:>7s}" for n in names),
    ]
    for idx, k in enumerate(result.ranks):
        row = "  ".join(f"{result.values[n][idx]:7.1%}" for n in names)
        lines.append(f"{k:5d}  {row}")
    return "\n".join(lines)


def render_fig8(result: figures.Fig8Result) -> str:
    """ASCII rendering of the Fig. 8 accuracy curves."""
    names = sorted(result.curves)
    lines = [
        "Fig 8: Relationship Explanation Accuracy at Different Miles",
        _rule(),
        f"{'miles':>6s}  " + "  ".join(f"{n:>7s}" for n in names),
    ]
    for idx, m in enumerate(result.mile_grid):
        row = "  ".join(f"{result.curves[n][idx]:7.1%}" for n in names)
        lines.append(f"{m:6.0f}  {row}")
    return "\n".join(lines)
