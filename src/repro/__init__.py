"""repro: Multiple Location Profiling (MLP) for social-network users.

A full reproduction of Li, Wang & Chang, *Multiple Location Profiling
for Users and Relationships from Social Network and Content*, PVLDB
5(11), 2012 -- the MLP generative model, its collapsed Gibbs sampler,
the baselines it is evaluated against, a synthetic Twitter-world
substrate with exact ground truth, and a harness regenerating every
table and figure of the paper's evaluation.

Quickstart::

    from repro import MLPModel, MLPParams, SyntheticWorldConfig, generate_world

    dataset = generate_world(SyntheticWorldConfig(n_users=500, seed=7))
    result = MLPModel(MLPParams(seed=0)).fit(dataset)
    profile = result.profile_of(42)
    print(profile.describe(dataset.gazetteer))

Package map::

    repro.geo          gazetteer, coordinates, spatial index
    repro.text         tokenizer, profile parsing, venue extraction
    repro.data         containers, synthetic generator, persistence
    repro.mathx        power laws, bucketing, sampling helpers
    repro.core         the MLP model (params, priors, Gibbs, facade)
    repro.engine       vectorized sweeps, engine factory, chain pool
    repro.serving      model artifacts, fold-in predictor, HTTP server
    repro.baselines    BaseU, BaseC, home-explainer, naive references
    repro.evaluation   metrics, splits, task runners
    repro.experiments  per-table/figure drivers and text reports
"""

from repro.core.model import MLPModel, MLPResult, mlp_c_params, mlp_u_params
from repro.core.params import MLPParams
from repro.core.results import EdgeExplanation, LocationProfile
from repro.data.columnar import ColumnarWorld, compile_world
from repro.data.generator import (
    SyntheticWorldConfig,
    generate_columnar_world,
    generate_world,
)
from repro.data.model import Dataset, FollowingEdge, TweetingEdge, User
from repro.geo.gazetteer import Gazetteer, Location
from repro.geo.us_cities import builtin_gazetteer

__version__ = "1.1.0"

__all__ = [
    "ColumnarWorld",
    "Dataset",
    "EdgeExplanation",
    "FollowingEdge",
    "Gazetteer",
    "Location",
    "LocationProfile",
    "MLPModel",
    "MLPParams",
    "MLPResult",
    "SyntheticWorldConfig",
    "TweetingEdge",
    "User",
    "builtin_gazetteer",
    "compile_world",
    "generate_columnar_world",
    "generate_world",
    "mlp_c_params",
    "mlp_u_params",
    "__version__",
]
