"""The columnar world compiler: one integer-indexed substrate for all layers.

The object graph of :class:`~repro.data.model.Dataset` is the right
representation for construction, validation and serialization, but it
is the wrong one for computation: before this module existed, the loop
sampler walked per-object adjacency, the vectorized engine rebuilt
packed arenas from scratch on every fit, and serving fold-in derived
candidate/prior tables a third time.  :class:`ColumnarWorld` lowers a
dataset **once** into flat ``numpy`` arrays that every consumer shares
read-only:

- **user table**: observed home location id (``-1`` when unlabeled),
  the matching home *venue* id, and the labeled mask;
- **CSR adjacency**: ``out`` (friends of), ``in`` (followers of) and
  ``nbr`` (deduplicated undirected union) as ``indptr``/``indices``
  pairs, all in stable edge order so slices reproduce the object
  graph's tuples exactly;
- **flat relationship arenas**: ``edge_src``/``edge_dst`` for following
  relationships and ``tweet_user``/``tweet_venue`` for venue mentions,
  in dataset order (the order every sampler sweeps in);
- **venue vocabulary**: global mention counts (the TR empirical model)
  and the venue -> referent-location CSR that candidacy expansion and
  fold-in read;
- **precomputed candidate sets**: the full-signal Sec. 4.3 candidacy
  vector of every user as one more CSR, so edge scoring never re-walks
  the graph (prior construction slices instead of looping);
- a deterministic **content hash** plus ``to_arrays``/``from_arrays``
  so serving artifacts persist the compiled form and reload it with
  zero re-indexing.

**Id maps.**  All three id spaces are dense, so the bidirectional maps
are intentionally trivial: user id == row in the user table, location
id == gazetteer row, venue id == index into
``gazetteer.venue_vocabulary`` (``gazetteer.venue_index`` is the
inverse).  ``location_venue`` maps location id -> its own venue id, and
the referent CSR is the inverse (venue id -> location ids).  Anything
that survives ``to_arrays`` round-trips these maps unchanged.

**Compile-once discipline.**  :func:`compile_world` memoizes per
dataset identity (a ``WeakKeyDictionary``), so a fit, a K-chain pool
and a serving fold-in predictor built over the same dataset all share
one compiled world.  :func:`compile_count` exposes the number of real
compiles for benchmarks asserting the "compiled exactly once per fit"
contract.
"""

from __future__ import annotations

import hashlib
import weakref

import numpy as np

from repro.data.model import Dataset, FollowingEdge, TweetingEdge, User
from repro.geo.gazetteer import Gazetteer


def build_csr(groups: np.ndarray, values: np.ndarray, n_groups: int):
    """Stable CSR over ``(group, value)`` pairs: values keep input order.

    Public because it is the shared ragged-data lowering primitive:
    the world compiler builds adjacency with it, and the serving batch
    engine (:mod:`repro.serving.batch`) lowers per-request ``UserSpec``
    lists into its flat relationship arena through the same call.
    """
    counts = np.bincount(groups, minlength=n_groups)
    indptr = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(groups, kind="stable")
    return indptr, np.ascontiguousarray(values[order], dtype=np.int64)


def build_unique_csr(groups: np.ndarray, values: np.ndarray, n_groups: int):
    """CSR of the sorted, deduplicated values of each group."""
    if groups.size == 0:
        return np.zeros(n_groups + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    order = np.lexsort((values, groups))
    g = groups[order]
    v = values[order]
    keep = np.ones(g.size, dtype=bool)
    keep[1:] = (g[1:] != g[:-1]) | (v[1:] != v[:-1])
    g = g[keep]
    v = v[keep]
    counts = np.bincount(g, minlength=n_groups)
    indptr = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, np.ascontiguousarray(v, dtype=np.int64)


def location_venue_map(gazetteer: Gazetteer) -> np.ndarray:
    """location id -> the venue id of its own city name.

    The forward half of the location/venue id map (the referent CSR is
    the inverse); shared by the compiler and the sharded generator.
    """
    return np.fromiter(
        (gazetteer.venue_index[loc.venue_name] for loc in gazetteer),
        dtype=np.int64,
        count=len(gazetteer),
    )


def expand_csr(indptr: np.ndarray, indices: np.ndarray, keys: np.ndarray):
    """Concatenate ``indices[indptr[k]:indptr[k+1]]`` for every key.

    Returns ``(repeat_counts, flat_values)``: the classic vectorized
    CSR gather (no Python loop over keys).  Passing
    ``indices=np.arange(total)`` turns it into a *position* gather --
    the batch fold-in engine uses exactly that to compact its arenas
    down to the still-active users each time some users converge.
    """
    start = indptr[keys]
    cnt = indptr[keys + 1] - start
    total = int(cnt.sum())
    if total == 0:
        return cnt, np.empty(0, dtype=np.int64)
    ends = np.cumsum(cnt)
    flat = (
        np.arange(total, dtype=np.int64)
        - np.repeat(ends - cnt, cnt)
        + np.repeat(start, cnt)
    )
    return cnt, indices[flat]


#: Array keys persisted by :meth:`ColumnarWorld.to_arrays`, in layout
#: order.  ``from_arrays`` requires exactly this set.
WORLD_ARRAY_KEYS = (
    "observed_location",
    "observed_venue",
    "edge_src",
    "edge_dst",
    "tweet_user",
    "tweet_venue",
    "out_indptr",
    "out_indices",
    "in_indptr",
    "in_indices",
    "nbr_indptr",
    "nbr_indices",
    "uv_indptr",
    "uv_indices",
    "ref_indptr",
    "ref_indices",
    "cand_indptr",
    "cand_indices",
    "venue_mention_counts",
    "location_venue",
)


class ColumnarWorld:
    """A dataset lowered to integer-indexed arrays, compiled once.

    Construct through :func:`compile_world` (memoized per dataset),
    :meth:`from_edge_arrays` (the sharded generator's zero-object
    path) or :meth:`from_arrays` (artifact reload).  All arrays are
    treated as immutable after construction; consumers share them
    read-only across chains, processes and serving threads.
    """

    def __init__(
        self,
        gazetteer: Gazetteer,
        arrays: dict[str, np.ndarray],
        content_hash: str | None = None,
    ):
        self.gazetteer = gazetteer
        self.n_locations = len(gazetteer)
        self.n_venues = len(gazetteer.venue_vocabulary)
        missing = set(WORLD_ARRAY_KEYS) - arrays.keys()
        if missing:
            raise ValueError(f"columnar world missing arrays: {sorted(missing)}")
        for key in WORLD_ARRAY_KEYS:
            setattr(self, key, arrays[key])
        self.n_users = int(self.observed_location.shape[0])
        self._validate()
        self._content_hash = content_hash
        #: Incremented by every :func:`repro.data.delta.apply_delta`;
        #: a freshly compiled world is generation 0.  Serving uses it
        #: to tell world versions apart without hashing.
        self.generation: int = 0
        #: One :class:`repro.data.delta.DeltaRecord` per applied delta
        #: (generation, touched user ids, digest), oldest first --
        #: ``score_population(since_generation=g)`` reads it to rescore
        #: only delta-affected users.
        self.delta_log: tuple = ()
        # Both object-graph links are weak: the compile memo stores this
        # world as a strong *value* keyed weakly by its dataset, so a
        # strong backref here would turn every cache entry into an
        # uncollectable cycle.  Callers own the datasets; worlds only
        # point at them.
        self._dataset_ref: "weakref.ref[Dataset] | None" = None
        self._materialized_ref: "weakref.ref[Dataset] | None" = None

    # -- construction -----------------------------------------------------

    @classmethod
    def compile(cls, dataset: Dataset) -> "ColumnarWorld":
        """Lower a :class:`Dataset` into the columnar form.

        Prefer :func:`compile_world`, which memoizes; this classmethod
        always does the full lowering.
        """
        observed = np.full(dataset.n_users, -1, dtype=np.int64)
        for uid, loc in dataset.observed_locations.items():
            observed[uid] = loc
        edge_src = np.fromiter(
            (e.follower for e in dataset.following),
            dtype=np.int64,
            count=dataset.n_following,
        )
        edge_dst = np.fromiter(
            (e.friend for e in dataset.following),
            dtype=np.int64,
            count=dataset.n_following,
        )
        tweet_user = np.fromiter(
            (t.user for t in dataset.tweeting),
            dtype=np.int64,
            count=dataset.n_tweeting,
        )
        tweet_venue = np.fromiter(
            (t.venue_id for t in dataset.tweeting),
            dtype=np.int64,
            count=dataset.n_tweeting,
        )
        world = cls.from_edge_arrays(
            dataset.gazetteer,
            observed_location=observed,
            edge_src=edge_src,
            edge_dst=edge_dst,
            tweet_user=tweet_user,
            tweet_venue=tweet_venue,
        )
        world._dataset_ref = weakref.ref(dataset)
        return world

    @classmethod
    def from_edge_arrays(
        cls,
        gazetteer: Gazetteer,
        observed_location: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        tweet_user: np.ndarray,
        tweet_venue: np.ndarray,
    ) -> "ColumnarWorld":
        """Compile from raw relationship arrays (no object graph needed).

        This is the entry point both :meth:`compile` and the sharded
        synthetic generator funnel through: everything derived (CSR
        adjacency, referent map, candidate sets, mention counts) is
        built here with vectorized passes.
        """
        n_users = int(observed_location.shape[0])
        n_loc = len(gazetteer)
        n_ven = len(gazetteer.venue_vocabulary)
        observed = np.ascontiguousarray(observed_location, dtype=np.int64)
        edge_src = np.ascontiguousarray(edge_src, dtype=np.int64)
        edge_dst = np.ascontiguousarray(edge_dst, dtype=np.int64)
        tweet_user = np.ascontiguousarray(tweet_user, dtype=np.int64)
        tweet_venue = np.ascontiguousarray(tweet_venue, dtype=np.int64)

        location_venue = location_venue_map(gazetteer)
        labeled = observed >= 0
        observed_venue = np.where(
            labeled, location_venue[np.where(labeled, observed, 0)], -1
        )

        out_indptr, out_indices = build_csr(edge_src, edge_dst, n_users)
        in_indptr, in_indices = build_csr(edge_dst, edge_src, n_users)
        nbr_indptr, nbr_indices = build_unique_csr(
            np.concatenate([edge_src, edge_dst]),
            np.concatenate([edge_dst, edge_src]),
            n_users,
        )
        uv_indptr, uv_indices = build_csr(tweet_user, tweet_venue, n_users)
        venue_mention_counts = np.bincount(
            tweet_venue, minlength=n_ven
        ).astype(np.float64)

        # venue id -> referent location ids (inverse of location_venue).
        ref_indptr, ref_indices = build_unique_csr(
            location_venue, np.arange(n_loc, dtype=np.int64), n_ven
        )

        # Full-signal candidacy (Sec. 4.3): own observed location,
        # labeled neighbours' observed locations, referents of tweeted
        # venues -- assembled as (user, location) pairs and deduplicated.
        pair_users = [np.flatnonzero(labeled)]
        pair_locs = [observed[labeled]]
        src_obs = observed[edge_dst]
        keep = src_obs >= 0
        pair_users.append(edge_src[keep])
        pair_locs.append(src_obs[keep])
        dst_obs = observed[edge_src]
        keep = dst_obs >= 0
        pair_users.append(edge_dst[keep])
        pair_locs.append(dst_obs[keep])
        rep, ref_locs = expand_csr(ref_indptr, ref_indices, tweet_venue)
        pair_users.append(np.repeat(tweet_user, rep))
        pair_locs.append(ref_locs)
        cand_indptr, cand_indices = build_unique_csr(
            np.concatenate(pair_users), np.concatenate(pair_locs), n_users
        )

        return cls(
            gazetteer,
            {
                "observed_location": observed,
                "observed_venue": observed_venue,
                "edge_src": edge_src,
                "edge_dst": edge_dst,
                "tweet_user": tweet_user,
                "tweet_venue": tweet_venue,
                "out_indptr": out_indptr,
                "out_indices": out_indices,
                "in_indptr": in_indptr,
                "in_indices": in_indices,
                "nbr_indptr": nbr_indptr,
                "nbr_indices": nbr_indices,
                "uv_indptr": uv_indptr,
                "uv_indices": uv_indices,
                "ref_indptr": ref_indptr,
                "ref_indices": ref_indices,
                "cand_indptr": cand_indptr,
                "cand_indices": cand_indices,
                "venue_mention_counts": venue_mention_counts,
                "location_venue": location_venue,
            },
        )

    def _validate(self) -> None:
        n, s, k = self.n_users, self.edge_src.size, self.tweet_user.size
        if self.edge_dst.size != s or self.tweet_venue.size != k:
            raise ValueError("relationship arrays have mismatched lengths")
        for name, arr, hi in (
            ("edge_src", self.edge_src, n),
            ("edge_dst", self.edge_dst, n),
            ("tweet_user", self.tweet_user, n),
            ("tweet_venue", self.tweet_venue, self.n_venues),
            ("observed_location", self.observed_location, self.n_locations),
        ):
            if arr.size and (int(arr.min()) < (-1 if name == "observed_location" else 0) or int(arr.max()) >= hi):
                raise ValueError(f"{name} references ids outside [0, {hi})")
        for name, indptr, indices, total in (
            ("out", self.out_indptr, self.out_indices, s),
            ("in", self.in_indptr, self.in_indices, s),
            ("uv", self.uv_indptr, self.uv_indices, k),
        ):
            if indptr.size != n + 1 or int(indptr[-1]) != total or indices.size != total:
                raise ValueError(f"{name} CSR is inconsistent with the edge arenas")
        if self.ref_indptr.size != self.n_venues + 1:
            raise ValueError("referent CSR does not cover the venue vocabulary")
        if self.cand_indptr.size != n + 1 or self.nbr_indptr.size != n + 1:
            raise ValueError("per-user CSR does not cover the user table")

    @property
    def content_hash(self) -> str:
        """Deterministic digest identifying this world, computed lazily.

        For a compiled world this is the full-array sha256
        (:meth:`rehash`); for a delta-descendant world it is the
        *chained* hash ``H(parent_hash, delta_digest)`` stamped by
        :func:`repro.data.delta.apply_delta` -- same identity power,
        O(|delta|) to maintain.  Two worlds with equal arrays but
        different delta histories therefore carry different hashes;
        compare :meth:`rehash` when array-level equality is the
        question.
        """
        if self._content_hash is None:
            self._content_hash = self.rehash()
        return self._content_hash

    def rehash(self) -> str:
        """The full-array content digest, always recomputed.

        Ignores the cached (possibly chained) :attr:`content_hash`:
        two worlds agree on ``rehash()`` iff their arrays are
        bit-identical, however they were built.
        """
        digest = hashlib.sha256()
        digest.update(
            f"{self.n_users},{self.n_locations},{self.n_venues}".encode()
        )
        for key in WORLD_ARRAY_KEYS:
            arr = getattr(self, key)
            digest.update(key.encode())
            digest.update(np.ascontiguousarray(arr).tobytes())
        return digest.hexdigest()[:16]

    # -- sizes ------------------------------------------------------------

    @property
    def n_following(self) -> int:
        """Total following edges in the compiled world."""
        return int(self.edge_src.size)

    @property
    def n_tweeting(self) -> int:
        """Total tweeting edges (venue mentions)."""
        return int(self.tweet_user.size)

    @property
    def labeled_mask(self) -> np.ndarray:
        """Boolean mask of users with an observed home."""
        return self.observed_location >= 0

    # -- CSR slice accessors ----------------------------------------------

    def friends_of(self, user_id: int) -> np.ndarray:
        """Users ``user_id`` follows, in dataset edge order."""
        return self.out_indices[self.out_indptr[user_id]:self.out_indptr[user_id + 1]]

    def followers_of(self, user_id: int) -> np.ndarray:
        """Users following ``user_id``, in dataset edge order."""
        return self.in_indices[self.in_indptr[user_id]:self.in_indptr[user_id + 1]]

    def neighbors_of(self, user_id: int) -> np.ndarray:
        """Sorted deduplicated undirected neighbourhood."""
        return self.nbr_indices[self.nbr_indptr[user_id]:self.nbr_indptr[user_id + 1]]

    def venues_of(self, user_id: int) -> np.ndarray:
        """Venue ids tweeted by ``user_id`` (with repeats, edge order)."""
        return self.uv_indices[self.uv_indptr[user_id]:self.uv_indptr[user_id + 1]]

    def referents_of(self, venue_id: int) -> np.ndarray:
        """Sorted location ids the (ambiguous) venue name may refer to."""
        return self.ref_indices[self.ref_indptr[venue_id]:self.ref_indptr[venue_id + 1]]

    def candidates_of(self, user_id: int) -> np.ndarray:
        """The precomputed full-signal candidacy vector (sorted)."""
        return self.cand_indices[self.cand_indptr[user_id]:self.cand_indptr[user_id + 1]]

    # -- persistence -------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The compiled form as plain arrays (see ``WORLD_ARRAY_KEYS``)."""
        return {key: getattr(self, key) for key in WORLD_ARRAY_KEYS}

    @classmethod
    def from_arrays(
        cls, gazetteer: Gazetteer, arrays: dict[str, np.ndarray]
    ) -> "ColumnarWorld":
        """Rehydrate a persisted world; validates CSR consistency."""
        return cls(gazetteer, arrays)

    def memory_report(self) -> dict[str, dict]:
        """Bytes, dtype and shape of every compiled arena.

        The ledger behind the large-world dtype audit: benchmarks
        journal it next to peak RSS so a widened index or an
        accidentally float64 count column shows up as a reviewable
        diff, not a silent memory regression.  ``total_bytes`` sums the
        per-array sizes.
        """
        report: dict[str, dict] = {}
        total = 0
        for key in WORLD_ARRAY_KEYS:
            arr = getattr(self, key)
            report[key] = {
                "dtype": str(arr.dtype),
                "shape": tuple(arr.shape),
                "bytes": int(arr.nbytes),
            }
            total += int(arr.nbytes)
        report["total_bytes"] = total
        return report

    def dump_dir(self, directory, fsync: bool = False) -> None:
        """Persist each arena as ``<key>.npy`` under ``directory``.

        The plain-``.npy``-per-array layout (rather than one ``.npz``)
        exists so :meth:`load_dir` can hand the arrays back as
        memory-mapped views: a 1M-user world then costs address space,
        not resident memory, until a consumer touches it.

        With ``fsync=True`` every array file is fsynced after writing
        (the caller still owns directory-level durability -- see
        :func:`repro.data.journal.fsync_dir`); the
        :class:`~repro.serving.store.WorldStore` publish path uses
        this so a generation rename can never expose half-written
        arenas after a crash.
        """
        import os

        os.makedirs(directory, exist_ok=True)
        for key in WORLD_ARRAY_KEYS:
            path = os.path.join(directory, f"{key}.npy")
            with open(path, "wb") as fh:
                np.save(fh, getattr(self, key))
                if fsync:
                    fh.flush()
                    os.fsync(fh.fileno())

    @classmethod
    def load_dir(
        cls, gazetteer: Gazetteer, directory, mmap: bool = True
    ) -> "ColumnarWorld":
        """Rehydrate a :meth:`dump_dir` world, mmap-backed by default.

        With ``mmap=True`` every arena is an ``np.memmap`` view onto
        the ``.npy`` files (read-only; the OS pages slices in on
        demand).  Validation touches only array heads and extrema, so
        loading stays cheap even for worlds larger than RAM.
        """
        import os

        mode = "r" if mmap else None
        arrays = {
            key: np.load(os.path.join(directory, f"{key}.npy"), mmap_mode=mode)
            for key in WORLD_ARRAY_KEYS
        }
        return cls(gazetteer, arrays)

    # -- object-graph bridge -----------------------------------------------

    def to_dataset(self) -> Dataset:
        """Materialize the object graph (no generator ground truth).

        Only needed by consumers that genuinely require objects
        (artifact serialization, report rendering); the hot paths run
        on the arrays.  The result is registered with the compile memo,
        so ``compile_world(world.to_dataset())`` is this world again --
        but held only weakly here: the *caller* owns the materialized
        dataset, and once they drop it both the memo entry and (absent
        other references) this world are collectable.
        """
        dataset = (
            self._materialized_ref()
            if self._materialized_ref is not None
            else None
        )
        if dataset is None:
            observed = self.observed_location.tolist()
            users = [
                User(
                    user_id=uid,
                    registered_location=loc if loc >= 0 else None,
                )
                for uid, loc in enumerate(observed)
            ]
            following = [
                FollowingEdge(follower=i, friend=j)
                for i, j in zip(self.edge_src.tolist(), self.edge_dst.tolist())
            ]
            tweeting = [
                TweetingEdge(user=u, venue_id=v)
                for u, v in zip(
                    self.tweet_user.tolist(), self.tweet_venue.tolist()
                )
            ]
            dataset = Dataset(self.gazetteer, users, following, tweeting)
            self._materialized_ref = weakref.ref(dataset)
            register_world(dataset, self)
        return dataset

    def require_dataset(self) -> Dataset:
        """The dataset this world was compiled from, materializing if gone."""
        if self._dataset_ref is not None:
            dataset = self._dataset_ref()
            if dataset is not None:
                return dataset
        return self.to_dataset()

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        # Chains in worker processes only need the arrays: drop the
        # object graph (weakrefs cannot pickle, and shipping the full
        # Dataset across process boundaries is the cost this compiler
        # exists to remove).
        return {
            "gazetteer": self.gazetteer,
            "arrays": self.to_arrays(),
            "content_hash": self._content_hash,  # None if never computed
            "generation": self.generation,
            "delta_log": self.delta_log,
        }

    def __setstate__(self, state):
        self.__init__(
            state["gazetteer"], state["arrays"], state["content_hash"]
        )
        self.generation = state.get("generation", 0)
        self.delta_log = state.get("delta_log", ())

    def __repr__(self) -> str:
        return (
            f"ColumnarWorld(users={self.n_users}, "
            f"following={self.n_following}, tweeting={self.n_tweeting}, "
            f"locations={self.n_locations}, hash={self.content_hash})"
        )


# -- the compile-once memo -------------------------------------------------

_WORLD_CACHE: "weakref.WeakKeyDictionary[Dataset, ColumnarWorld]" = (
    weakref.WeakKeyDictionary()
)
#: Cheap shape fingerprint of each memoized dataset, recorded at
#: compile time.  The memo is keyed by object *identity*; if a caller
#: mutates a Dataset in place, identity no longer implies content and
#: the memo would silently serve arrays of the old content.  The
#: fingerprint (a poor man's generation counter -- it advances exactly
#: when the relationship multisets or user table change size) lets the
#: memo detect that and refuse loudly.
_WORLD_FINGERPRINTS: "weakref.WeakKeyDictionary[Dataset, tuple]" = (
    weakref.WeakKeyDictionary()
)
_COMPILE_COUNT = 0


class StaleWorldError(ValueError):
    """A memoized dataset was mutated in place after compilation."""


def _dataset_fingerprint(dataset: Dataset) -> tuple:
    return (
        dataset.n_users,
        len(dataset.following),
        len(dataset.tweeting),
        len(dataset.gazetteer),
    )


def compile_world(source: "Dataset | ColumnarWorld") -> ColumnarWorld:
    """The memoized entry point every consumer uses.

    Passing an already-compiled world is free; passing a dataset
    compiles at most once per dataset identity.  The memo is keyed by
    object identity (datasets are immutable by convention), and holds
    the dataset weakly so worlds die with their datasets.  Mutating a
    memoized dataset in place is undefined behaviour; the memo detects
    the common case -- any mutation that changes the user-table,
    relationship or gazetteer *sizes* -- and raises
    :class:`StaleWorldError` instead of serving the stale world
    (same-size in-place edits cannot be caught without rehashing the
    content on every call).  Growing a world incrementally is what
    :mod:`repro.data.delta` is for.
    """
    global _COMPILE_COUNT
    if isinstance(source, ColumnarWorld):
        return source
    if not isinstance(source, Dataset):
        raise TypeError(
            f"expected a Dataset or ColumnarWorld, got {type(source).__name__}"
        )
    world = _WORLD_CACHE.get(source)
    if world is None:
        _COMPILE_COUNT += 1
        world = ColumnarWorld.compile(source)
        _WORLD_CACHE[source] = world
        _WORLD_FINGERPRINTS[source] = _dataset_fingerprint(source)
    else:
        recorded = _WORLD_FINGERPRINTS.get(source)
        current = _dataset_fingerprint(source)
        if recorded is not None and recorded != current:
            raise StaleWorldError(
                "dataset was mutated in place after its world was "
                f"compiled (shape {recorded} -> {current}); datasets "
                "are immutable by convention -- build a new Dataset, "
                "or stream changes with repro.data.delta.WorldDelta"
            )
    return world


def register_world(dataset: Dataset, world: ColumnarWorld) -> None:
    """Pre-seed the memo (artifact loads, sharded generation).

    The world adopts ``dataset`` as its object-graph view only when it
    has no live one already -- a world compiled from dataset A and
    later registered for a materialized copy keeps answering
    ``require_dataset()`` with A.
    """
    current = (
        world._dataset_ref() if world._dataset_ref is not None else None
    )
    if current is None:
        world._dataset_ref = weakref.ref(dataset)
    _WORLD_CACHE[dataset] = world
    _WORLD_FINGERPRINTS[dataset] = _dataset_fingerprint(dataset)


def compile_count() -> int:
    """Number of real (non-memoized) compiles since process start.

    Benchmarks diff this around a fit to assert the compile-once
    contract (one world per fit, shared by all chains and by serving).
    """
    return _COMPILE_COUNT
