"""Durable ingest: a write-ahead delta journal with snapshot/compaction.

Streaming ingest (:mod:`repro.data.delta`) made worlds mutable by
delta -- but only in memory: a restarted server silently forgot every
ingested user.  This module makes the delta stream **durable**:

- **write-ahead journal**: every :class:`~repro.data.delta.WorldDelta`
  is appended to ``journal.wal`` *before* it is applied, as one
  length-prefixed binary record -- a CRC32-checksummed body carrying
  the post-apply generation, the chained world hash the apply must
  land on, and the delta's JSON wire form
  (:meth:`WorldDelta.to_payload`).  Fsyncs batch: with
  ``fsync_every=1`` (the default) every acknowledged delta survives
  ``kill -9``; larger values trade the tail of a crash window for
  append throughput;
- **snapshot / compaction**: :meth:`DeltaJournal.snapshot` checkpoints
  the compiled world (``ColumnarWorld.to_arrays``) into a versioned
  ``snapshot-<generation>.world.npz`` (written to a temp file, fsynced,
  atomically renamed); :meth:`DeltaJournal.compact` snapshots and then
  truncates the journal behind it, so recovery cost is bounded by the
  tail since the last checkpoint, not the lifetime of the stream;
- **startup replay**: :func:`open_journal` loads the newest snapshot
  that *chains into* the journal (a stale or corrupt snapshot falls
  back to older ones and finally to the base world), then replays the
  tail -- verifying, per record, that ``generation`` advances by one
  and that ``chain_hash(parent, delta.digest())`` equals the recorded
  hash *before* applying.  The reconstructed world therefore carries
  the exact pre-crash generation and chained hash, and its arrays are
  bit-identical to applying the longest valid delta prefix from
  scratch (``tests/test_journal_recovery.py`` pins this under torn
  writes, bit flips, duplicated tails, stale snapshots and
  ``kill -9``).

**Failure semantics.**  A torn tail (crash mid-append) or a
CRC-corrupt record ends the structurally valid prefix: recovery
truncates the file back to it and replays what remains.  A record that
is structurally valid but does not chain from the recovered state is
dropped the same way (prefix-consistent recovery, never a partial or
out-of-order apply).  Two corruptions are *not* silently repaired,
because truncation would destroy data that is still recoverable
elsewhere: a journal whose first record does not chain from any
available state (missing/foreign snapshot) and a file without the
magic header both raise :class:`JournalError`.

**The authoritative touched log.**  The in-memory
``world.delta_log`` retains only ``DELTA_LOG_LIMIT`` records, so
``touched_since`` windows older than that fail loudly.  The journal
keeps a touched-user index for every generation since its last
snapshot (populated by :func:`append_and_apply` /
:func:`journaled_ingest` on the write path and by replay on recovery),
so :meth:`DeltaJournal.touched_since` answers from the durable log --
``score_population(..., journal=...)`` re-scores exactly the affected
users no matter how far behind the caller fell, up to the last
compaction point.
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import time
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.columnar import WORLD_ARRAY_KEYS, ColumnarWorld
from repro.data.delta import (
    WorldDelta,
    apply_delta,
    chain_hash,
    validate_delta,
)
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

#: Durability-path instrumentation: append/fsync/snapshot/replay
#: timings and counts.  All read-only -- the journal bytes and the
#: replayed worlds are bit-identical with metrics on or off.
_REG = obs_metrics.get_registry()
JOURNAL_APPENDS = _REG.counter(
    "repro_journal_appends_total", "Delta records appended to the journal"
)
JOURNAL_APPEND_SECONDS = _REG.histogram(
    "repro_journal_append_seconds",
    "Wall time of one journal append (encode + write + flush, "
    "including any fsync the batching policy triggered)",
)
JOURNAL_FSYNCS = _REG.counter(
    "repro_journal_fsyncs_total", "fsync calls issued on the journal file"
)
JOURNAL_FSYNC_SECONDS = _REG.histogram(
    "repro_journal_fsync_seconds", "Wall time of journal fsync calls"
)
JOURNAL_SNAPSHOTS = _REG.counter(
    "repro_journal_snapshots_total", "World snapshots written"
)
JOURNAL_SNAPSHOT_SECONDS = _REG.histogram(
    "repro_journal_snapshot_seconds",
    "Wall time to write + fsync one world snapshot",
)
JOURNAL_REPLAYS = _REG.counter(
    "repro_journal_replays_total", "Journal recovery passes run"
)
JOURNAL_REPLAYED_RECORDS = _REG.counter(
    "repro_journal_replayed_records_total",
    "Delta records re-applied during recovery",
)
JOURNAL_REPLAY_SECONDS = _REG.histogram(
    "repro_journal_replay_seconds",
    "Wall time of one full recovery (scan + repair + replay)",
)

__all__ = [
    "DeltaJournal",
    "fsync_dir",
    "JournalError",
    "JournalRecord",
    "append_and_apply",
    "journaled_ingest",
    "open_journal",
    "scan_journal",
]

#: File header of ``journal.wal``; a file without it is not a journal
#: (never silently truncated into one).
JOURNAL_MAGIC = b"RPWJ0001"
JOURNAL_FILE = "journal.wal"
SNAPSHOT_VERSION = 1
#: Snapshots kept after a compaction (the newest ones); older files
#: are pruned.  Two, so one corrupt checkpoint never strands recovery
#: on a full-journal replay alone.
SNAPSHOTS_KEPT = 2
#: Structural sanity cap on one record's body; matches the server's
#: largest request budget, so no legitimate delta can exceed it.
MAX_RECORD_BYTES = 64 << 20

#: Record layout: ``u32 body_len | u32 crc32(body) | body`` with
#: ``body = u64 generation | 16-byte chained world hash | payload``
#: (the delta's JSON wire form, UTF-8).  Little-endian throughout.
_HEADER = struct.Struct("<II")
_BODY_HEAD = struct.Struct("<Q16s")

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.world\.npz$")


class JournalError(ValueError):
    """The journal directory cannot be opened or recovered safely."""


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One structurally valid journal record, as scanned from disk."""

    generation: int
    #: The chained world hash the world must carry *after* applying
    #: this record's delta -- the replay verification target.
    world_hash: str
    #: The delta's JSON wire form (:meth:`WorldDelta.to_payload`).
    payload: dict
    #: Byte span ``[start, end)`` of the record in ``journal.wal``.
    start: int
    end: int
    #: True when this record is a byte-identical repeat of its
    #: predecessor (a crash-retry artifact); replay skips it.
    duplicate: bool = False


def _encode_record(generation: int, world_hash: str, payload: dict) -> bytes:
    raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    body = _BODY_HEAD.pack(generation, world_hash.encode("ascii")) + raw
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def scan_journal(
    path: str | Path,
) -> tuple[list[JournalRecord], int, str | None]:
    """Parse the longest structurally valid record prefix of a journal.

    Returns ``(records, valid_end, error)``: every record of the valid
    prefix (duplicates flagged, not dropped), the byte offset where
    that prefix ends, and ``None`` or a description of why scanning
    stopped (torn tail, CRC mismatch, generation disorder...).  Purely
    structural -- chain hashes are verified later, against an actual
    world, by replay.
    """
    data = Path(path).read_bytes()
    if not data.startswith(JOURNAL_MAGIC):
        raise JournalError(
            f"{path}: not a delta journal (missing {JOURNAL_MAGIC!r} header)"
        )
    records: list[JournalRecord] = []
    pos = len(JOURNAL_MAGIC)
    prev: JournalRecord | None = None
    prev_bytes: bytes | None = None
    error: str | None = None
    while pos < len(data):
        start = pos
        if pos + _HEADER.size > len(data):
            error = "torn record header at end of journal"
            break
        body_len, crc = _HEADER.unpack_from(data, pos)
        pos += _HEADER.size
        if body_len < _BODY_HEAD.size or body_len > MAX_RECORD_BYTES:
            error = f"implausible record length {body_len}"
            break
        if pos + body_len > len(data):
            error = "torn record body at end of journal"
            break
        body = data[pos : pos + body_len]
        pos += body_len
        if zlib.crc32(body) != crc:
            error = "record checksum mismatch"
            break
        generation, hash_bytes = _BODY_HEAD.unpack_from(body, 0)
        try:
            world_hash = hash_bytes.decode("ascii")
            payload = json.loads(body[_BODY_HEAD.size :].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            error = "record payload is not valid JSON"
            break
        if not isinstance(payload, dict):
            error = "record payload is not a JSON object"
            break
        duplicate = False
        if prev is not None:
            if generation == prev.generation:
                if data[start:pos] == prev_bytes:
                    duplicate = True
                else:
                    error = (
                        f"conflicting records for generation {generation}"
                    )
                    break
            elif generation != prev.generation + 1:
                error = (
                    f"generation jumped {prev.generation} -> {generation}"
                )
                break
        record = JournalRecord(
            generation=generation,
            world_hash=world_hash,
            payload=payload,
            start=start,
            end=pos,
            duplicate=duplicate,
        )
        records.append(record)
        if not duplicate:
            prev = record
            prev_bytes = data[start:pos]
    valid_end = records[-1].end if records else len(JOURNAL_MAGIC)
    return records, valid_end, error


def fsync_dir(directory: Path) -> None:
    """Make a rename/creation in ``directory`` durable (best effort).

    Public because the directory-fsync idiom is shared durability
    machinery: the journal uses it around snapshot renames and journal
    truncation, and the :class:`~repro.serving.store.WorldStore` uses
    the same call when it renames a published generation into place.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


class DeltaJournal:
    """The durable write-ahead delta log of one served world.

    One directory holds ``journal.wal`` plus versioned
    ``snapshot-<generation>.world.npz`` checkpoints.  All mutating
    methods serialize on :attr:`lock` (reentrant, so the
    append-then-apply helpers can hold it across both steps).
    Construct directly for a fresh/append-only handle; go through
    :func:`open_journal` to recover state from disk.
    """

    def __init__(
        self,
        directory: str | Path,
        fsync_every: int = 1,
        create: bool = True,
    ):
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_FILE
        self.fsync_every = int(fsync_every)
        self.lock = threading.RLock()
        self._fh = None
        self._n_records = 0
        self._generation = 0
        self._last_hash: str | None = None
        self._floor_generation = 0
        self._pending_sync = 0
        self._last_sync: float | None = None
        self._touched: dict[int, np.ndarray] = {}
        if not self.path.exists():
            if not create:
                raise JournalError(f"no journal at {self.path}")
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.path, "wb") as fh:
                fh.write(JOURNAL_MAGIC)
                fh.flush()
                os.fsync(fh.fileno())
            fsync_dir(self.directory)

    # -- positions ---------------------------------------------------------

    @property
    def generation(self) -> int:
        """Generation of the last appended (or recovered) record."""
        return self._generation

    @property
    def floor_generation(self) -> int:
        """Oldest generation the touched-user index covers (exclusive).

        Windows reaching past it (``touched_since(g)`` with
        ``g < floor``) require a full re-score -- the records behind
        the last snapshot were compacted away.
        """
        return self._floor_generation

    def stats(self) -> dict:
        """Journal observability for ``/healthz`` and the CLI."""
        with self.lock:
            try:
                nbytes = self.path.stat().st_size
            except OSError:
                nbytes = 0
            return {
                "path": str(self.path),
                "records": self._n_records,
                "generation": self._generation,
                "snapshot_generation": self._floor_generation,
                "bytes": nbytes,
                "fsync_every": self.fsync_every,
                "pending_fsync": self._pending_sync,
                "last_fsync_unix": self._last_sync,
            }

    # -- append path -------------------------------------------------------

    def _handle(self):
        if self._fh is None:
            self._fh = open(self.path, "ab")
        return self._fh

    def append(
        self, delta: WorldDelta, generation: int, world_hash: str
    ) -> JournalRecord:
        """Write-ahead append one delta; the caller applies it *after*.

        ``generation``/``world_hash`` are the post-apply identity the
        record promises (``parent generation + 1`` and
        ``chain_hash(parent_hash, delta.digest())``); replay verifies
        the promise before re-applying.  Durability follows the fsync
        policy: the fh is always flushed, fsynced every
        ``fsync_every`` appends (:meth:`sync` forces one).
        """
        if len(world_hash) != 16:
            raise JournalError(
                f"world hash must be 16 hex chars, got {world_hash!r}"
            )
        with self.lock:
            if generation != self._generation + 1:
                raise JournalError(
                    f"append out of order: journal is at generation "
                    f"{self._generation}, record claims {generation}"
                )
            t0 = time.perf_counter()
            payload = delta.to_payload()
            encoded = _encode_record(generation, world_hash, payload)
            fh = self._handle()
            start = fh.tell()
            with span("journal.append"):
                fh.write(encoded)
                fh.flush()
                self._pending_sync += 1
                if self._pending_sync >= self.fsync_every:
                    t_sync = time.perf_counter()
                    os.fsync(fh.fileno())
                    JOURNAL_FSYNC_SECONDS.observe(time.perf_counter() - t_sync)
                    JOURNAL_FSYNCS.inc()
                    self._pending_sync = 0
                    self._last_sync = time.time()
            JOURNAL_APPEND_SECONDS.observe(time.perf_counter() - t0)
            JOURNAL_APPENDS.inc()
            self._n_records += 1
            self._generation = generation
            self._last_hash = world_hash
            return JournalRecord(
                generation=generation,
                world_hash=world_hash,
                payload=payload,
                start=start,
                end=start + len(encoded),
            )

    def sync(self) -> None:
        """Force an fsync of any appends still in the batching window."""
        with self.lock:
            if self._fh is not None and self._pending_sync:
                self._fh.flush()
                t0 = time.perf_counter()
                os.fsync(self._fh.fileno())
                JOURNAL_FSYNC_SECONDS.observe(time.perf_counter() - t0)
                JOURNAL_FSYNCS.inc()
                self._pending_sync = 0
                self._last_sync = time.time()

    def close(self) -> None:
        """Fsync pending appends and release the file handle."""
        with self.lock:
            self.sync()
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- touched-user index ------------------------------------------------

    def note_touched(self, generation: int, touched_users: np.ndarray) -> None:
        """Record the touched-user set of one applied generation."""
        with self.lock:
            self._touched[int(generation)] = np.asarray(
                touched_users, dtype=np.int64
            )

    def touched_since(self, since_generation: int) -> np.ndarray:
        """Sorted unique users touched by generations > ``since_generation``.

        The durable counterpart of
        :func:`repro.data.delta.touched_since`: answers from the
        journal's index, which covers every generation since the last
        snapshot -- far past the in-memory ``DELTA_LOG_LIMIT`` window.
        Raises :class:`repro.data.delta.StaleWindowError` only when the
        window reaches behind the last compaction point (or a recovered
        journal has no touched index for a requested generation); the
        recovery in both cases is a full re-score.
        """
        from repro.data.delta import StaleWindowError

        with self.lock:
            since_generation = max(0, int(since_generation))
            if since_generation >= self._generation:
                return np.empty(0, dtype=np.int64)
            if since_generation < self._floor_generation:
                raise StaleWindowError(
                    f"journal covers generations "
                    f"{self._floor_generation + 1}..{self._generation}; "
                    f"since_generation={since_generation} reaches behind "
                    "the last snapshot -- run a full re-score"
                )
            parts = []
            for gen in range(since_generation + 1, self._generation + 1):
                arr = self._touched.get(gen)
                if arr is None:
                    raise StaleWindowError(
                        f"journal has no touched-user index for "
                        f"generation {gen} -- run a full re-score"
                    )
                parts.append(arr)
            return np.unique(np.concatenate(parts))

    # -- snapshots ---------------------------------------------------------

    def snapshot_paths(self) -> list[Path]:
        """Snapshot files present, newest generation first."""
        found = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        return [path for _, path in sorted(found, reverse=True)]

    def snapshot(self, world: ColumnarWorld) -> Path:
        """Checkpoint ``world`` as ``snapshot-<generation>.world.npz``.

        Durable by construction: written to a temp file, fsynced,
        atomically renamed, directory fsynced.  Uncompressed
        ``np.savez`` -- recovery latency is the point of a snapshot,
        and the journal it truncates was the space concern.
        """
        with self.lock:
            t0 = time.perf_counter()
            meta = {
                "format_version": SNAPSHOT_VERSION,
                "generation": world.generation,
                "content_hash": world.content_hash,
                "world_rehash": world.rehash(),
                "n_users": world.n_users,
                "created_unix": time.time(),
            }
            name = f"snapshot-{world.generation:012d}.world.npz"
            tmp = self.directory / (name + ".tmp")
            with span("journal.snapshot"):
                with open(tmp, "wb") as fh:
                    np.savez(
                        fh,
                        meta=np.array(json.dumps(meta)),
                        **{
                            f"world_{key}": arr
                            for key, arr in world.to_arrays().items()
                        },
                    )
                    fh.flush()
                    os.fsync(fh.fileno())
                path = self.directory / name
                os.replace(tmp, path)
                fsync_dir(self.directory)
            JOURNAL_SNAPSHOT_SECONDS.observe(time.perf_counter() - t0)
            JOURNAL_SNAPSHOTS.inc()
            return path

    def compact(self, world: ColumnarWorld) -> dict:
        """Snapshot ``world`` and truncate the journal behind it.

        Crash-safe ordering: the snapshot rename lands before the
        journal reset, so a crash in between leaves snapshot + full
        journal -- recovery skips the already-snapshotted records.
        Old snapshots beyond :data:`SNAPSHOTS_KEPT` are pruned last.
        """
        with self.lock:
            if world.generation != self._generation or (
                self._last_hash is not None
                and world.content_hash != self._last_hash
            ):
                raise JournalError(
                    f"compact got a world at generation {world.generation} "
                    f"({world.content_hash}) but the journal is at "
                    f"{self._generation} ({self._last_hash})"
                )
            snapshot_path = self.snapshot(world)
            removed = self._n_records
            self.close()
            tmp = self.directory / (JOURNAL_FILE + ".tmp")
            with open(tmp, "wb") as fh:
                fh.write(JOURNAL_MAGIC)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            fsync_dir(self.directory)
            self._n_records = 0
            self._pending_sync = 0
            self._floor_generation = world.generation
            self._touched.clear()
            pruned = []
            for stale in self.snapshot_paths()[SNAPSHOTS_KEPT:]:
                stale.unlink()
                pruned.append(str(stale))
            return {
                "snapshot": str(snapshot_path),
                "generation": world.generation,
                "world_hash": world.content_hash,
                "records_compacted": removed,
                "snapshots_pruned": pruned,
            }

    def _load_snapshot(self, path: Path, gazetteer) -> ColumnarWorld:
        """Load one checkpoint; :class:`JournalError` on any corruption."""
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"][()]))
                if meta.get("format_version") != SNAPSHOT_VERSION:
                    raise JournalError(
                        f"{path}: unsupported snapshot version "
                        f"{meta.get('format_version')!r}"
                    )
                arrays = {
                    key: data[f"world_{key}"] for key in WORLD_ARRAY_KEYS
                }
            world = ColumnarWorld.from_arrays(gazetteer, arrays)
            if world.rehash() != meta["world_rehash"]:
                raise JournalError(
                    f"{path}: snapshot arrays do not match their recorded "
                    "digest (corrupt checkpoint)"
                )
        except JournalError:
            raise
        except (
            OSError,
            KeyError,
            ValueError,
            zipfile.BadZipFile,
            json.JSONDecodeError,
        ) as exc:
            raise JournalError(f"{path}: unreadable snapshot ({exc})") from exc
        world._content_hash = meta["content_hash"]
        world.generation = int(meta["generation"])
        return world

    # -- recovery ----------------------------------------------------------

    def _pick_state(
        self, base_world: ColumnarWorld, live: list[JournalRecord]
    ) -> tuple[ColumnarWorld, Path | None]:
        """Newest recoverable state that chains into the journal tail.

        Snapshots are tried newest first; one is accepted only if the
        journal record *after* it exists contiguously and its recorded
        hash chains from the snapshot (or no such record exists and
        any overlapping record agrees on the hash).  Fallback is the
        base world; if even that cannot reach the journal's first
        record, the journal belongs to a different history (or its
        snapshot is gone) and recovery refuses rather than truncate.
        """
        candidates: list[tuple[ColumnarWorld, Path | None]] = []
        for path in self.snapshot_paths():
            try:
                candidates.append(
                    (self._load_snapshot(path, base_world.gazetteer), path)
                )
            except JournalError:
                continue
        candidates.append((base_world, None))
        for world, path in candidates:
            tail = [r for r in live if r.generation > world.generation]
            if tail:
                first = tail[0]
                if first.generation != world.generation + 1:
                    if path is None:
                        raise JournalError(
                            f"journal resumes at generation "
                            f"{first.generation} but the best available "
                            f"state is generation {world.generation} -- "
                            "snapshot missing or corrupt"
                        )
                    continue
                delta = WorldDelta.from_payload(first.payload)
                if chain_hash(
                    world.content_hash, delta.digest()
                ) != first.world_hash:
                    if path is None:
                        raise JournalError(
                            "journal does not chain from this world "
                            "(wrong artifact for this journal directory?)"
                        )
                    continue
            else:
                overlap = [
                    r for r in live if r.generation == world.generation
                ]
                if overlap and overlap[-1].world_hash != world.content_hash:
                    if path is None:
                        raise JournalError(
                            "journal history disagrees with this world "
                            "at its own generation"
                        )
                    continue
            return world, path
        raise AssertionError("unreachable: base world is always a candidate")

    def recover(self, base_world: ColumnarWorld) -> tuple[ColumnarWorld, dict]:
        """Rebuild the durable world: scan, repair, pick state, replay.

        Returns ``(world, report)``.  The journal file is repaired in
        place: a structurally invalid suffix (torn/corrupt records)
        and any suffix that fails chain verification mid-replay are
        truncated, so the file afterwards holds exactly the applied
        history and appends continue from it.
        """
        with self.lock:
            t0 = time.perf_counter()
            self.close()
            records, valid_end, scan_error = scan_journal(self.path)
            size = self.path.stat().st_size
            repaired = size - valid_end
            if repaired:
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid_end)
                    fh.flush()
                    os.fsync(fh.fileno())
            live = [r for r in records if not r.duplicate]
            state, snapshot_path = self._pick_state(base_world, live)
            world = state
            replayed = 0
            skipped = 0
            drop_from: int | None = None
            dropped = 0
            for record in records:
                if drop_from is not None:
                    dropped += 1
                    continue
                if record.duplicate or record.generation <= world.generation:
                    skipped += 1
                    continue
                delta = WorldDelta.from_payload(record.payload)
                if record.generation != world.generation + 1 or chain_hash(
                    world.content_hash, delta.digest()
                ) != record.world_hash:
                    drop_from = record.start
                    dropped += 1
                    continue
                world = apply_delta(world, delta)
                self._touched[world.generation] = world.delta_log[
                    -1
                ].touched_users
                replayed += 1
            if drop_from is not None:
                with open(self.path, "r+b") as fh:
                    fh.truncate(drop_from)
                    fh.flush()
                    os.fsync(fh.fileno())
            self._n_records = replayed + skipped
            self._generation = world.generation
            self._last_hash = world.content_hash
            self._floor_generation = state.generation
            report = {
                "generation": world.generation,
                "world_hash": world.content_hash,
                "records": self._n_records,
                "replayed": replayed,
                "skipped": skipped,
                "dropped_records": dropped,
                "repaired_bytes": repaired,
                "scan_error": scan_error,
                "snapshot_generation": (
                    state.generation if snapshot_path is not None else None
                ),
                "snapshot": (
                    str(snapshot_path) if snapshot_path is not None else None
                ),
            }
            JOURNAL_REPLAY_SECONDS.observe(time.perf_counter() - t0)
            JOURNAL_REPLAYS.inc()
            if replayed:
                JOURNAL_REPLAYED_RECORDS.inc(replayed)
            return world, report


def open_journal(
    directory: str | Path,
    base_world: ColumnarWorld,
    fsync_every: int = 1,
    create: bool = True,
) -> tuple[ColumnarWorld, DeltaJournal, dict]:
    """Open (or create) a journal directory and recover its world.

    ``base_world`` is the artifact's compiled world -- the generation-0
    anchor the chain starts from.  Returns
    ``(world, journal, report)``: the recovered world (``base_world``
    itself when the journal is empty), the journal positioned for
    appends, and the recovery report.
    """
    journal = DeltaJournal(directory, fsync_every=fsync_every, create=create)
    world, report = journal.recover(base_world)
    return world, journal, report


def append_and_apply(
    journal: DeltaJournal, world: ColumnarWorld, delta: WorldDelta
) -> ColumnarWorld:
    """Durable apply at the data level: validate, append, apply, index.

    Write-ahead ordering -- the record is on disk before the apply, so
    a crash between the two replays to the exact same world.  The
    delta is validated *first*: an invalid delta must never reach the
    journal, or replay would halt on it forever.
    """
    with journal.lock:
        validate_delta(world, delta)
        generation = world.generation + 1
        world_hash = chain_hash(world.content_hash, delta.digest())
        journal.append(delta, generation, world_hash)
        new_world = apply_delta(world, delta)
        journal.note_touched(
            generation, new_world.delta_log[-1].touched_users
        )
        return new_world


def journaled_ingest(predictor, journal: DeltaJournal, delta: WorldDelta):
    """Durable serving ingest: append-then-refresh under the journal lock.

    The serving twin of :func:`append_and_apply`:
    ``predictor.refresh`` swaps the served world and invalidates
    caches exactly as in-memory ingest does, but only after the record
    is journaled.  All ingests of a journaled server must go through
    here (direct ``refresh`` calls would desync the generation chain).
    """
    with journal.lock:
        world = predictor.world
        validate_delta(world, delta)
        generation = world.generation + 1
        world_hash = chain_hash(world.content_hash, delta.digest())
        journal.append(delta, generation, world_hash)
        new_world = predictor.refresh(delta)
        journal.note_touched(
            generation, new_world.delta_log[-1].touched_users
        )
        return new_world
