"""Data substrate: containers, synthetic world generation, persistence.

The paper's evaluation data is a 2011 Twitter crawl we cannot obtain;
:mod:`repro.data.generator` builds a synthetic equivalent whose
generative process matches the paper's model family and measured
statistics (see DESIGN.md section 2), with exact ground truth for all
three evaluation tasks.
"""

from repro.data.model import (
    Dataset,
    FollowingEdge,
    Tweet,
    TweetingEdge,
    User,
)
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.data.io import load_dataset, save_dataset
from repro.data.stats import DatasetStats, compute_stats

__all__ = [
    "Dataset",
    "DatasetStats",
    "FollowingEdge",
    "SyntheticWorldConfig",
    "Tweet",
    "TweetingEdge",
    "User",
    "compute_stats",
    "generate_world",
    "load_dataset",
    "save_dataset",
]
