"""Data substrate: containers, synthetic world generation, persistence.

The paper's evaluation data is a 2011 Twitter crawl we cannot obtain;
:mod:`repro.data.generator` builds a synthetic equivalent whose
generative process matches the paper's model family and measured
statistics (see DESIGN.md section 2), with exact ground truth for all
three evaluation tasks.

:mod:`repro.data.columnar` is the compiled form of it all: a
:class:`~repro.data.columnar.ColumnarWorld` lowers a dataset once into
integer-indexed arrays that sampling, serving and evaluation share
(see docs/ARCHITECTURE.md, "The columnar world").
"""

from repro.data.columnar import ColumnarWorld, compile_world
from repro.data.generator import (
    SyntheticWorldConfig,
    generate_columnar_world,
    generate_world,
)
from repro.data.io import load_dataset, save_dataset
from repro.data.model import (
    Dataset,
    FollowingEdge,
    Tweet,
    TweetingEdge,
    User,
)
from repro.data.stats import DatasetStats, compute_stats

__all__ = [
    "ColumnarWorld",
    "Dataset",
    "DatasetStats",
    "FollowingEdge",
    "SyntheticWorldConfig",
    "Tweet",
    "TweetingEdge",
    "User",
    "compile_world",
    "compute_stats",
    "generate_columnar_world",
    "generate_world",
    "load_dataset",
    "save_dataset",
]
