"""Data substrate: containers, synthetic world generation, persistence.

The paper's evaluation data is a 2011 Twitter crawl we cannot obtain;
:mod:`repro.data.generator` builds a synthetic equivalent whose
generative process matches the paper's model family and measured
statistics (see DESIGN.md section 2), with exact ground truth for all
three evaluation tasks.

:mod:`repro.data.columnar` is the compiled form of it all: a
:class:`~repro.data.columnar.ColumnarWorld` lowers a dataset once into
integer-indexed arrays that sampling, serving and evaluation share
(see docs/ARCHITECTURE.md, "The columnar world").
:mod:`repro.data.delta` keeps that compiled form *live*: a
:class:`~repro.data.delta.WorldDelta` batch of arrivals splices into an
existing world in O(|delta| + touched rows), bit-identical to a full
recompile (see docs/ARCHITECTURE.md, "Streaming ingest").
"""

from repro.data.columnar import ColumnarWorld, StaleWorldError, compile_world
from repro.data.delta import DeltaRecord, WorldDelta, apply_delta
from repro.data.generator import (
    SyntheticWorldConfig,
    generate_columnar_world,
    generate_world,
)
from repro.data.io import load_dataset, save_dataset
from repro.data.model import (
    Dataset,
    FollowingEdge,
    Tweet,
    TweetingEdge,
    User,
)
from repro.data.stats import DatasetStats, compute_stats

__all__ = [
    "ColumnarWorld",
    "Dataset",
    "DatasetStats",
    "DeltaRecord",
    "FollowingEdge",
    "StaleWorldError",
    "SyntheticWorldConfig",
    "Tweet",
    "TweetingEdge",
    "User",
    "WorldDelta",
    "apply_delta",
    "compile_world",
    "compute_stats",
    "generate_columnar_world",
    "generate_world",
    "load_dataset",
    "save_dataset",
]
