"""Core data containers: users, relationships, datasets.

Terminology follows Sec. 3 of the paper exactly:

- a **following relationship** ``f<i,j>`` goes from follower ``u_i`` to
  friend ``u_j``;
- a **tweeting relationship** ``t<i,j>`` goes from user ``u_i`` to venue
  ``v_j`` (one relationship per mention, so a user tweeting "austin"
  five times produces five relationships);
- **labeled users** ``U*`` have an observed city-level home location,
  the rest are **unlabeled** ``U^N``.

Ground-truth fields (``true_*``) are populated by the synthetic
generator and are ``None`` on real/imported data; evaluation code reads
them only through :class:`Dataset` accessors that check availability.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.geo.gazetteer import Gazetteer


@dataclass(frozen=True, slots=True)
class User:
    """One Twitter user.

    ``registered_location`` is the observed home location id when the
    user is labeled (``None`` otherwise).  The ``true_*`` fields are
    generator ground truth: the home location, the full multi-location
    set (home first), and the latent profile weights over that set.
    """

    user_id: int
    registered_location: int | None = None
    true_home: int | None = None
    true_locations: tuple[int, ...] = ()
    true_profile_weights: tuple[float, ...] = ()

    @property
    def is_labeled(self) -> bool:
        """True when the user has an observed (registered) location."""
        return self.registered_location is not None

    @property
    def has_ground_truth(self) -> bool:
        """True when the generator recorded true homes for the user."""
        return self.true_home is not None

    @property
    def is_multi_location(self) -> bool:
        """True when ground truth says the user has 2+ locations."""
        return len(self.true_locations) > 1


@dataclass(frozen=True, slots=True)
class FollowingEdge:
    """A following relationship ``f<i,j>`` from follower to friend.

    ``true_x`` / ``true_y`` are the generator's latent location
    assignments for follower and friend; ``is_noise`` marks edges drawn
    from the random model FR (for which assignments are undefined).
    """

    follower: int
    friend: int
    true_x: int | None = None
    true_y: int | None = None
    is_noise: bool | None = None

    def __post_init__(self) -> None:
        if self.follower == self.friend:
            raise ValueError("self-follow edges are not allowed")


@dataclass(frozen=True, slots=True)
class TweetingEdge:
    """A tweeting relationship ``t<i,j>`` from a user to a venue id.

    ``true_z`` is the latent location assignment that generated the
    mention; ``is_noise`` marks mentions drawn from the random model TR.
    """

    user: int
    venue_id: int
    true_z: int | None = None
    is_noise: bool | None = None


@dataclass(frozen=True, slots=True)
class Tweet:
    """Raw tweet text, used by the text-extraction integration path."""

    user: int
    text: str


class Dataset:
    """A complete profiling problem instance.

    Owns the gazetteer (candidate locations ``L`` + venues ``V``), the
    users ``U`` and both relationship multisets ``f_1:S`` and ``t_1:K``.
    All derived structures (adjacency, labeled ids, observed-location
    lookup) are cached lazily; the dataset itself is treated as
    immutable -- "modification" methods return new instances.
    """

    def __init__(
        self,
        gazetteer: Gazetteer,
        users: Sequence[User],
        following: Sequence[FollowingEdge],
        tweeting: Sequence[TweetingEdge],
        tweets: Sequence[Tweet] = (),
    ):
        ids = [u.user_id for u in users]
        if sorted(ids) != list(range(len(users))):
            raise ValueError("user ids must be a dense 0..n-1 range")
        n = len(users)
        n_loc = len(gazetteer)
        for e in following:
            if not (0 <= e.follower < n and 0 <= e.friend < n):
                raise ValueError(f"edge references unknown user: {e}")
        n_venues = len(gazetteer.venue_vocabulary)
        for t in tweeting:
            if not 0 <= t.user < n:
                raise ValueError(f"tweeting edge references unknown user: {t}")
            if not 0 <= t.venue_id < n_venues:
                raise ValueError(f"tweeting edge references unknown venue: {t}")
        for u in users:
            for loc in (u.registered_location, u.true_home):
                if loc is not None and not 0 <= loc < n_loc:
                    raise ValueError(
                        f"user {u.user_id} references unknown location {loc}"
                    )
        self.gazetteer = gazetteer
        self.users: tuple[User, ...] = tuple(
            sorted(users, key=lambda u: u.user_id)
        )
        self.following: tuple[FollowingEdge, ...] = tuple(following)
        self.tweeting: tuple[TweetingEdge, ...] = tuple(tweeting)
        self.tweets: tuple[Tweet, ...] = tuple(tweets)

    # -- sizes ---------------------------------------------------------

    @property
    def n_users(self) -> int:
        """Number of users in the dataset."""
        return len(self.users)

    @property
    def n_following(self) -> int:
        """``S`` -- total number of following relationships."""
        return len(self.following)

    @property
    def n_tweeting(self) -> int:
        """``K`` -- total number of tweeting relationships."""
        return len(self.tweeting)

    # -- label structure -------------------------------------------------

    @cached_property
    def labeled_user_ids(self) -> tuple[int, ...]:
        """``U*``: ids of users with an observed home location."""
        return tuple(u.user_id for u in self.users if u.is_labeled)

    @cached_property
    def unlabeled_user_ids(self) -> tuple[int, ...]:
        """``U^N``: ids of users without an observed home location."""
        return tuple(u.user_id for u in self.users if not u.is_labeled)

    @cached_property
    def observed_locations(self) -> dict[int, int]:
        """user id -> observed home location id, labeled users only."""
        return {
            u.user_id: u.registered_location
            for u in self.users
            if u.registered_location is not None
        }

    # -- adjacency ---------------------------------------------------------

    @cached_property
    def friends_of(self) -> tuple[tuple[int, ...], ...]:
        """``friends_of[i]``: users that ``i`` follows."""
        out: list[list[int]] = [[] for _ in range(self.n_users)]
        for e in self.following:
            out[e.follower].append(e.friend)
        return tuple(tuple(f) for f in out)

    @cached_property
    def followers_of(self) -> tuple[tuple[int, ...], ...]:
        """``followers_of[j]``: users that follow ``j``."""
        out: list[list[int]] = [[] for _ in range(self.n_users)]
        for e in self.following:
            out[e.friend].append(e.follower)
        return tuple(tuple(f) for f in out)

    @cached_property
    def neighbors_of(self) -> tuple[tuple[int, ...], ...]:
        """Undirected neighbourhood: friends plus followers, deduplicated."""
        return tuple(
            tuple(sorted(set(self.friends_of[i]) | set(self.followers_of[i])))
            for i in range(self.n_users)
        )

    @cached_property
    def venues_of(self) -> tuple[tuple[int, ...], ...]:
        """``venues_of[i]``: venue ids user ``i`` tweeted (with repeats)."""
        out: list[list[int]] = [[] for _ in range(self.n_users)]
        for t in self.tweeting:
            out[t.user].append(t.venue_id)
        return tuple(tuple(v) for v in out)

    @cached_property
    def venue_mention_counts(self) -> np.ndarray:
        """Global mention count per venue id (the TR empirical model)."""
        counts = np.zeros(len(self.gazetteer.venue_vocabulary), dtype=np.float64)
        for t in self.tweeting:
            counts[t.venue_id] += 1.0
        return counts

    # -- ground truth accessors -------------------------------------------

    @property
    def has_ground_truth(self) -> bool:
        """True when every user carries generator ground truth."""
        return all(u.has_ground_truth for u in self.users)

    def true_home_of(self, user_id: int) -> int:
        """The user's generator-truth home location id."""
        home = self.users[user_id].true_home
        if home is None:
            raise ValueError(f"user {user_id} has no ground-truth home")
        return home

    def multi_location_user_ids(self) -> tuple[int, ...]:
        """Users whose ground truth has 2+ locations (Sec. 5.2 cohort)."""
        return tuple(
            u.user_id for u in self.users if u.has_ground_truth and u.is_multi_location
        )

    # -- label manipulation (returns new datasets) ---------------------------

    def with_labels_hidden(self, user_ids: Iterable[int]) -> "Dataset":
        """A copy with the given users' registered locations removed.

        This is how cross-validation folds are realized: ground truth
        stays intact, only the *observed* label disappears.
        """
        hide = set(user_ids)
        users = [
            replace(u, registered_location=None) if u.user_id in hide else u
            for u in self.users
        ]
        return Dataset(
            self.gazetteer, users, self.following, self.tweeting, self.tweets
        )

    def with_labels_from_truth(self, user_ids: Iterable[int]) -> "Dataset":
        """A copy where the given users are labeled with their true home."""
        show = set(user_ids)
        users = [
            replace(u, registered_location=u.true_home)
            if u.user_id in show and u.true_home is not None
            else u
            for u in self.users
        ]
        return Dataset(
            self.gazetteer, users, self.following, self.tweeting, self.tweets
        )

    def subset_users(self, user_ids: Iterable[int]) -> "Dataset":
        """Induced sub-dataset over a user subset (ids re-densified)."""
        chosen = sorted(set(user_ids))
        remap = {old: new for new, old in enumerate(chosen)}
        users = [
            replace(self.users[old], user_id=new)
            for old, new in ((old, remap[old]) for old in chosen)
        ]
        following = [
            replace(e, follower=remap[e.follower], friend=remap[e.friend])
            for e in self.following
            if e.follower in remap and e.friend in remap
        ]
        tweeting = [
            replace(t, user=remap[t.user])
            for t in self.tweeting
            if t.user in remap
        ]
        tweets = [
            replace(t, user=remap[t.user]) for t in self.tweets if t.user in remap
        ]
        return Dataset(self.gazetteer, users, following, tweeting, tweets)

    def __repr__(self) -> str:
        return (
            f"Dataset(users={self.n_users}, following={self.n_following}, "
            f"tweeting={self.n_tweeting}, labeled={len(self.labeled_user_ids)}, "
            f"locations={len(self.gazetteer)})"
        )
