"""Dataset statistics mirroring the paper's Sec. 5 corpus summary.

The paper reports, for its 139,180-user corpus: 14.8 friends, 14.9
followers and 29.0 tweeted venues per user, 16% of the wider crawl
labeled, and "about 92% users whose locations appear in their
relationships" (the fact that justifies candidacy vectors).  This
module computes the same summary for any dataset so the synthetic
worlds can be checked against the paper's shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.columnar import ColumnarWorld, compile_world
from repro.data.model import Dataset


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """Corpus-level summary statistics (Sec. 5 of the paper)."""

    n_users: int
    n_locations: int
    n_venues: int
    n_following: int
    n_tweeting: int
    labeled_fraction: float
    mean_friends: float
    mean_followers: float
    mean_venues: float
    noise_following_fraction: float | None
    noise_tweeting_fraction: float | None
    multi_location_fraction: float | None
    #: Fraction of users whose true home is visible somewhere in their
    #: relationships (labeled neighbours or tweeted venue referents) --
    #: the paper's "92%" candidacy-coverage number.
    candidacy_coverage: float | None

    def as_dict(self) -> dict:
        """JSON-friendly dict of all summary fields."""
        return {
            "users": self.n_users,
            "locations": self.n_locations,
            "venues": self.n_venues,
            "following_relationships": self.n_following,
            "tweeting_relationships": self.n_tweeting,
            "labeled_fraction": round(self.labeled_fraction, 4),
            "mean_friends": round(self.mean_friends, 2),
            "mean_followers": round(self.mean_followers, 2),
            "mean_venues": round(self.mean_venues, 2),
            "noise_following_fraction": _round_opt(self.noise_following_fraction),
            "noise_tweeting_fraction": _round_opt(self.noise_tweeting_fraction),
            "multi_location_fraction": _round_opt(self.multi_location_fraction),
            "candidacy_coverage": _round_opt(self.candidacy_coverage),
        }


def _round_opt(x: float | None) -> float | None:
    return None if x is None else round(x, 4)


def compute_stats(dataset: Dataset) -> DatasetStats:
    """Compute :class:`DatasetStats` for a dataset.

    Count and coverage statistics read the shared compiled
    :class:`~repro.data.columnar.ColumnarWorld` (memoized, so a dataset
    that was already fitted or served costs nothing extra to
    summarize); only the generator ground-truth fields (noise flags,
    true homes) still come from the object graph, because they are
    deliberately not part of the compiled substrate.
    """
    world = compile_world(dataset)
    n = world.n_users
    mean_friends = world.n_following / n if n else 0.0
    mean_followers = mean_friends  # every edge has one follower, one friend
    mean_venues = world.n_tweeting / n if n else 0.0
    labeled_fraction = int(world.labeled_mask.sum()) / n if n else 0.0

    noise_f = _noise_fraction([e.is_noise for e in dataset.following])
    noise_t = _noise_fraction([t.is_noise for t in dataset.tweeting])

    if dataset.has_ground_truth:
        multi = len(dataset.multi_location_user_ids()) / n if n else 0.0
        coverage = _candidacy_coverage(dataset, world)
    else:
        multi = None
        coverage = None

    return DatasetStats(
        n_users=n,
        n_locations=world.n_locations,
        n_venues=world.n_venues,
        n_following=world.n_following,
        n_tweeting=world.n_tweeting,
        labeled_fraction=labeled_fraction,
        mean_friends=mean_friends,
        mean_followers=mean_followers,
        mean_venues=mean_venues,
        noise_following_fraction=noise_f,
        noise_tweeting_fraction=noise_t,
        multi_location_fraction=multi,
        candidacy_coverage=coverage,
    )


def _noise_fraction(flags: list[bool | None]) -> float | None:
    known = [f for f in flags if f is not None]
    if not known:
        return None
    return sum(known) / len(known)


def _candidacy_coverage(dataset: Dataset, world: ColumnarWorld) -> float:
    """Fraction of users whose true home appears in their relationships.

    "Appears" means: a labeled neighbour registered that location, or a
    tweeted venue name has that location among its referent cities --
    exactly the evidence the candidacy vector (Sec. 4.3) will use.
    Neighbourhoods and referents are CSR slices of the compiled world;
    only ``true_home`` comes from the object graph.
    """
    observed = world.observed_location
    covered = 0
    for user in dataset.users:
        home = user.true_home
        if home is None:
            continue
        uid = user.user_id
        if np.any(observed[world.neighbors_of(uid)] == home):
            covered += 1
            continue
        for vid in np.unique(world.venues_of(uid)).tolist():
            referents = world.referents_of(vid)
            pos = int(np.searchsorted(referents, home))
            if pos < referents.size and referents[pos] == home:
                covered += 1
                break
    return covered / world.n_users if world.n_users else 0.0


def distance_error_summary(errors_miles: np.ndarray) -> dict:
    """Quantile summary of prediction distance errors, for reports."""
    errors = np.asarray(errors_miles, dtype=np.float64)
    if errors.size == 0:
        return {"count": 0}
    return {
        "count": int(errors.size),
        "mean": float(errors.mean()),
        "median": float(np.median(errors)),
        "p90": float(np.quantile(errors, 0.9)),
        "max": float(errors.max()),
    }
