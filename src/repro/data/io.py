"""Dataset persistence: JSON with embedded gazetteer.

One self-contained file per dataset so experiment artifacts can be
archived and reloaded bit-for-bit.  The format is versioned; loading an
unknown version fails loudly rather than guessing.

Paths ending in ``.gz`` (e.g. ``world.json.gz``) are transparently
gzip-compressed on save and decompressed on load -- big synthetic
worlds shrink by an order of magnitude with no caller changes.

The payload <-> :class:`~repro.data.model.Dataset` conversion is
exposed as :func:`dataset_to_payload` / :func:`dataset_from_payload` so
other persistence layers (the serving artifact store embeds a dataset
inside model artifacts) reuse the exact same wire format.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.data.model import Dataset, FollowingEdge, Tweet, TweetingEdge, User
from repro.geo.gazetteer import Gazetteer, Location

FORMAT_VERSION = 1


def _user_to_dict(u: User) -> dict:
    return {
        "id": u.user_id,
        "registered": u.registered_location,
        "home": u.true_home,
        "locations": list(u.true_locations),
        "weights": list(u.true_profile_weights),
    }


def _user_from_dict(d: dict) -> User:
    return User(
        user_id=d["id"],
        registered_location=d["registered"],
        true_home=d["home"],
        true_locations=tuple(d["locations"]),
        true_profile_weights=tuple(d["weights"]),
    )


def dataset_to_payload(dataset: Dataset) -> dict:
    """The versioned JSON-ready payload of a dataset."""
    return {
        "version": FORMAT_VERSION,
        "gazetteer": [
            {
                "id": loc.location_id,
                "city": loc.city,
                "state": loc.state,
                "lat": loc.lat,
                "lon": loc.lon,
                "population": loc.population,
            }
            for loc in dataset.gazetteer
        ],
        "users": [_user_to_dict(u) for u in dataset.users],
        "following": [
            {
                "follower": e.follower,
                "friend": e.friend,
                "x": e.true_x,
                "y": e.true_y,
                "noise": e.is_noise,
            }
            for e in dataset.following
        ],
        "tweeting": [
            {
                "user": t.user,
                "venue": t.venue_id,
                "z": t.true_z,
                "noise": t.is_noise,
            }
            for t in dataset.tweeting
        ],
        "tweets": [{"user": t.user, "text": t.text} for t in dataset.tweets],
    }


def dataset_from_payload(payload: dict) -> Dataset:
    """Rebuild a dataset from a payload written by :func:`dataset_to_payload`.

    Rejects unknown format versions, exactly like :func:`load_dataset`.
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    gazetteer = Gazetteer(
        [
            Location(
                location_id=g["id"],
                city=g["city"],
                state=g["state"],
                lat=g["lat"],
                lon=g["lon"],
                population=g["population"],
            )
            for g in payload["gazetteer"]
        ]
    )
    users = [_user_from_dict(d) for d in payload["users"]]
    following = [
        FollowingEdge(
            follower=e["follower"],
            friend=e["friend"],
            true_x=e["x"],
            true_y=e["y"],
            is_noise=e["noise"],
        )
        for e in payload["following"]
    ]
    tweeting = [
        TweetingEdge(
            user=t["user"],
            venue_id=t["venue"],
            true_z=t["z"],
            is_noise=t["noise"],
        )
        for t in payload["tweeting"]
    ]
    tweets = [Tweet(user=t["user"], text=t["text"]) for t in payload["tweets"]]
    return Dataset(gazetteer, users, following, tweeting, tweets)


def _is_gzip_path(path: Path) -> bool:
    return path.suffix == ".gz"


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Serialize a dataset (including its gazetteer) to JSON.

    A ``.gz`` path suffix switches on gzip compression transparently.
    """
    path = Path(path)
    text = json.dumps(dataset_to_payload(dataset))
    if _is_gzip_path(path):
        # fileobj + fixed mtime keep the gzip header free of the file
        # name and timestamp: equal datasets give byte-equal archives.
        with open(path, "wb") as raw:
            with gzip.GzipFile(
                filename="", fileobj=raw, mode="wb", mtime=0
            ) as fh:
                fh.write(text.encode("utf-8"))
    else:
        path.write_text(text)


def load_dataset(path: str | Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`.

    ``.gz`` paths are decompressed transparently.
    """
    path = Path(path)
    if _is_gzip_path(path):
        with gzip.open(path, mode="rt", encoding="utf-8") as fh:
            payload = json.load(fh)
    else:
        payload = json.loads(path.read_text())
    return dataset_from_payload(payload)
