"""Synthetic Twitter-world generator.

The paper's evaluation corpus is a 2011 crawl (139,180 users with 14.8
friends, 14.9 followers and 29.0 tweeted venues each, ~16% of the wider
crawl labeled) that cannot be redistributed.  This generator builds a
world from the same generative family the paper's model assumes, so
every mechanism MLP exploits -- power-law distance decay of following,
location-concentrated venue mentions, noisy celebrity follows, noisy
popular-venue mentions, users with multiple long-term locations -- is
present with known ground truth:

1. every user gets 1-3 true locations (population-biased) and a latent
   profile ``theta`` over them; the home is the argmax location;
2. following edges are a mixture: with probability ``noise_following``
   the friend is a global celebrity draw (the Lady Gaga edge); otherwise
   the edge draws assignments ``x ~ theta_i`` and
   ``y ~ P(y) ∝ mass(y) * d(x, y)**alpha`` and a friend who truly lives
   at ``y``;
3. venue mentions are a mixture: with probability ``noise_tweeting`` a
   popularity draw (the Honolulu tweet); otherwise ``z ~ theta_i`` and a
   venue from a per-location multinomial ``psi_z`` that concentrates on
   nearby venue names but keeps mass on far-but-popular ones
   (Fig. 3(b)'s shape);
4. a configurable fraction of users expose their true home as a
   registered location (the labeled set U*).

Everything is driven by one seeded ``numpy`` generator, so worlds are
exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.columnar import ColumnarWorld, location_venue_map, register_world
from repro.data.model import Dataset, FollowingEdge, Tweet, TweetingEdge, User
from repro.geo.gazetteer import Gazetteer
from repro.geo.us_cities import builtin_gazetteer
from repro.mathx.distributions import sample_categorical


@dataclass(frozen=True, slots=True)
class SyntheticWorldConfig:
    """Knobs of the synthetic world.

    Defaults are scaled for laptop experiments (thousands of users);
    the statistical *shape* follows the paper's corpus (Sec. 5): mean
    friend count near 10-15, tens of venue mentions per user, a
    following-distance exponent near -0.55, and a majority-but-not-all
    single-location population.
    """

    n_users: int = 2000
    seed: int = 7
    #: Fraction of users whose true home is exposed as a registered label.
    labeled_fraction: float = 0.8
    #: P(number of true locations = 1, 2, 3).
    n_location_probs: tuple[float, float, float] = (0.50, 0.38, 0.12)
    #: Home cities are sampled with probability ∝ population ** this.
    population_temper: float = 0.6
    #: Dirichlet weight of the home vs each secondary location in theta.
    home_concentration: float = 3.0
    secondary_concentration: float = 1.6
    #: Mean out-degree (Poisson); the paper's corpus has 14.8.
    mean_friends: float = 10.0
    #: Mean venue mentions per user (Poisson); the paper's corpus has 29.
    mean_venues: float = 14.0
    #: Mixture weights of the random (noise) models.
    noise_following: float = 0.12
    noise_tweeting: float = 0.20
    #: Distance exponent of the *location-choice* step.  The induced
    #: pairwise P(edge | d) curve is shallower than this (city-mass
    #: weighting and the noise floor flatten it); -1.0 at the choice
    #: level lands the induced exponent in the -0.4..-0.6 band the
    #: paper reports for Twitter.
    alpha: float = -1.0
    #: Distance clamp in miles (paper buckets at 1 mile).
    min_distance_miles: float = 1.0
    #: Venue-kernel exponent: P(venue at d) ∝ (d + venue_d0) ** kappa.
    venue_kappa: float = -1.4
    venue_d0: float = 15.0
    #: Weight of the global-popularity term inside each psi_l.
    venue_popularity_mix: float = 0.06
    #: Zipf skew of the celebrity (noise-follow) target distribution.
    celebrity_zipf: float = 1.0
    #: Emit raw tweet texts alongside venue-id relationships.
    render_tweets: bool = False

    def __post_init__(self) -> None:
        if self.n_users < 2:
            raise ValueError("need at least two users")
        if not 0.0 <= self.labeled_fraction <= 1.0:
            raise ValueError("labeled_fraction must be in [0, 1]")
        if abs(sum(self.n_location_probs) - 1.0) > 1e-9:
            raise ValueError("n_location_probs must sum to 1")
        if not 0.0 <= self.noise_following < 1.0:
            raise ValueError("noise_following must be in [0, 1)")
        if not 0.0 <= self.noise_tweeting < 1.0:
            raise ValueError("noise_tweeting must be in [0, 1)")
        if self.alpha >= 0:
            raise ValueError("alpha must be negative (distance decay)")


_TWEET_TEMPLATES = (
    "good morning {venue}!",
    "can't wait to be back in {venue} this weekend",
    "traffic in {venue} is unreal today",
    "anyone else at the {venue} show tonight?",
    "missing {venue} so much right now",
    "just landed in {venue}",
    "beautiful day out here in {venue}",
    "thinking about moving to {venue} someday",
    "the food in {venue} never disappoints",
    "watching the game from {venue} with friends",
)


class _WorldBuilder:
    """Internal stateful builder; one instance per generate_world call."""

    def __init__(self, config: SyntheticWorldConfig, gazetteer: Gazetteer):
        self.config = config
        self.gazetteer = gazetteer
        self.rng = np.random.default_rng(config.seed)
        self.n_loc = len(gazetteer)
        self.distance = gazetteer.distance_matrix
        pops = gazetteer.populations
        self.home_weights = pops**config.population_temper
        self.venues = gazetteer.venue_vocabulary
        self.n_venues = len(self.venues)
        # Global popularity of each venue name = summed population of its
        # referent cities; this drives both TR noise and the popularity
        # term inside psi_l.
        self.venue_popularity = np.zeros(self.n_venues)
        for loc in gazetteer:
            vid = gazetteer.venue_index[loc.venue_name]
            self.venue_popularity[vid] += loc.population
        self.venue_popularity /= self.venue_popularity.sum()
        self._psi_cache: dict[int, np.ndarray] = {}
        self._friend_loc_cache: dict[int, np.ndarray] = {}

    # -- users ------------------------------------------------------------

    def sample_users(self) -> list[User]:
        """Draw the user population with homes and observed labels."""
        cfg = self.config
        users: list[User] = []
        n_loc_choices = self.rng.choice(
            [1, 2, 3], size=cfg.n_users, p=list(cfg.n_location_probs)
        )
        labeled_mask = self.rng.random(cfg.n_users) < cfg.labeled_fraction
        for uid in range(cfg.n_users):
            k = int(n_loc_choices[uid])
            locs = self._sample_distinct_locations(k)
            conc = np.array(
                [cfg.home_concentration]
                + [cfg.secondary_concentration] * (k - 1)
            )
            weights = self.rng.dirichlet(conc)
            order = np.argsort(-weights)
            locs = [locs[i] for i in order]
            weights = weights[order]
            home = locs[0]
            users.append(
                User(
                    user_id=uid,
                    registered_location=home if labeled_mask[uid] else None,
                    true_home=home,
                    true_locations=tuple(locs),
                    true_profile_weights=tuple(float(w) for w in weights),
                )
            )
        return users

    def _sample_distinct_locations(self, k: int) -> list[int]:
        chosen: list[int] = []
        weights = self.home_weights.copy()
        for _ in range(k):
            loc = sample_categorical(self.rng, weights)
            chosen.append(loc)
            weights[loc] = 0.0
        return chosen

    # -- profile-driven structures -------------------------------------------

    def build_location_mass(self, users: list[User]) -> np.ndarray:
        """``mass[l]`` = summed theta weight of users truly at ``l``."""
        mass = np.zeros(self.n_loc)
        for u in users:
            for loc, w in zip(u.true_locations, u.true_profile_weights):
                mass[loc] += w
        return mass

    def build_residents(
        self, users: list[User]
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per location: array of resident user ids and theta weights."""
        residents: list[list[int]] = [[] for _ in range(self.n_loc)]
        weights: list[list[float]] = [[] for _ in range(self.n_loc)]
        for u in users:
            for loc, w in zip(u.true_locations, u.true_profile_weights):
                residents[loc].append(u.user_id)
                weights[loc].append(w)
        return (
            [np.array(r, dtype=np.int64) for r in residents],
            [np.array(w, dtype=np.float64) for w in weights],
        )

    # -- following edges ----------------------------------------------------

    def friend_location_weights(
        self, x: int, mass: np.ndarray
    ) -> np.ndarray:
        """``P(y | x) ∝ mass(y) * d(x, y)**alpha`` (cached per x)."""
        cached = self._friend_loc_cache.get(x)
        if cached is None:
            cfg = self.config
            d = np.maximum(self.distance[x], cfg.min_distance_miles)
            cached = mass * d**cfg.alpha
            self._friend_loc_cache[x] = cached
        return cached

    def sample_following(
        self, users: list[User]
    ) -> list[FollowingEdge]:
        """Draw following edges (distance law + celebrity mix)."""
        cfg = self.config
        mass = self.build_location_mass(users)
        residents, res_weights = self.build_residents(users)
        # Celebrity weights: a random permutation of Zipf ranks, so the
        # most-followed "celebrities" are arbitrary users, not id 0.
        ranks = self.rng.permutation(cfg.n_users) + 1
        celebrity_weights = 1.0 / ranks.astype(np.float64) ** cfg.celebrity_zipf
        edges: list[FollowingEdge] = []
        seen: set[tuple[int, int]] = set()
        out_degrees = np.maximum(
            1, self.rng.poisson(cfg.mean_friends, size=cfg.n_users)
        )
        theta_lookup = [
            np.array(u.true_profile_weights, dtype=np.float64) for u in users
        ]
        for uid in range(cfg.n_users):
            user = users[uid]
            for _ in range(int(out_degrees[uid])):
                edge = self._sample_one_edge(
                    user,
                    theta_lookup[uid],
                    mass,
                    residents,
                    res_weights,
                    celebrity_weights,
                    seen,
                )
                if edge is not None:
                    edges.append(edge)
                    seen.add((edge.follower, edge.friend))
        return edges

    def _sample_one_edge(
        self,
        user: User,
        theta: np.ndarray,
        mass: np.ndarray,
        residents: list[np.ndarray],
        res_weights: list[np.ndarray],
        celebrity_weights: np.ndarray,
        seen: set[tuple[int, int]],
    ) -> FollowingEdge | None:
        cfg = self.config
        for _attempt in range(8):
            if self.rng.random() < cfg.noise_following:
                friend = sample_categorical(self.rng, celebrity_weights)
                if friend == user.user_id or (user.user_id, friend) in seen:
                    continue
                return FollowingEdge(
                    follower=user.user_id,
                    friend=friend,
                    true_x=None,
                    true_y=None,
                    is_noise=True,
                )
            x = user.true_locations[sample_categorical(self.rng, theta)]
            y = sample_categorical(
                self.rng, self.friend_location_weights(x, mass)
            )
            if residents[y].size == 0:
                continue
            pick = sample_categorical(self.rng, res_weights[y])
            friend = int(residents[y][pick])
            if friend == user.user_id or (user.user_id, friend) in seen:
                continue
            return FollowingEdge(
                follower=user.user_id,
                friend=friend,
                true_x=x,
                true_y=y,
                is_noise=False,
            )
        return None

    # -- tweeting edges ----------------------------------------------------

    def psi(self, location_id: int) -> np.ndarray:
        """The per-location venue multinomial ``psi_l``.

        Local term: each referent city of a venue contributes
        ``pop * (d + d0)**kappa`` mass, so nearby names dominate but the
        decay is gentle.  A small global-popularity mixture keeps
        far-but-famous venues plausible (Fig. 3(b): "hollywood" from
        Austin).
        """
        cached = self._psi_cache.get(location_id)
        if cached is not None:
            return cached
        cfg = self.config
        local = np.zeros(self.n_venues)
        d_row = self.distance[location_id]
        for loc in self.gazetteer:
            vid = self.gazetteer.venue_index[loc.venue_name]
            kernel = (d_row[loc.location_id] + cfg.venue_d0) ** cfg.venue_kappa
            local[vid] += loc.population * kernel
        local /= local.sum()
        psi = (
            (1.0 - cfg.venue_popularity_mix) * local
            + cfg.venue_popularity_mix * self.venue_popularity
        )
        psi /= psi.sum()
        self._psi_cache[location_id] = psi
        return psi

    def sample_tweeting(self, users: list[User]) -> list[TweetingEdge]:
        """Draw venue mentions from each user's location mix."""
        cfg = self.config
        edges: list[TweetingEdge] = []
        counts = np.maximum(1, self.rng.poisson(cfg.mean_venues, size=cfg.n_users))
        for uid in range(cfg.n_users):
            user = users[uid]
            theta = np.array(user.true_profile_weights)
            for _ in range(int(counts[uid])):
                if self.rng.random() < cfg.noise_tweeting:
                    venue = sample_categorical(self.rng, self.venue_popularity)
                    edges.append(
                        TweetingEdge(
                            user=uid, venue_id=venue, true_z=None, is_noise=True
                        )
                    )
                else:
                    z = user.true_locations[sample_categorical(self.rng, theta)]
                    venue = sample_categorical(self.rng, self.psi(z))
                    edges.append(
                        TweetingEdge(
                            user=uid, venue_id=venue, true_z=z, is_noise=False
                        )
                    )
        return edges

    def render_tweets(self, tweeting: list[TweetingEdge]) -> list[Tweet]:
        """Render tweet text containing each mentioned venue's name."""
        texts: list[Tweet] = []
        for t in tweeting:
            template = _TWEET_TEMPLATES[
                int(self.rng.integers(len(_TWEET_TEMPLATES)))
            ]
            texts.append(
                Tweet(user=t.user, text=template.format(venue=self.venues[t.venue_id]))
            )
        return texts


def generate_world(
    config: SyntheticWorldConfig | None = None,
    gazetteer: Gazetteer | None = None,
    shards: int | None = None,
) -> Dataset:
    """Generate a synthetic profiling problem with full ground truth.

    With ``shards=None`` (the default) this is the reference object-graph
    generator, bit-reproducible against all earlier versions.  With
    ``shards=N`` the world is produced by the sharded columnar builder
    (:func:`generate_columnar_world`'s engine): users and relationships
    are sampled shard by shard as flat arrays, the compiled
    :class:`~repro.data.columnar.ColumnarWorld` is registered on the
    returned dataset (so the first fit re-indexes nothing), and the
    object graph is materialized exactly once at the end.  Sharded
    worlds come from the same generative family but a different RNG
    stream: reproducible given ``(seed, shards)``, not comparable
    draw-for-draw with the unsharded stream.

    >>> ds = generate_world(SyntheticWorldConfig(n_users=50, seed=1))
    >>> ds.n_users
    50
    >>> ds.has_ground_truth
    True
    """
    config = config or SyntheticWorldConfig()
    gazetteer = gazetteer or builtin_gazetteer()
    if shards is not None:
        return _sharded_dataset(config, gazetteer, shards)
    builder = _WorldBuilder(config, gazetteer)
    users = builder.sample_users()
    following = builder.sample_following(users)
    tweeting = builder.sample_tweeting(users)
    tweets = builder.render_tweets(tweeting) if config.render_tweets else []
    return Dataset(gazetteer, users, following, tweeting, tweets)


# -- the sharded columnar path ---------------------------------------------


def _shard_rng(seed: int, phase: int, shard: int) -> np.random.Generator:
    """Independent, reproducible stream per (phase, shard)."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(phase, shard))
    )


def _draw_from_cdf(
    rng: np.random.Generator, cdf: np.ndarray, size: int
) -> np.ndarray:
    """Vectorized inverse-CDF categorical draws (unnormalized cdf)."""
    u = rng.random(size) * cdf[-1]
    return np.searchsorted(cdf, u, side="right").clip(0, cdf.size - 1)


def _cat(parts: list[np.ndarray], dtype) -> np.ndarray:
    return np.concatenate(parts) if parts else np.empty(0, dtype=dtype)


def _cat64(parts: list[np.ndarray]) -> np.ndarray:
    """Concatenate compact per-shard buffers, upcasting to ``int64``.

    The shard loops accumulate ``int32`` buffers (one per shard, not one
    per user) to keep intermediate memory at half width; the public
    arrays stay ``int64`` -- the dtype every downstream consumer
    (``from_edge_arrays``, persisted world arrays, hashing) expects.
    """
    if not parts:
        return np.empty(0, dtype=np.int64)
    out = np.empty(sum(p.size for p in parts), dtype=np.int64)
    pos = 0
    for p in parts:
        out[pos:pos + p.size] = p
        pos += p.size
    return out


class _ShardedArrays:
    """Array-native generator state: one instance per sharded build.

    Samples the same generative family as :class:`_WorldBuilder` but
    emits flat ``numpy`` arrays shard by shard -- no ``User`` /
    ``FollowingEdge`` / ``TweetingEdge`` objects, no per-draw Python
    categorical sampling over ``n_users``-sized weight vectors.  Two
    documented simplifications versus the object path keep it
    vectorizable: self-follows and duplicate edges are *dropped*
    instead of re-drawn (the object path retries up to 8 times), and
    the RNG streams are per ``(phase, shard)`` so a world is
    reproducible given ``(seed, shards)``.
    """

    def __init__(
        self, config: SyntheticWorldConfig, gazetteer: Gazetteer, shards: int
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.config = config
        self.gazetteer = gazetteer
        self.shards = shards
        self.n_loc = len(gazetteer)
        self.distance = gazetteer.distance_matrix
        pops = gazetteer.populations
        home_weights = pops**config.population_temper
        self.home_probs = home_weights / home_weights.sum()
        self.venues = gazetteer.venue_vocabulary
        self.n_venues = len(self.venues)
        # location id -> venue id of its own name, and per-venue summed
        # population (the TR popularity model, as in _WorldBuilder).
        self.loc_venue = location_venue_map(gazetteer)
        venue_popularity = np.bincount(
            self.loc_venue, weights=pops, minlength=self.n_venues
        )
        self.venue_popularity = venue_popularity / venue_popularity.sum()
        self.venue_pop_cdf = np.cumsum(self.venue_popularity)
        self._psi_cdf_cache: dict[int, np.ndarray] = {}
        self._friend_cdf_cache: dict[int, np.ndarray] = {}
        bounds = [
            (s * config.n_users) // shards for s in range(shards + 1)
        ]
        self.shard_bounds = list(zip(bounds[:-1], bounds[1:]))

        # -- user table (filled by sample_users) -----------------------
        n = config.n_users
        self.true_home = np.empty(n, dtype=np.int64)
        self.registered = np.full(n, -1, dtype=np.int64)
        self.loc_indptr = np.zeros(n + 1, dtype=np.int64)
        self.loc_flat: list[np.ndarray] = []
        self.weight_flat: list[np.ndarray] = []

    # -- phase 1: users ----------------------------------------------------

    def sample_users(self) -> None:
        """Phase 1: draw users shard by shard into columnar arrays."""
        cfg = self.config
        probs = np.array(cfg.n_location_probs)
        count_parts: list[np.ndarray] = []
        for shard, (lo, hi) in enumerate(self.shard_bounds):
            rng = _shard_rng(cfg.seed, 1, shard)
            m = hi - lo
            if m == 0:
                continue
            k_locs = rng.choice(np.array([1, 2, 3]), size=m, p=probs)
            labeled = rng.random(m) < cfg.labeled_fraction
            # One shard-sized buffer instead of one tiny array per user:
            # the location count of every user is already drawn, so the
            # shard's slot total is known up front.
            cap = int(k_locs.sum())
            loc_buf = np.empty(cap, dtype=np.int32)
            weight_buf = np.empty(cap, dtype=np.float64)
            write = 0
            for local in range(m):
                uid = lo + local
                k = int(k_locs[local])
                locs = rng.choice(
                    self.n_loc, size=k, replace=False, p=self.home_probs
                )
                conc = np.array(
                    [cfg.home_concentration]
                    + [cfg.secondary_concentration] * (k - 1)
                )
                weights = rng.dirichlet(conc)
                order = np.argsort(-weights)
                locs = locs[order]
                weights = weights[order]
                home = int(locs[0])
                self.true_home[uid] = home
                if labeled[local]:
                    self.registered[uid] = home
                loc_buf[write:write + k] = locs
                weight_buf[write:write + k] = weights
                write += k
            self.loc_flat.append(loc_buf)
            self.weight_flat.append(weight_buf)
            count_parts.append(k_locs.astype(np.int64))
        np.cumsum(_cat64(count_parts), out=self.loc_indptr[1:])
        self.loc_flat_arr = _cat64(self.loc_flat)
        self.weight_flat_arr = (
            np.concatenate(self.weight_flat)
            if self.weight_flat
            else np.empty(0, dtype=np.float64)
        )
        # Per-user theta CDFs live implicitly in weight_flat_arr (the
        # slices are short); residents/mass are global aggregates.
        self.mass = np.bincount(
            self.loc_flat_arr, weights=self.weight_flat_arr, minlength=self.n_loc
        )
        owner = np.repeat(
            np.arange(self.config.n_users, dtype=np.int64),
            np.diff(self.loc_indptr),
        )
        order = np.argsort(self.loc_flat_arr, kind="stable")
        res_counts = np.bincount(self.loc_flat_arr, minlength=self.n_loc)
        self.res_indptr = np.zeros(self.n_loc + 1, dtype=np.int64)
        np.cumsum(res_counts, out=self.res_indptr[1:])
        self.res_users = owner[order]
        res_weights = self.weight_flat_arr[order]
        # Per-location cumulative resident weights (reset at indptr) for
        # O(log) friend picks.
        self.res_cdf = np.copy(res_weights)
        np.cumsum(self.res_cdf, out=self.res_cdf)
        base = np.zeros(self.n_loc, dtype=np.float64)
        nonempty = self.res_indptr[:-1] < self.res_indptr[1:]
        base[nonempty] = self.res_cdf[self.res_indptr[:-1][nonempty]] - res_weights[
            self.res_indptr[:-1][nonempty]
        ]
        self.res_base = base

    def _theta_cdf(self, uid: int) -> np.ndarray:
        return np.cumsum(
            self.weight_flat_arr[self.loc_indptr[uid]:self.loc_indptr[uid + 1]]
        )

    def _user_locs(self, uid: int) -> np.ndarray:
        return self.loc_flat_arr[self.loc_indptr[uid]:self.loc_indptr[uid + 1]]

    def _friend_cdf(self, x: int) -> np.ndarray:
        cached = self._friend_cdf_cache.get(x)
        if cached is None:
            cfg = self.config
            d = np.maximum(self.distance[x], cfg.min_distance_miles)
            cached = np.cumsum(self.mass * d**cfg.alpha)
            self._friend_cdf_cache[x] = cached
        return cached

    # -- phase 2: following edges ------------------------------------------

    def sample_following(self):
        """Phase 2: draw following edges shard by shard."""
        cfg = self.config
        rng_celeb = _shard_rng(cfg.seed, 4, 0)
        ranks = rng_celeb.permutation(cfg.n_users) + 1
        celeb_cdf = np.cumsum(
            1.0 / ranks.astype(np.float64) ** cfg.celebrity_zipf
        )
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        x_parts: list[np.ndarray] = []
        y_parts: list[np.ndarray] = []
        noise_parts: list[np.ndarray] = []
        for shard, (lo, hi) in enumerate(self.shard_bounds):
            rng = _shard_rng(cfg.seed, 2, shard)
            m = hi - lo
            if m == 0:
                continue
            degrees = np.maximum(1, rng.poisson(cfg.mean_friends, size=m))
            # Shard-sized int32 buffers (the out-degree total bounds the
            # edge count before dedup) instead of five tiny int64 arrays
            # per user -- the intermediate that used to dominate peak
            # RSS at 500k+ users.
            cap = int(degrees.sum())
            src_buf = np.empty(cap, dtype=np.int32)
            dst_buf = np.empty(cap, dtype=np.int32)
            x_buf = np.empty(cap, dtype=np.int32)
            y_buf = np.empty(cap, dtype=np.int32)
            noise_buf = np.empty(cap, dtype=np.bool_)
            write = 0
            for local in range(m):
                uid = lo + local
                k = int(degrees[local])
                is_noise = rng.random(k) < cfg.noise_following
                friends = np.empty(k, dtype=np.int64)
                xs = np.full(k, -1, dtype=np.int64)
                ys = np.full(k, -1, dtype=np.int64)
                n_noise = int(is_noise.sum())
                if n_noise:
                    friends[is_noise] = _draw_from_cdf(rng, celeb_cdf, n_noise)
                rest = np.flatnonzero(~is_noise)
                if rest.size:
                    theta_cdf = self._theta_cdf(uid)
                    locs = self._user_locs(uid)
                    xs[rest] = locs[
                        _draw_from_cdf(rng, theta_cdf, rest.size)
                    ]
                    for e in rest.tolist():
                        x = int(xs[e])
                        y = int(
                            _draw_from_cdf(rng, self._friend_cdf(x), 1)[0]
                        )
                        s, t = self.res_indptr[y], self.res_indptr[y + 1]
                        if s == t:
                            # no resident at y: drop (object path retries)
                            friends[e] = uid
                            continue
                        # res_cdf carries the running global cumsum, so
                        # draw in (base, base + local_total] directly.
                        u = self.res_base[y] + rng.random() * (
                            self.res_cdf[t - 1] - self.res_base[y]
                        )
                        pick = int(
                            np.searchsorted(self.res_cdf[s:t], u, side="right")
                        )
                        pick = min(pick, t - s - 1)
                        ys[e] = y
                        friends[e] = self.res_users[s + pick]
                # Drop self-follows and duplicate pairs (keep first).
                keep = friends != uid
                fr = friends[keep]
                _, first = np.unique(fr, return_index=True)
                sel = np.flatnonzero(keep)[np.sort(first)]
                end = write + sel.size
                src_buf[write:end] = uid
                dst_buf[write:end] = friends[sel]
                x_buf[write:end] = xs[sel]
                y_buf[write:end] = ys[sel]
                noise_buf[write:end] = is_noise[sel]
                write = end
            src_parts.append(src_buf[:write].copy())
            dst_parts.append(dst_buf[:write].copy())
            x_parts.append(x_buf[:write].copy())
            y_parts.append(y_buf[:write].copy())
            noise_parts.append(noise_buf[:write].copy())
        return (
            _cat64(src_parts),
            _cat64(dst_parts),
            _cat64(x_parts),
            _cat64(y_parts),
            _cat(noise_parts, np.bool_),
        )

    # -- phase 3: venue mentions -------------------------------------------

    def _psi_cdf(self, location_id: int) -> np.ndarray:
        cached = self._psi_cdf_cache.get(location_id)
        if cached is None:
            cfg = self.config
            d_row = self.distance[location_id]
            kernel = (d_row + cfg.venue_d0) ** cfg.venue_kappa
            local = np.bincount(
                self.loc_venue,
                weights=self.gazetteer.populations * kernel,
                minlength=self.n_venues,
            )
            local /= local.sum()
            psi = (
                (1.0 - cfg.venue_popularity_mix) * local
                + cfg.venue_popularity_mix * self.venue_popularity
            )
            cached = np.cumsum(psi / psi.sum())
            self._psi_cdf_cache[location_id] = cached
        return cached

    def sample_tweeting(self):
        """Phase 3: draw venue mentions shard by shard."""
        cfg = self.config
        user_parts: list[np.ndarray] = []
        venue_parts: list[np.ndarray] = []
        z_parts: list[np.ndarray] = []
        noise_parts: list[np.ndarray] = []
        for shard, (lo, hi) in enumerate(self.shard_bounds):
            rng = _shard_rng(cfg.seed, 3, shard)
            m = hi - lo
            if m == 0:
                continue
            counts = np.maximum(1, rng.poisson(cfg.mean_venues, size=m))
            # Shard-sized int32 buffers; the mention total is exact (no
            # dedup in this phase), so the buffers fill completely.
            cap = int(counts.sum())
            user_buf = np.empty(cap, dtype=np.int32)
            venue_buf = np.empty(cap, dtype=np.int32)
            z_buf = np.empty(cap, dtype=np.int32)
            noise_buf = np.empty(cap, dtype=np.bool_)
            write = 0
            for local in range(m):
                uid = lo + local
                k = int(counts[local])
                is_noise = rng.random(k) < cfg.noise_tweeting
                venues = np.empty(k, dtype=np.int64)
                zs = np.full(k, -1, dtype=np.int64)
                n_noise = int(is_noise.sum())
                if n_noise:
                    venues[is_noise] = _draw_from_cdf(
                        rng, self.venue_pop_cdf, n_noise
                    )
                rest = np.flatnonzero(~is_noise)
                if rest.size:
                    theta_cdf = self._theta_cdf(uid)
                    locs = self._user_locs(uid)
                    zs[rest] = locs[_draw_from_cdf(rng, theta_cdf, rest.size)]
                    for e in rest.tolist():
                        venues[e] = _draw_from_cdf(
                            rng, self._psi_cdf(int(zs[e])), 1
                        )[0]
                end = write + k
                user_buf[write:end] = uid
                venue_buf[write:end] = venues
                z_buf[write:end] = zs
                noise_buf[write:end] = is_noise
                write = end
            user_parts.append(user_buf)
            venue_parts.append(venue_buf)
            z_parts.append(z_buf)
            noise_parts.append(noise_buf)
        return (
            _cat64(user_parts),
            _cat64(venue_parts),
            _cat64(z_parts),
            _cat(noise_parts, np.bool_),
        )


def _sharded_arrays(
    config: SyntheticWorldConfig, gazetteer: Gazetteer, shards: int
) -> tuple[_ShardedArrays, tuple, tuple]:
    builder = _ShardedArrays(config, gazetteer, shards)
    builder.sample_users()
    following = builder.sample_following()
    tweeting = builder.sample_tweeting()
    return builder, following, tweeting


def generate_columnar_world(
    config: SyntheticWorldConfig | None = None,
    gazetteer: Gazetteer | None = None,
    shards: int = 4,
) -> ColumnarWorld:
    """Generate a large synthetic world directly in compiled form.

    The zero-object scale path: users and relationships are sampled
    shard by shard as flat arrays and compiled straight into a
    :class:`~repro.data.columnar.ColumnarWorld` -- the full object
    graph is **never** materialized (generator ground truth is not
    retained; use :func:`generate_world` with ``shards=`` when
    evaluation against true homes is needed).  Deterministic given
    ``(config.seed, shards)``.
    """
    config = config or SyntheticWorldConfig()
    gazetteer = gazetteer or builtin_gazetteer()
    builder, following, tweeting = _sharded_arrays(config, gazetteer, shards)
    edge_src, edge_dst = following[0], following[1]
    tweet_user, tweet_venue = tweeting[0], tweeting[1]
    return ColumnarWorld.from_edge_arrays(
        gazetteer,
        observed_location=builder.registered,
        edge_src=edge_src,
        edge_dst=edge_dst,
        tweet_user=tweet_user,
        tweet_venue=tweet_venue,
    )


def _sharded_dataset(
    config: SyntheticWorldConfig, gazetteer: Gazetteer, shards: int
) -> Dataset:
    """Sharded generation, materialized once into the object graph.

    Ground truth is preserved (true homes, location sets, per-edge
    assignments and noise flags); the compiled world is built from the
    same arrays and registered on the dataset so the first fit or
    serving predictor re-indexes nothing.
    """
    builder, following, tweeting = _sharded_arrays(config, gazetteer, shards)
    edge_src, edge_dst, edge_x, edge_y, edge_noise = following
    tw_user, tw_venue, tw_z, tw_noise = tweeting

    users = []
    for uid in range(config.n_users):
        registered = int(builder.registered[uid])
        locs = builder._user_locs(uid)
        weights = builder.weight_flat_arr[
            builder.loc_indptr[uid]:builder.loc_indptr[uid + 1]
        ]
        users.append(
            User(
                user_id=uid,
                registered_location=registered if registered >= 0 else None,
                true_home=int(builder.true_home[uid]),
                true_locations=tuple(int(l) for l in locs),
                true_profile_weights=tuple(float(w) for w in weights),
            )
        )
    following_edges = [
        FollowingEdge(
            follower=s,
            friend=d,
            true_x=None if noise else x,
            true_y=None if noise else y,
            is_noise=noise,
        )
        for s, d, x, y, noise in zip(
            edge_src.tolist(),
            edge_dst.tolist(),
            edge_x.tolist(),
            edge_y.tolist(),
            edge_noise.tolist(),
        )
    ]
    tweeting_edges = [
        TweetingEdge(
            user=u,
            venue_id=v,
            true_z=None if noise else z,
            is_noise=noise,
        )
        for u, v, z, noise in zip(
            tw_user.tolist(),
            tw_venue.tolist(),
            tw_z.tolist(),
            tw_noise.tolist(),
        )
    ]
    tweets: list[Tweet] = []
    if config.render_tweets:
        rng = _shard_rng(config.seed, 5, 0)
        venues = gazetteer.venue_vocabulary
        for u, v in zip(tw_user.tolist(), tw_venue.tolist()):
            template = _TWEET_TEMPLATES[
                int(rng.integers(len(_TWEET_TEMPLATES)))
            ]
            tweets.append(Tweet(user=u, text=template.format(venue=venues[v])))
    dataset = Dataset(gazetteer, users, following_edges, tweeting_edges, tweets)
    world = ColumnarWorld.from_edge_arrays(
        gazetteer,
        observed_location=builder.registered,
        edge_src=edge_src,
        edge_dst=edge_dst,
        tweet_user=tw_user,
        tweet_venue=tw_venue,
    )
    register_world(dataset, world)
    return dataset
