"""Streaming world ingest: apply :class:`WorldDelta` batches to a world.

A compiled :class:`~repro.data.columnar.ColumnarWorld` is immutable --
which is exactly right for sampling and serving, and exactly wrong for
the roadmap's live-traffic setting, where a single new user, follow
edge or venue mention would otherwise force a full O(world) recompile
before serving could see it.  This module makes worlds **mutable by
delta**: a :class:`WorldDelta` batches arrivals (new users, new
following/tweeting relationships, label updates) and
:func:`apply_delta` splices them into an existing world in
O(|delta| + touched rows) of real work:

- **arena appends**: the flat relationship arenas grow in place through
  :class:`_GrowableArena` buffers with amortized over-allocation, so a
  stream of small deltas does not copy the arena once per batch (older
  worlds keep valid prefix views -- appends never disturb them, and a
  *second* delta applied to the same parent safely falls back to a
  copy);
- **CSR row splicing**: the ``out``/``in``/``uv`` adjacency rows of
  touched users get their new values appended (stable order preserved,
  so slices match a from-scratch :func:`~repro.data.columnar.build_csr`
  bit for bit), and the ``nbr``/``cand`` rows of touched users are
  recomputed from their post-delta evidence and spliced back;
- **incremental aggregates**: venue mention counts are bumped by a
  bincount of the delta (integer-valued float adds -- exact), the
  user table is extended/patched in place;
- **hash chaining**: the new world's identity is
  ``H(parent_hash, delta_digest)`` -- O(|delta|) instead of an
  O(world) rehash.  Chained hashes identify a *history*; compare
  :meth:`~repro.data.columnar.ColumnarWorld.rehash` for array-level
  equality;
- **generation counters**: every apply bumps
  :attr:`~repro.data.columnar.ColumnarWorld.generation` and appends a
  :class:`DeltaRecord` (touched user ids included) to the world's
  ``delta_log``, which is how serving re-scores only delta-affected
  users (``score_population(since_generation=...)``) instead of the
  whole population.

**The golden contract.**  Applying any sequence of deltas must yield a
world whose arrays are *bit-identical* to compiling the final dataset
from scratch (``ColumnarWorld.from_edge_arrays`` over the concatenated
inputs).  Everything downstream -- fold-in phi/theta, iteration counts,
convergence flags -- then matches exactly, across interleavings and
chunk boundaries; ``tests/test_data_delta.py`` pins this.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.data.columnar import ColumnarWorld, expand_csr

__all__ = [
    "WorldDelta",
    "DeltaRecord",
    "StaleWindowError",
    "apply_delta",
    "chain_hash",
    "validate_delta",
]


class StaleWindowError(ValueError):
    """``since_generation`` reaches past the retained touched-user window.

    Raised by :func:`touched_since` (in-memory ``delta_log``, bounded by
    :data:`DELTA_LOG_LIMIT`) and by
    :meth:`repro.data.journal.DeltaJournal.touched_since` (durable, bounded
    by the last compaction) when the requested window is no longer fully
    covered.  The only correct recovery is a **full re-score** of the
    unlabeled population; callers that fall back must do so *loudly*
    (``repro ingest`` warns on stderr, the query layer counts the event in
    ``repro_query_index_refreshes_total{kind="full_fallback"}``) -- see
    docs/API.md ("Incremental re-scoring window").  Subclasses
    ``ValueError`` so pre-existing broad handlers keep working.
    """


def _as_int_array(values, count: int | None = None) -> np.ndarray:
    arr = np.fromiter(
        (int(v) for v in values),
        dtype=np.int64,
        **({} if count is None else {"count": count}),
    )
    return arr


def _offsets(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums as an indptr-style array (len + 1)."""
    out = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


class WorldDelta:
    """One batch of world changes, canonicalized to flat arrays.

    Parameters
    ----------
    new_users:
        One entry per arriving user, each an observed home location id
        or ``None`` (unlabeled).  Arrivals are appended to the user
        table in order: the first new user of a delta applied to an
        ``n``-user world becomes user ``n``.
    edges:
        ``(follower, friend)`` pairs.  Either endpoint may be a new
        user of this same batch (by its post-append id).  Duplicates
        are kept -- following relationships are a multiset, exactly as
        in :class:`~repro.data.model.Dataset`.
    tweets:
        ``(user, venue_id)`` pairs; repeats count, as in training.
    labels:
        ``{user_id: location_id | None}`` observed-label updates for
        existing (or same-batch) users; ``None`` removes the label.
        A mapping, so one batch holds at most one update per user.
    """

    __slots__ = (
        "new_user_labels",
        "edge_src",
        "edge_dst",
        "tweet_user",
        "tweet_venue",
        "label_users",
        "label_locations",
    )

    def __init__(
        self,
        new_users: Iterable[int | None] = (),
        edges: Iterable[tuple[int, int]] = (),
        tweets: Iterable[tuple[int, int]] = (),
        labels: Mapping[int, int | None] | None = None,
    ):
        self.new_user_labels = _as_int_array(
            -1 if loc is None else loc for loc in new_users
        )
        edges = list(edges)
        self.edge_src = _as_int_array((e[0] for e in edges), len(edges))
        self.edge_dst = _as_int_array((e[1] for e in edges), len(edges))
        tweets = list(tweets)
        self.tweet_user = _as_int_array((t[0] for t in tweets), len(tweets))
        self.tweet_venue = _as_int_array((t[1] for t in tweets), len(tweets))
        labels = dict(labels or {})
        self.label_users = _as_int_array(labels.keys(), len(labels))
        self.label_locations = _as_int_array(
            (-1 if loc is None else loc for loc in labels.values()),
            len(labels),
        )

    # -- sizes -------------------------------------------------------------

    @property
    def n_new_users(self) -> int:
        """Number of arriving users in this delta."""
        return int(self.new_user_labels.size)

    @property
    def n_edges(self) -> int:
        """Number of new following edges."""
        return int(self.edge_src.size)

    @property
    def n_tweets(self) -> int:
        """Number of new venue mentions."""
        return int(self.tweet_user.size)

    @property
    def n_label_updates(self) -> int:
        """Number of label (observed-home) updates."""
        return int(self.label_users.size)

    @property
    def is_empty(self) -> bool:
        """True when the delta carries no changes."""
        return (
            self.n_new_users == 0
            and self.n_edges == 0
            and self.n_tweets == 0
            and self.n_label_updates == 0
        )

    # -- identity ----------------------------------------------------------

    def digest(self) -> str:
        """Deterministic content digest of this batch (hash-chain link)."""
        h = hashlib.sha256()
        for name in self.__slots__:
            arr = getattr(self, name)
            h.update(f"{name}:{arr.size};".encode())
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()[:16]

    # -- wire format -------------------------------------------------------

    @classmethod
    def from_payload(cls, payload: dict, gazetteer=None) -> "WorldDelta":
        """Build a delta from a JSON payload (the ``/ingest`` body).

        ``{"new_users": [{"observed_location": 5}, {}],
        "edges": [[0, 3]], "tweets": [[0, 17], [3, "austin"]],
        "labels": {"12": 3, "15": null}}`` -- tweet venues may be venue
        *names*, resolved through ``gazetteer.venue_index`` (an unseen
        venue string raises ``ValueError`` naming it; the venue
        vocabulary is fixed at gazetteer construction).
        """
        if not isinstance(payload, dict):
            raise ValueError("delta payload must be a JSON object")
        unknown = payload.keys() - {"new_users", "edges", "tweets", "labels"}
        if unknown:
            raise ValueError(f"unknown delta fields {sorted(unknown)}")
        # Shape-check every field before iterating: a malformed payload
        # must surface as ValueError (the serving layer's 400 class),
        # never as a bare TypeError/AttributeError from the unpacking.
        for field, kind in (("new_users", list), ("edges", list), ("tweets", list)):
            if field in payload and not isinstance(payload[field], kind):
                raise ValueError(f'"{field}" must be a JSON array')
        for field in ("edges", "tweets"):
            for pair in payload.get(field, ()):
                if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                    raise ValueError(
                        f'each "{field}" entry must be a two-element pair, '
                        f"got {pair!r}"
                    )
        if "labels" in payload and not isinstance(
            payload["labels"], (dict, type(None))
        ):
            raise ValueError(
                '"labels" must be a JSON object of {user_id: location}'
            )
        new_users = []
        for entry in payload.get("new_users", ()):
            if entry is None:
                entry = {}
            if not isinstance(entry, dict):
                raise ValueError(
                    "each new_users entry must be an object like "
                    '{"observed_location": 5} or {}'
                )
            loc = entry.get("observed_location")
            new_users.append(None if loc is None else int(loc))
        edges = [(int(s), int(d)) for s, d in payload.get("edges", ())]
        tweets = []
        for user, venue in payload.get("tweets", ()):
            if isinstance(venue, str):
                index = getattr(gazetteer, "venue_index", None)
                if index is None:
                    raise ValueError(
                        "venue names need a gazetteer to resolve against"
                    )
                from repro.geo.gazetteer import normalize_place_name

                key = normalize_place_name(venue)
                if key not in index:
                    raise ValueError(f"unknown venue name {venue!r}")
                venue = index[key]
            tweets.append((int(user), int(venue)))
        labels = {
            int(uid): (None if loc is None else int(loc))
            for uid, loc in (payload.get("labels") or {}).items()
        }
        return cls(new_users=new_users, edges=edges, tweets=tweets, labels=labels)

    def to_payload(self) -> dict:
        """The JSON wire form (venue ids, never names)."""
        return {
            "new_users": [
                {} if loc < 0 else {"observed_location": int(loc)}
                for loc in self.new_user_labels.tolist()
            ],
            "edges": [
                [int(s), int(d)]
                for s, d in zip(self.edge_src, self.edge_dst)
            ],
            "tweets": [
                [int(u), int(v)]
                for u, v in zip(self.tweet_user, self.tweet_venue)
            ],
            "labels": {
                str(int(u)): (None if loc < 0 else int(loc))
                for u, loc in zip(self.label_users, self.label_locations)
            },
        }

    def __repr__(self) -> str:
        return (
            f"WorldDelta(new_users={self.n_new_users}, "
            f"edges={self.n_edges}, tweets={self.n_tweets}, "
            f"labels={self.n_label_updates})"
        )


@dataclass(frozen=True, slots=True)
class DeltaRecord:
    """One applied delta, as remembered by the world's ``delta_log``."""

    generation: int
    #: Sorted unique ids of every user whose evidence *or candidacy*
    #: changed: arrivals, endpoints of new edges, tweeters, label
    #: updates and their graph neighbours.
    touched_users: np.ndarray
    digest: str
    n_new_users: int
    n_edges: int
    n_tweets: int
    n_label_updates: int


def chain_hash(parent_hash: str, delta_digest: str) -> str:
    """``H(parent, delta)``: the incremental world-identity chain."""
    return hashlib.sha256(
        f"{parent_hash}:{delta_digest}".encode()
    ).hexdigest()[:16]


#: Most recent :class:`DeltaRecord` entries a world retains.  Bounds
#: both the per-apply log copy and the memory a long-running streaming
#: server holds for incremental re-scoring; consumers that fall more
#: than this many generations behind get a loud error from
#: :func:`touched_since` instead of a silently incomplete answer.
DELTA_LOG_LIMIT = 1024


def touched_since(world: ColumnarWorld, since_generation: int) -> np.ndarray:
    """Sorted unique users touched by generations > ``since_generation``.

    Raises :class:`StaleWindowError` when the requested window reaches
    past the retained log (older records are compacted away after
    ``DELTA_LOG_LIMIT`` applies) -- a consumer that far behind must do
    a full re-score, and silently returning the surviving subset would
    hide exactly the users it needs.
    """
    # Delta generations start at 1 (0 is the base compile), so any
    # since_generation below 0 means the same thing as 0: everything.
    since_generation = max(0, since_generation)
    if since_generation >= world.generation:
        return np.empty(0, dtype=np.int64)
    log = world.delta_log
    oldest = log[0].generation if log else world.generation + 1
    if since_generation < oldest - 1:
        raise StaleWindowError(
            f"delta log only covers generations {oldest}.."
            f"{world.generation}; since_generation={since_generation} "
            "reaches past the retained window -- run a full re-score"
        )
    parts = [
        record.touched_users
        for record in log
        if record.generation > since_generation
    ]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return _sorted_unique(np.concatenate(parts))


# -- growable arenas -------------------------------------------------------


class _GrowableArena:
    """An append-only buffer behind one flat world array.

    The world's attribute is a prefix view ``buffer[:length]``; appends
    write past ``length`` (never into the prefix), so every older
    world's view stays valid.  Ownership is tracked by view identity:
    an apply may extend the arena in place only when the parent world's
    array *is* ``view`` -- a second delta applied to the same parent
    (branching) fails that test and copies instead.
    """

    __slots__ = ("buffer", "length", "view")

    def __init__(self, values: np.ndarray, extra: int):
        capacity = values.size + max(extra, values.size // 4, 64)
        self.buffer = np.empty(capacity, dtype=np.int64)
        self.buffer[: values.size] = values
        self.length = values.size
        self.view = self.buffer[: values.size]

    def append(self, values: np.ndarray) -> np.ndarray:
        """Append past the prefix, growing the arena as needed."""
        needed = self.length + values.size
        if needed > self.buffer.size:
            grown = np.empty(
                max(needed, 2 * self.buffer.size), dtype=np.int64
            )
            grown[: self.length] = self.buffer[: self.length]
            self.buffer = grown
        self.buffer[self.length : needed] = values
        self.length = needed
        self.view = self.buffer[:needed]
        return self.view


def _arena_append(
    world: ColumnarWorld,
    state: dict[str, _GrowableArena],
    key: str,
    values: np.ndarray,
) -> np.ndarray:
    """Append ``values`` to ``world.<key>``, reusing slack when safe."""
    current: np.ndarray = getattr(world, key)
    parent_state = getattr(world, "_arena_state", None) or {}
    arena = parent_state.get(key)
    owned = arena is not None and current is arena.view
    if values.size == 0:
        if owned:
            state[key] = arena
        return current
    if not owned:
        arena = _GrowableArena(current, extra=values.size)
    out = arena.append(values)
    state[key] = arena
    return out


# -- CSR splicing ----------------------------------------------------------


def _pad_indptr(indptr: np.ndarray, n_groups: int) -> np.ndarray:
    """Extend an indptr to cover ``n_groups`` rows (new rows empty)."""
    if indptr.size == n_groups + 1:
        return indptr
    padded = np.empty(n_groups + 1, dtype=np.int64)
    padded[: indptr.size] = indptr
    padded[indptr.size :] = indptr[-1]
    return padded


_ARANGE_CACHE = np.empty(0, dtype=np.int32)


def _arange32(n: int) -> np.ndarray:
    """A read-only view of ``arange(n)`` (grown once, reused forever).

    The splice path consumes a full-length position ramp on every
    apply; building it fresh costs an mmap + page-fault cycle that
    dwarfs the arithmetic.  Callers must treat the view as immutable.
    """
    global _ARANGE_CACHE
    if _ARANGE_CACHE.size < n:
        _ARANGE_CACHE = np.arange(
            max(n, 2 * _ARANGE_CACHE.size), dtype=np.int32
        )
    return _ARANGE_CACHE[:n]


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """``np.unique`` via an explicit sort + run mask.

    Equivalent output, but built from primitives that stay fast on
    every numpy build -- the splice path calls this several times per
    apply and ``np.unique``'s extra machinery was its single largest
    cost.
    """
    if values.size == 0:
        return values.astype(np.int64, copy=False)
    s = np.sort(values)
    keep = np.empty(s.size, dtype=bool)
    keep[0] = True
    np.not_equal(s[1:], s[:-1], out=keep[1:])
    return s[keep]


def _gather_segments(
    merged: np.ndarray,
    seg_src_starts: np.ndarray,
    seg_out_starts: np.ndarray,
    seg_lens: np.ndarray,
    out_size: int,
) -> np.ndarray:
    """Materialize an output that is a patchwork of ``merged`` slices.

    Output positions ``[seg_out_starts[k], +seg_lens[k])`` read from
    ``merged`` starting at ``seg_src_starts[k]``; segments must tile
    the output exactly.  One repeat + one add + one take -- no scatter
    (twice the price of a gather here) and index arrays built per
    *segment*, never per row of the world.
    """
    if merged.size < 2**31 and out_size < 2**31:
        index_dtype = np.int32
        positions = _arange32(out_size)
    else:  # pragma: no cover - worlds beyond int32 indexing
        index_dtype = np.int64
        positions = np.arange(out_size, dtype=np.int64)
    gather_idx = np.repeat(
        (seg_src_starts - seg_out_starts).astype(index_dtype), seg_lens
    )
    np.add(gather_idx, positions, out=gather_idx)
    # mode="clip": placeholder segments (overwritten by the caller) may
    # point past the source end; clipping keeps the gather branch-free
    # without a separate bounds pass.
    return np.take(merged, gather_idx, mode="clip")


def _splice_append_csr(
    indptr: np.ndarray,
    indices: np.ndarray,
    add_groups: np.ndarray,
    add_values: np.ndarray,
    n_groups: int,
):
    """Append ``(group, value)`` pairs to a CSR's rows, stably.

    The appended values land *after* each row's existing values, in
    input order -- exactly where a from-scratch
    :func:`~repro.data.columnar.build_csr` over the concatenated arena
    would put them, so spliced and recompiled CSRs are bit-identical.
    """
    indptr = _pad_indptr(indptr, n_groups)
    if add_groups.size == 0:
        return indptr, indices
    order = np.argsort(add_groups, kind="stable")
    sorted_values = add_values[order]
    rows = _sorted_unique(add_groups)
    add_counts = np.bincount(add_groups, minlength=n_groups)
    new_indptr = _offsets(np.diff(indptr) + add_counts)
    row_indptr = _offsets(add_counts[rows])
    return new_indptr, _splice(
        indptr, indices, rows, row_indptr, sorted_values, new_indptr,
        keep_old_rows=True,
    )


def _replace_csr_rows(
    indptr: np.ndarray,
    indices: np.ndarray,
    rows: np.ndarray,
    row_indptr: np.ndarray,
    row_values: np.ndarray,
    n_groups: int,
):
    """Replace the content of ``rows`` (sorted unique) wholesale.

    Rows not listed keep their values (shifted as needed); listed row
    ``rows[k]`` becomes ``row_values[row_indptr[k]:row_indptr[k+1]]``.
    """
    indptr = _pad_indptr(indptr, n_groups)
    if rows.size == 0:
        return indptr, indices
    new_counts = np.diff(indptr).copy()
    new_counts[rows] = np.diff(row_indptr)
    new_indptr = _offsets(new_counts)
    return new_indptr, _splice(
        indptr, indices, rows, row_indptr, row_values, new_indptr,
        keep_old_rows=False,
    )


def _splice(
    indptr: np.ndarray,
    indices: np.ndarray,
    rows: np.ndarray,
    row_indptr: np.ndarray,
    row_values: np.ndarray,
    new_indptr: np.ndarray,
    keep_old_rows: bool,
):
    """Shared splice kernel behind append and replace.

    ``rows`` (sorted unique) receive ``row_values`` -- after their old
    values when ``keep_old_rows`` (append), instead of them otherwise
    (replace); every other row's values move untouched.  The output
    interleaves untouched stretches of the old array with the spliced
    blocks, so it is one :func:`_gather_segments` patchwork over the
    concatenation of both sources.  When appending, a spliced row's own
    old values belong to the stretch *ending* at that row (they stay in
    front of the appended block), so the stretch boundary sits at the
    row's old end, not its start.
    """
    n_rows = rows.size
    out_size = int(new_indptr[-1])
    spliced_starts = new_indptr[rows] + (
        (indptr[rows + 1] - indptr[rows]) if keep_old_rows else 0
    )
    if indices.size == 0:
        # Nothing kept (e.g. first edges of an edge-less world): the
        # output is just the spliced blocks, laid end to end.
        out = np.empty(out_size, dtype=np.int64)
        for k in range(n_rows):
            lo, hi = int(row_indptr[k]), int(row_indptr[k + 1])
            d = int(spliced_starts[k])
            out[d : d + hi - lo] = row_values[lo:hi]
        return out
    # Segment table, in output order: kept stretch 0, spliced block 0,
    # kept stretch 1, ... , spliced block R-1, kept stretch R.  The
    # spliced blocks read placeholder positions near 0 (kept in bounds
    # by the take's clip mode) and are overwritten afterwards with one
    # small scatter -- this keeps the heavy pass a pure gather over
    # ``indices`` with no concatenated copy of the sources.
    src_starts = np.empty(2 * n_rows + 1, dtype=np.int64)
    out_starts = np.empty(2 * n_rows + 1, dtype=np.int64)
    seg_lens = np.empty(2 * n_rows + 1, dtype=np.int64)
    kept_starts = np.concatenate([[0], indptr[rows + 1]])
    kept_ends = np.concatenate(
        [indptr[rows + 1] if keep_old_rows else indptr[rows], [indices.size]]
    )
    src_starts[0::2] = kept_starts
    src_starts[1::2] = 0
    out_starts[0::2] = np.concatenate([[0], new_indptr[rows + 1]])
    out_starts[1::2] = spliced_starts
    seg_lens[0::2] = kept_ends - kept_starts
    row_lens = np.diff(row_indptr)
    seg_lens[1::2] = row_lens
    out = _gather_segments(indices, src_starts, out_starts, seg_lens, out_size)
    if row_values.size:
        positions = np.repeat(spliced_starts - row_indptr[:-1], row_lens)
        np.add(
            positions,
            np.arange(row_values.size, dtype=np.int64),
            out=positions,
        )
        out[positions] = row_values
    return out


# -- candidacy / neighbourhood recompute -----------------------------------


def _unique_pairs_csr(
    owners: np.ndarray, values: np.ndarray, n_groups: int, value_range: int
):
    """``build_unique_csr`` for bounded values, via one combined-key sort.

    Packing ``(owner, value)`` into one int64 key turns the lexsort
    into a single ``np.unique`` -- several times faster on the small
    touched-row recomputes, with the identical sorted-unique-per-group
    result.
    """
    combined = _sorted_unique(owners * np.int64(value_range) + values)
    groups = combined // value_range
    counts = np.bincount(groups, minlength=n_groups)
    return _offsets(counts), combined - groups * value_range


def _recompute_nbr_rows(
    rows: np.ndarray,
    out_indptr: np.ndarray,
    out_indices: np.ndarray,
    in_indptr: np.ndarray,
    in_indices: np.ndarray,
    n_users: int,
):
    """Sorted deduplicated undirected neighbourhood of each row."""
    rep_out, friends = expand_csr(out_indptr, out_indices, rows)
    rep_in, followers = expand_csr(in_indptr, in_indices, rows)
    local = np.arange(rows.size, dtype=np.int64)
    owners = np.concatenate(
        [np.repeat(local, rep_out), np.repeat(local, rep_in)]
    )
    values = np.concatenate([friends, followers])
    return _unique_pairs_csr(owners, values, rows.size, n_users)


def _recompute_cand_rows(
    rows: np.ndarray,
    observed: np.ndarray,
    out_indptr: np.ndarray,
    out_indices: np.ndarray,
    in_indptr: np.ndarray,
    in_indices: np.ndarray,
    uv_indptr: np.ndarray,
    uv_indices: np.ndarray,
    ref_indptr: np.ndarray,
    ref_indices: np.ndarray,
    n_locations: int,
):
    """Full-signal Sec. 4.3 candidacy of each row, from current evidence.

    Mirrors ``from_edge_arrays``'s pair assembly exactly (own label,
    labeled neighbours' labels in both directions, referents of tweeted
    venues), restricted to the touched rows; the unique-sort makes the
    result independent of assembly order, so spliced rows equal the
    from-scratch ones.
    """
    local = np.arange(rows.size, dtype=np.int64)
    pair_owner: list[np.ndarray] = []
    pair_loc: list[np.ndarray] = []
    own = observed[rows]
    labeled = own >= 0
    pair_owner.append(local[labeled])
    pair_loc.append(own[labeled])
    for indptr, indices in ((out_indptr, out_indices), (in_indptr, in_indices)):
        rep, neighbours = expand_csr(indptr, indices, rows)
        nb_obs = observed[neighbours]
        keep = nb_obs >= 0
        pair_owner.append(np.repeat(local, rep)[keep])
        pair_loc.append(nb_obs[keep])
    rep, venues = expand_csr(uv_indptr, uv_indices, rows)
    ref_rep, referents = expand_csr(ref_indptr, ref_indices, venues)
    pair_owner.append(np.repeat(np.repeat(local, rep), ref_rep))
    pair_loc.append(referents)
    return _unique_pairs_csr(
        np.concatenate(pair_owner),
        np.concatenate(pair_loc),
        rows.size,
        n_locations,
    )


# -- the apply -------------------------------------------------------------


def _validate_delta(
    world: ColumnarWorld, delta: WorldDelta, n_new_total: int
) -> None:
    endpoints = np.concatenate([delta.edge_src, delta.edge_dst])
    if endpoints.size and (
        int(endpoints.min()) < 0 or int(endpoints.max()) >= n_new_total
    ):
        bad = endpoints[(endpoints < 0) | (endpoints >= n_new_total)]
        raise ValueError(
            f"delta edge references unknown user {int(bad[0])} "
            f"(world will have {n_new_total} users)"
        )
    if np.any(delta.edge_src == delta.edge_dst):
        raise ValueError("self-follow edges are not allowed")
    if delta.tweet_user.size and (
        int(delta.tweet_user.min()) < 0
        or int(delta.tweet_user.max()) >= n_new_total
    ):
        bad = delta.tweet_user[
            (delta.tweet_user < 0) | (delta.tweet_user >= n_new_total)
        ]
        raise ValueError(
            f"delta mention references unknown user {int(bad[0])}"
        )
    if delta.tweet_venue.size and (
        int(delta.tweet_venue.min()) < 0
        or int(delta.tweet_venue.max()) >= world.n_venues
    ):
        bad = delta.tweet_venue[
            (delta.tweet_venue < 0) | (delta.tweet_venue >= world.n_venues)
        ]
        raise ValueError(
            f"delta mention references unknown venue id {int(bad[0])}"
        )
    for name, locs in (
        ("new user label", delta.new_user_labels),
        ("label update", delta.label_locations),
    ):
        if locs.size and (
            int(locs.min()) < -1 or int(locs.max()) >= world.n_locations
        ):
            bad = locs[(locs < -1) | (locs >= world.n_locations)]
            raise ValueError(
                f"{name} references unknown location {int(bad[0])}"
            )
    if delta.label_users.size and (
        int(delta.label_users.min()) < 0
        or int(delta.label_users.max()) >= n_new_total
    ):
        bad = delta.label_users[
            (delta.label_users < 0) | (delta.label_users >= n_new_total)
        ]
        raise ValueError(
            f"label update references unknown user {int(bad[0])}"
        )


def validate_delta(world: ColumnarWorld, delta: WorldDelta) -> None:
    """Raise ``ValueError`` unless ``delta`` can apply cleanly to ``world``.

    The same checks ``apply_delta`` runs, exposed separately so a
    write-ahead consumer (the durable journal) can reject a bad delta
    *before* committing it to disk -- a journaled record must always
    replay.
    """
    if not isinstance(delta, WorldDelta):
        raise TypeError(f"expected a WorldDelta, got {type(delta).__name__}")
    _validate_delta(world, delta, world.n_users + delta.n_new_users)


def apply_delta(world: ColumnarWorld, delta: WorldDelta) -> ColumnarWorld:
    """Splice one delta into a world; returns the next generation.

    The input world is never mutated (its arrays stay valid views);
    the returned world shares every untouched array with it.  Array
    content is bit-identical to recompiling the final dataset from
    scratch; the content hash is the O(|delta|) chain
    ``H(parent, delta)`` and ``generation``/``delta_log`` advance by
    one entry.
    """
    if not isinstance(delta, WorldDelta):
        raise TypeError(f"expected a WorldDelta, got {type(delta).__name__}")
    n_old = world.n_users
    n_new = n_old + delta.n_new_users
    _validate_delta(world, delta, n_new)
    # The chained hash needs the parent's identity; computing it first
    # also means the one-time O(world) base hash is paid before any
    # splicing starts.
    new_hash = chain_hash(world.content_hash, delta.digest())

    state: dict[str, _GrowableArena] = {}
    arrays: dict[str, np.ndarray] = {}

    # -- user table ---------------------------------------------------
    relabel = delta.n_label_updates > 0
    if relabel:
        # Label updates patch the prefix, so the parent's view cannot
        # be shared; appends alone extend it in place.
        observed = np.empty(n_new, dtype=np.int64)
        observed[:n_old] = world.observed_location
        observed[n_old:] = delta.new_user_labels
        observed[delta.label_users] = delta.label_locations
    else:
        observed = _arena_append(
            world, state, "observed_location", delta.new_user_labels
        )
    arrays["observed_location"] = observed
    location_venue = world.location_venue
    if relabel or delta.n_new_users:
        # Same expression as from_edge_arrays, for bit-equality.
        labeled = observed >= 0
        arrays["observed_venue"] = np.where(
            labeled, location_venue[np.where(labeled, observed, 0)], -1
        )
    else:
        arrays["observed_venue"] = world.observed_venue
    arrays["location_venue"] = location_venue

    # -- relationship arenas ------------------------------------------
    arrays["edge_src"] = _arena_append(world, state, "edge_src", delta.edge_src)
    arrays["edge_dst"] = _arena_append(world, state, "edge_dst", delta.edge_dst)
    arrays["tweet_user"] = _arena_append(
        world, state, "tweet_user", delta.tweet_user
    )
    arrays["tweet_venue"] = _arena_append(
        world, state, "tweet_venue", delta.tweet_venue
    )

    # -- venue aggregates (referent CSR is gazetteer-only: shared) ----
    if delta.n_tweets:
        arrays["venue_mention_counts"] = (
            world.venue_mention_counts
            + np.bincount(delta.tweet_venue, minlength=world.n_venues)
        )
    else:
        arrays["venue_mention_counts"] = world.venue_mention_counts
    arrays["ref_indptr"] = world.ref_indptr
    arrays["ref_indices"] = world.ref_indices

    # -- adjacency CSRs: append delta rows ----------------------------
    arrays["out_indptr"], arrays["out_indices"] = _splice_append_csr(
        world.out_indptr, world.out_indices, delta.edge_src, delta.edge_dst, n_new
    )
    arrays["in_indptr"], arrays["in_indices"] = _splice_append_csr(
        world.in_indptr, world.in_indices, delta.edge_dst, delta.edge_src, n_new
    )
    arrays["uv_indptr"], arrays["uv_indices"] = _splice_append_csr(
        world.uv_indptr, world.uv_indices, delta.tweet_user, delta.tweet_venue,
        n_new,
    )

    # -- touched rows -------------------------------------------------
    new_user_ids = np.arange(n_old, n_new, dtype=np.int64)
    edge_touched = _sorted_unique(
        np.concatenate([delta.edge_src, delta.edge_dst, new_user_ids])
    )
    if edge_touched.size:
        nbr_rows_indptr, nbr_rows_values = _recompute_nbr_rows(
            edge_touched,
            arrays["out_indptr"], arrays["out_indices"],
            arrays["in_indptr"], arrays["in_indices"],
            n_new,
        )
        arrays["nbr_indptr"], arrays["nbr_indices"] = _replace_csr_rows(
            world.nbr_indptr, world.nbr_indices,
            edge_touched, nbr_rows_indptr, nbr_rows_values, n_new,
        )
    else:
        arrays["nbr_indptr"] = _pad_indptr(world.nbr_indptr, n_new)
        arrays["nbr_indices"] = world.nbr_indices

    # Candidacy changes for: arrivals, endpoints of new edges, new
    # tweeters, label-updated users -- and every *neighbour* of a
    # label-updated user, whose candidate set gains/loses that label.
    relabel_neighbours = (
        expand_csr(
            arrays["nbr_indptr"], arrays["nbr_indices"], delta.label_users
        )[1]
        if relabel
        else np.empty(0, dtype=np.int64)
    )
    touched = _sorted_unique(
        np.concatenate([
            edge_touched,
            delta.tweet_user,
            delta.label_users,
            relabel_neighbours,
        ])
    )
    if touched.size:
        cand_rows_indptr, cand_rows_values = _recompute_cand_rows(
            touched,
            observed,
            arrays["out_indptr"], arrays["out_indices"],
            arrays["in_indptr"], arrays["in_indices"],
            arrays["uv_indptr"], arrays["uv_indices"],
            world.ref_indptr, world.ref_indices,
            world.n_locations,
        )
        arrays["cand_indptr"], arrays["cand_indices"] = _replace_csr_rows(
            world.cand_indptr, world.cand_indices,
            touched, cand_rows_indptr, cand_rows_values, n_new,
        )
    else:
        arrays["cand_indptr"] = _pad_indptr(world.cand_indptr, n_new)
        arrays["cand_indices"] = world.cand_indices

    new_world = ColumnarWorld(world.gazetteer, arrays, content_hash=new_hash)
    new_world.generation = world.generation + 1
    # The log is bounded: a streaming server applies deltas forever,
    # and an unbounded tuple would cost O(N) copy per apply and O(N)
    # memory.  touched_since() refuses windows older than the retained
    # tail, so truncation can never silently drop touched users.
    new_world.delta_log = (world.delta_log + (
        DeltaRecord(
            generation=new_world.generation,
            touched_users=touched,
            digest=delta.digest(),
            n_new_users=delta.n_new_users,
            n_edges=delta.n_edges,
            n_tweets=delta.n_tweets,
            n_label_updates=delta.n_label_updates,
        ),
    ))[-DELTA_LOG_LIMIT:]
    new_world._arena_state = state
    return new_world
