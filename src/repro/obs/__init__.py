"""Zero-dependency observability: metrics registry, tracing, sampler hooks.

The package is deliberately flat and stdlib+numpy only:

- :mod:`repro.obs.metrics` -- process-wide thread-safe registry of named
  counters, gauges, and log-bucketed latency histograms with a
  Prometheus-text exposition encoder.
- :mod:`repro.obs.trace` -- lightweight nested spans on a thread-local
  stack, a bounded ring buffer of recent request traces, and a
  slow-request log with per-span breakdowns.
- :mod:`repro.obs.hooks` -- opt-in observer hooks for the sampler hot
  loop that cost a single ``None`` check when disabled.

Everything here is read-only with respect to the numerical pipeline:
instrumentation never changes what the samplers, fold-in solvers, or
ingest paths compute (golden-tested in tests/test_obs_trace.py and
tests/test_serving_obs.py).
"""

from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    get_registry,
    render_prometheus,
    set_enabled,
)
from repro.obs.trace import TraceBuffer, span, trace_request

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "get_registry",
    "render_prometheus",
    "set_enabled",
    "TraceBuffer",
    "span",
    "trace_request",
]
