"""Opt-in observer hooks for the sampler hot loop.

The Gibbs/EM inference loop is the hottest code in the repo; it must not
pay for instrumentation nobody asked for.  Instead of importing metrics
directly, ``run_inference`` fetches the module-level sweep observer
*once* per fit and calls it only when it is not ``None`` -- the disabled
cost is a single global read per fit, zero per sweep.

An observer is any callable ``(engine, iteration, seconds)`` where
``engine`` is the sampler engine name, ``iteration`` the 0-based sweep
index across burn-in and accumulation, and ``seconds`` the wall time of
that sweep.  :func:`metrics_sweep_observer` builds the standard one that
feeds the process metrics registry.

The partitioned engine exposes a second, finer-grained hook with the
same lifecycle: a *partition observer* is a callable
``(phase, color, n_colors, seconds, worker_seconds)`` invoked once per
swept color -- ``phase`` is ``"following"`` or ``"tweeting"``,
``seconds`` the barrier-to-barrier wall time of the color, and
``worker_seconds`` the per-chunk compute times (one entry per worker
block, so thread-pool skew is visible).
:func:`metrics_partition_observer` builds the standard registry-backed
one (see :func:`repro.obs.metrics.partition_metrics`).

Observers are observational only: they receive timings, never the
sampler state, so installing one cannot perturb the chain (golden-tested
in tests/test_obs_trace.py).
"""

from __future__ import annotations

from collections.abc import Callable

SweepObserver = Callable[[str, int, float], None]

#: (phase, color, n_colors, color_seconds, per_worker_seconds) -> None
PartitionObserver = Callable[[str, int, int, float, tuple], None]

_SWEEP_OBSERVER: SweepObserver | None = None
_PARTITION_OBSERVER: PartitionObserver | None = None


def set_sweep_observer(observer: SweepObserver | None) -> SweepObserver | None:
    """Install (or clear with ``None``) the sweep observer; returns previous."""
    global _SWEEP_OBSERVER
    previous = _SWEEP_OBSERVER
    _SWEEP_OBSERVER = observer
    return previous


def sweep_observer() -> SweepObserver | None:
    """The currently installed sweep observer, if any."""
    return _SWEEP_OBSERVER


def metrics_sweep_observer(registry=None) -> SweepObserver:
    """Build the standard observer that records sweeps into a registry."""
    from repro.obs import metrics

    registry = registry if registry is not None else metrics.get_registry()
    sweep_seconds = registry.histogram(
        "repro_sampler_sweep_seconds",
        "Wall time of one Gibbs sweep over all users",
        labelnames=("engine",),
    )
    sweeps_total = registry.counter(
        "repro_sampler_sweeps_total",
        "Completed Gibbs sweeps",
        labelnames=("engine",),
    )

    def observe(engine: str, iteration: int, seconds: float) -> None:
        sweep_seconds.labels(engine=engine).observe(seconds)
        sweeps_total.labels(engine=engine).inc()

    return observe


def set_partition_observer(
    observer: PartitionObserver | None,
) -> PartitionObserver | None:
    """Install (or clear with ``None``) the partition observer."""
    global _PARTITION_OBSERVER
    previous = _PARTITION_OBSERVER
    _PARTITION_OBSERVER = observer
    return previous


def partition_observer() -> PartitionObserver | None:
    """The currently installed partition observer, if any."""
    return _PARTITION_OBSERVER


def metrics_partition_observer(registry=None) -> PartitionObserver:
    """Build the standard observer feeding the partition metrics.

    Records each swept color into the per-color histogram and every
    worker chunk into the per-worker histogram, and keeps the
    ``repro_gibbs_partition_colors`` gauge at the sweep's color count
    (see :func:`repro.obs.metrics.partition_metrics`).
    """
    from repro.obs import metrics

    registry = registry if registry is not None else metrics.get_registry()
    colors_gauge, color_seconds, worker_seconds = metrics.partition_metrics(
        registry
    )

    def observe(phase, color, n_colors, seconds, per_worker) -> None:
        colors_gauge.labels(phase=phase).set(float(n_colors))
        color_seconds.labels(phase=phase).observe(seconds)
        h = worker_seconds.labels(phase=phase)
        for w in per_worker:
            h.observe(w)

    return observe
