"""Opt-in observer hooks for the sampler hot loop.

The Gibbs/EM inference loop is the hottest code in the repo; it must not
pay for instrumentation nobody asked for.  Instead of importing metrics
directly, ``run_inference`` fetches the module-level sweep observer
*once* per fit and calls it only when it is not ``None`` -- the disabled
cost is a single global read per fit, zero per sweep.

An observer is any callable ``(engine, iteration, seconds)`` where
``engine`` is the sampler engine name, ``iteration`` the 0-based sweep
index across burn-in and accumulation, and ``seconds`` the wall time of
that sweep.  :func:`metrics_sweep_observer` builds the standard one that
feeds the process metrics registry.

Observers are observational only: they receive timings, never the
sampler state, so installing one cannot perturb the chain (golden-tested
in tests/test_obs_trace.py).
"""

from __future__ import annotations

from collections.abc import Callable

SweepObserver = Callable[[str, int, float], None]

_SWEEP_OBSERVER: SweepObserver | None = None


def set_sweep_observer(observer: SweepObserver | None) -> SweepObserver | None:
    """Install (or clear with ``None``) the sweep observer; returns previous."""
    global _SWEEP_OBSERVER
    previous = _SWEEP_OBSERVER
    _SWEEP_OBSERVER = observer
    return previous


def sweep_observer() -> SweepObserver | None:
    """The currently installed sweep observer, if any."""
    return _SWEEP_OBSERVER


def metrics_sweep_observer(registry=None) -> SweepObserver:
    """Build the standard observer that records sweeps into a registry."""
    from repro.obs import metrics

    registry = registry if registry is not None else metrics.get_registry()
    sweep_seconds = registry.histogram(
        "repro_sampler_sweep_seconds",
        "Wall time of one Gibbs sweep over all users",
        labelnames=("engine",),
    )
    sweeps_total = registry.counter(
        "repro_sampler_sweeps_total",
        "Completed Gibbs sweeps",
        labelnames=("engine",),
    )

    def observe(engine: str, iteration: int, seconds: float) -> None:
        sweep_seconds.labels(engine=engine).observe(seconds)
        sweeps_total.labels(engine=engine).inc()

    return observe
