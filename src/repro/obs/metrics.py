"""Process-wide, thread-safe metrics registry with Prometheus exposition.

Three instrument kinds, all label-aware:

- **Counter** -- monotonically increasing float (requests served, cache
  hits, sampler sweeps).
- **Gauge** -- instantaneous value that can go up and down (in-flight
  requests), or a callback evaluated at collection time (uptime).
- **Histogram** -- log-bucketed latency distribution backed by a numpy
  ``int64`` bucket array.  Buckets are cumulative-compatible with the
  Prometheus text format (``le`` upper bounds) and quantiles (p50/p95/
  p99) are estimated by log-linear interpolation inside the bucket that
  crosses the target rank, clamped to the exact observed min/max.

Metrics are addressed by name and label values: ``registry.counter(
"repro_http_requests_total", labelnames=("route",)).labels(route="/x")``
returns a *child* that supports ``inc()``.  Children are created on
first use and cached, so hot paths resolve their child once at
construction time and pay only an ``_ENABLED`` check plus one lock
acquisition per event afterwards.  ``set_enabled(False)`` turns every
``inc``/``observe``/``set`` into an early return, which is how the
overhead benchmark measures the instrumented-vs-dark delta on identical
code paths.

The module-level :data:`REGISTRY` is the process singleton used by the
serving, fold-in, cache, journal, and sampler instrumentation; tests
that need isolation construct their own :class:`MetricsRegistry`.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Callable, Iterable, Sequence

import numpy as np

_ENABLED = True


def set_enabled(flag: bool) -> bool:
    """Globally enable/disable metric recording; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def enabled() -> bool:
    """Whether metric recording is currently enabled."""
    return _ENABLED


def default_latency_buckets() -> np.ndarray:
    """Log-spaced latency bucket upper bounds in seconds, 100us .. 60s.

    Five buckets per decade gives ~1.6x resolution, tight enough that the
    interpolated p99 of a unimodal latency distribution lands within the
    same visual bucket a dashboard would draw.
    """
    decades = np.arange(-4.0, 1.8 + 1e-9, 0.2)
    bounds = np.power(10.0, decades)
    return np.round(bounds, 10)


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name: {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name cannot start with a digit: {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Format a sample value the way Prometheus clients do."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Child:
    """Base class for per-label-set instrument state."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()


class CounterChild(_Child):
    """A single counter time series (one label combination)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add a non-negative amount to the counter."""
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current counter value."""
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class GaugeChild(_Child):
    """A single gauge time series; supports set/inc/dec or a callback."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        """Set the gauge."""
        if not _ENABLED:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add to the gauge."""
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract from the gauge."""
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` at collection time instead of storing a value."""
        self._fn = fn

    @property
    def value(self) -> float:
        """Current gauge value (callback-evaluated when installed)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class HistogramChild(_Child):
    """A single histogram time series with log-bucketed counts."""

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_min", "_max")

    def __init__(self, bounds: np.ndarray) -> None:
        super().__init__()
        self._bounds = bounds
        self._counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one value into its log bucket."""
        if not _ENABLED:
            return
        value = float(value)
        idx = int(np.searchsorted(self._bounds, value, side="left"))
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed wall time of the block."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of observed values."""
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0..1) by log interpolation in-bucket.

        Exact at the observed extremes: the estimate is clamped to
        ``[min, max]`` so p0/p100 are exact and a single-sample histogram
        reports the sample itself at every quantile.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = self._counts.copy()
            total = self._count
            lo, hi = self._min, self._max
        if total == 0:
            return 0.0
        target = q * total
        cum = np.cumsum(counts)
        idx = int(np.searchsorted(cum, target, side="left"))
        idx = min(idx, len(self._bounds) - 1)
        upper = float(self._bounds[idx])
        lower = float(self._bounds[idx - 1]) if idx > 0 else upper / 10.0
        below = float(cum[idx - 1]) if idx > 0 else 0.0
        in_bucket = float(counts[idx])
        if in_bucket <= 0:
            estimate = upper
        else:
            frac = min(max((target - below) / in_bucket, 0.0), 1.0)
            if lower > 0 and upper > 0:
                estimate = math.exp(
                    math.log(lower) + frac * (math.log(upper) - math.log(lower))
                )
            else:
                estimate = lower + frac * (upper - lower)
        return min(max(estimate, lo), hi)

    def summary(self) -> dict:
        """Snapshot dict: count/sum/min/max plus p50/p95/p99 estimates."""
        with self._lock:
            count = self._count
            total = self._sum
            lo, hi = self._min, self._max
        if count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def _reset(self) -> None:
        with self._lock:
            self._counts[:] = 0
            self._sum = 0.0
            self._count = 0
            self._min = math.inf
            self._max = -math.inf


class _HistogramTimer:
    __slots__ = ("_child", "_start")

    def __init__(self, child: HistogramChild) -> None:
        self._child = child

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._child.observe(time.perf_counter() - self._start)


_CHILD_FACTORY = {
    "counter": CounterChild,
    "gauge": GaugeChild,
}


class Metric:
    """A named metric family: one instrument kind plus its label children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str] = (),
        buckets: np.ndarray | None = None,
    ) -> None:
        self.name = _validate_name(name)
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _validate_name(label)
        if kind == "histogram":
            self._bounds = (
                np.asarray(buckets, dtype=np.float64)
                if buckets is not None
                else default_latency_buckets()
            )
            if not np.all(np.diff(self._bounds) > 0):
                raise ValueError("histogram buckets must be strictly increasing")
        elif buckets is not None:
            raise ValueError(f"buckets are only valid for histograms, not {kind}")
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Child] = {}
        if not self.labelnames:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self) -> _Child:
        if self.kind == "histogram":
            return HistogramChild(self._bounds)
        return _CHILD_FACTORY[self.kind]()

    def labels(self, **labelvalues: str):
        """Resolve (creating on first use) the child for one label set."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def children(self) -> Iterable[tuple[tuple[str, ...], _Child]]:
        """Snapshot of (label values, child) pairs in creation order."""
        with self._lock:
            return list(self._children.items())

    # Unlabeled convenience pass-throughs ------------------------------
    def _require_default(self) -> _Child:
        if self._default is None:
            raise ValueError(f"{self.name} has labels {self.labelnames}; use .labels()")
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled default child."""
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the unlabeled default child."""
        self._require_default().dec(amount)

    def set(self, value: float) -> None:
        """Set the unlabeled default child."""
        self._require_default().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Install a collection-time callback on the default child."""
        self._require_default().set_function(fn)

    def observe(self, value: float) -> None:
        """Observe into the unlabeled default child."""
        self._require_default().observe(value)

    def time(self) -> _HistogramTimer:
        """Timer context manager on the default child."""
        return self._require_default().time()

    @property
    def value(self) -> float:
        """Value of the unlabeled default child."""
        return self._require_default().value

    def total(self) -> float:
        """Sum of all children (counters/gauges) -- aggregate across labels."""
        return sum(child.value for _, child in self.children())

    def summary(self) -> dict:
        """Summary dict of the default child histogram."""
        return self._require_default().summary()

    def quantile(self, q: float) -> float:
        """Quantile estimate from the default child histogram."""
        return self._require_default().quantile(q)

    def reset(self) -> None:
        """Zero every child in place (pre-resolved handles stay valid)."""
        for _, child in self.children():
            child._reset()


class MetricsRegistry:
    """Thread-safe name->metric map with get-or-create registration."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: np.ndarray | None = None,
    ) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}"
                    )
                return existing
            metric = Metric(name, help_text, kind, labelnames, buckets)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Metric:
        """Get or create a counter metric."""
        return self._register(name, help_text, "counter", labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Metric:
        """Get or create a gauge metric."""
        return self._register(name, help_text, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: np.ndarray | None = None,
    ) -> Metric:
        """Get or create a histogram metric."""
        return self._register(name, help_text, "histogram", labelnames, buckets)

    def get(self, name: str) -> Metric | None:
        """Look up a metric by name (None when absent)."""
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> list[Metric]:
        """Registered metric families in registration order."""
        with self._lock:
            return list(self._metrics.values())

    def reset(self) -> None:
        """Zero every metric in place; registered families stay registered."""
        for metric in self.collect():
            metric.reset()

    def snapshot(self) -> dict:
        """Plain-dict dump of every sample, for JSON surfaces and the CLI."""
        out: dict = {}
        for metric in self.collect():
            series = {}
            for key, child in metric.children():
                label = ",".join(
                    f"{n}={v}" for n, v in zip(metric.labelnames, key)
                )
                if metric.kind == "histogram":
                    series[label] = child.summary()
                else:
                    series[label] = child.value
            out[metric.name] = {"kind": metric.kind, "series": series}
        return out


def _render_labels(labelnames: Sequence[str], values: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(labelnames, values)
    )
    return "{" + pairs + "}"


def _merge_labels(
    labelnames: Sequence[str], values: Sequence[str], extra_name: str, extra_value: str
) -> str:
    pairs = [
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(labelnames, values)
    ]
    pairs.append(f'{extra_name}="{_escape_label_value(extra_value)}"')
    return "{" + ",".join(pairs) + "}"


def render_prometheus(registry: "MetricsRegistry | None" = None) -> str:
    """Encode a registry in the Prometheus text exposition format (0.0.4)."""
    registry = registry if registry is not None else REGISTRY
    lines: list[str] = []
    for metric in registry.collect():
        help_text = metric.help.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {metric.name} {help_text}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for key, child in metric.children():
            if metric.kind == "histogram":
                with child._lock:
                    counts = child._counts.copy()
                    total_sum = child._sum
                    total_count = child._count
                cumulative = 0
                for bound, count in zip(child._bounds, counts):
                    cumulative += int(count)
                    labels = _merge_labels(
                        metric.labelnames, key, "le", _fmt(float(bound))
                    )
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                labels = _merge_labels(metric.labelnames, key, "le", "+Inf")
                lines.append(f"{metric.name}_bucket{labels} {total_count}")
                plain = _render_labels(metric.labelnames, key)
                lines.append(f"{metric.name}_sum{plain} {_fmt(total_sum)}")
                lines.append(f"{metric.name}_count{plain} {total_count}")
            else:
                labels = _render_labels(metric.labelnames, key)
                lines.append(f"{metric.name}{labels} {_fmt(child.value)}")
    return "\n".join(lines) + "\n"


def partition_metrics(
    registry: "MetricsRegistry | None" = None,
) -> tuple[Metric, Metric, Metric]:
    """Register (or fetch) the partitioned-engine sweep metrics.

    Returns ``(colors_gauge, color_seconds, worker_seconds)``:

    - ``repro_gibbs_partition_colors`` -- gauge, number of conflict-graph
      colors the current sampler sweeps per phase;
    - ``repro_gibbs_partition_color_seconds`` -- histogram, wall time of
      one color barrier-to-barrier;
    - ``repro_gibbs_partition_worker_seconds`` -- histogram, compute time
      of one worker chunk within a color (skew across entries of the
      same color exposes load imbalance).

    Registration is get-or-create, so calling this repeatedly (one
    observer per fit) is safe.
    """
    registry = registry if registry is not None else REGISTRY
    colors_gauge = registry.gauge(
        "repro_gibbs_partition_colors",
        "Conflict-graph colors swept per phase by engine=partitioned",
        labelnames=("phase",),
    )
    color_seconds = registry.histogram(
        "repro_gibbs_partition_color_seconds",
        "Wall time of one conflict-free color sweep (barrier to barrier)",
        labelnames=("phase",),
    )
    worker_seconds = registry.histogram(
        "repro_gibbs_partition_worker_seconds",
        "Compute time of one worker chunk within a color",
        labelnames=("phase",),
    )
    return colors_gauge, color_seconds, worker_seconds


REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide singleton registry used by all instrumentation."""
    return REGISTRY
