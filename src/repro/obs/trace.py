"""Lightweight nested spans, a trace ring buffer, and a slow-request log.

A *trace* is one request's tree of timed spans.  The serving layer opens
a trace per HTTP request with :func:`trace_request`; instrumented code
anywhere below it wraps hot sections in ``with span("foldin.solve"):``.
Spans nest on a thread-local stack, so the instrumented code needs no
plumbing -- it neither knows nor cares whether a trace is active.

When **no** trace is active on the current thread, :func:`span` returns
a shared no-op singleton: the cost is one thread-local attribute read
and a ``None`` check, which is what lets library code (fold-in, journal,
cache) stay instrumented unconditionally.

Completed traces land in a :class:`TraceBuffer`: a bounded ring of the
most recent traces plus a separate bounded log of requests slower than
a threshold, each with its per-span breakdown.  Both are served through
``/healthz`` (counts) and inspectable from tests; nothing is ever
written unless a buffer was installed.

Trace ids are deterministic per process (pid + monotone counter) -- no
randomness, so golden tests stay replayable.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager

_local = threading.local()
_trace_ids = itertools.count(1)


class SpanRecord:
    """One timed section: name, start offset, duration, nested children."""

    __slots__ = ("name", "start", "duration", "children")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.duration = 0.0
        self.children: list[SpanRecord] = []

    def to_dict(self) -> dict:
        """JSON-friendly span dict."""
        out = {"name": self.name, "duration_ms": round(self.duration * 1e3, 3)}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class Trace:
    """One request's span tree plus identity and timing metadata."""

    __slots__ = ("trace_id", "name", "meta", "started_unix", "duration", "spans")

    def __init__(self, name: str, meta: dict | None = None) -> None:
        self.trace_id = f"{os.getpid():x}-{next(_trace_ids):06x}"
        self.name = name
        self.meta = dict(meta) if meta else {}
        self.started_unix = time.time()
        self.duration = 0.0
        self.spans: list[SpanRecord] = []

    def to_dict(self) -> dict:
        """JSON-friendly trace dict with nested spans."""
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_unix": round(self.started_unix, 6),
            "duration_ms": round(self.duration * 1e3, 3),
            "meta": dict(self.meta),
            "spans": [record.to_dict() for record in self.spans],
        }


class _NoopSpan:
    """Shared do-nothing context manager returned when no trace is active."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOOP = _NoopSpan()


class _LiveSpan:
    """Context manager that records one SpanRecord into the active trace."""

    __slots__ = ("_name", "_record", "_t0")

    def __init__(self, name: str) -> None:
        self._name = name

    def __enter__(self) -> "_LiveSpan":
        trace = getattr(_local, "trace", None)
        if trace is None:
            self._record = None
            return self
        self._t0 = time.perf_counter()
        record = SpanRecord(self._name, self._t0 - _local.trace_t0)
        stack = _local.stack
        if stack:
            stack[-1].children.append(record)
        else:
            trace.spans.append(record)
        stack.append(record)
        self._record = record
        return self

    def __exit__(self, *exc) -> None:
        if self._record is None:
            return
        self._record.duration = time.perf_counter() - self._t0
        stack = getattr(_local, "stack", None)
        if stack and stack[-1] is self._record:
            stack.pop()


def span(name: str):
    """Open a named span if a trace is active on this thread, else a no-op."""
    if getattr(_local, "trace", None) is None:
        return _NOOP
    return _LiveSpan(name)


def current_trace() -> Trace | None:
    """The trace active on the calling thread, if any."""
    return getattr(_local, "trace", None)


class TraceBuffer:
    """Bounded ring of recent traces plus a bounded slow-request log."""

    def __init__(
        self,
        capacity: int = 256,
        slow_threshold: float = 0.5,
        slow_capacity: int = 64,
    ) -> None:
        self.slow_threshold = float(slow_threshold)
        self._lock = threading.Lock()
        self._recent: deque[Trace] = deque(maxlen=capacity)
        self._slow: deque[Trace] = deque(maxlen=slow_capacity)
        self._captured = 0
        self._slow_seen = 0

    def add(self, trace: Trace) -> None:
        """Insert a completed trace into the ring."""
        with self._lock:
            self._captured += 1
            self._recent.append(trace)
            if trace.duration >= self.slow_threshold:
                self._slow_seen += 1
                self._slow.append(trace)

    def recent(self) -> list[dict]:
        """Snapshot of the recent-trace ring, as dicts."""
        with self._lock:
            return [trace.to_dict() for trace in self._recent]

    def slow(self) -> list[dict]:
        """Snapshot of the slow-request log, as dicts."""
        with self._lock:
            return [trace.to_dict() for trace in self._slow]

    def stats(self) -> dict:
        """Counts for /healthz: totals and buffer occupancy."""
        with self._lock:
            return {
                "captured": self._captured,
                "buffered": len(self._recent),
                "slow_seen": self._slow_seen,
                "slow_buffered": len(self._slow),
                "slow_threshold_ms": round(self.slow_threshold * 1e3, 3),
            }


@contextmanager
def trace_request(name: str, buffer: TraceBuffer | None = None, meta: dict | None = None):
    """Open a trace for the current thread; deposit it in ``buffer`` on exit.

    Yields the :class:`Trace` so the caller can attach metadata (status
    code, route) before the context closes.  Nested calls are not
    supported -- the inner call would steal the outer stack -- so an
    already-active trace makes this a pass-through that yields the
    existing trace and deposits nothing.
    """
    if getattr(_local, "trace", None) is not None:
        yield _local.trace
        return
    trace = Trace(name, meta)
    _local.trace = trace
    _local.stack = []
    _local.trace_t0 = time.perf_counter()
    try:
        yield trace
    finally:
        trace.duration = time.perf_counter() - _local.trace_t0
        _local.trace = None
        _local.stack = []
        if buffer is not None:
            buffer.add(trace)
