"""Fold-in inference: score new, unseen users against a frozen posterior.

Training (Sec. 4.5) jointly samples every user's assignments.  Serving
cannot re-run that for each query; instead a new user ``u`` is
**folded in**: the fitted posterior is frozen -- neighbour profiles
``theta_j`` (Eq. 10 over the pooled mean counts), the venue-side TL
table ``psi_l``, the fitted power law and the empirical noise models
FR/TR -- and only ``u``'s own assignments are inferred from ``u``'s
relationships.

Instead of re-sampling, the fold-in iterates the *expected* collapsed
Gibbs conditionals to a fixed point (a Rao-Blackwellized mean-field
pass over exactly the blocked conditionals of
:mod:`repro.core.gibbs`):

- following edge to neighbour ``j``:
  ``P(mu=0, x=l | rest) ∝ (1-rho_f) * w_u(l) * K_j(l) / T_u`` with
  ``K_j(l) = sum_e theta_j(e) * beta * d(l, e)**alpha`` precomputed per
  edge, against ``P(mu=1) ∝ rho_f * FR``;
- venue mention ``v``:
  ``P(nu=0, z=l | rest) ∝ (1-rho_t) * w_u(l) * psi_l(v) / T_u`` against
  ``rho_t * TR(v)``;

where ``w_u(l) = phi_u(l) + gamma_u(l)`` and ``T_u = phi_u + sum
gamma_u`` use *expected* counts: each relationship contributes its
location-branch responsibility, split over candidates in proportion to
the joint weights.  Candidacy vectors and ``gamma_u`` are built exactly
as in training (:mod:`repro.core.priors`), so folding in a user that
was *in* the training set reproduces the training-time prior, and --
because the frozen neighbour profiles are the training posterior means
-- converges to the training home prediction (exactly so for labeled
users, whose boosted prior pins the mode; a strongly multimodal
*unlabeled* user can resolve to a different posterior mode than the
chain average, which the tests quantify at a few percent).

Everything is deterministic (no RNG), vectorized over all of a user's
relationships at once, and memoized through an LRU cache keyed by
``(artifact id, user signature)``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace

import numpy as np

from repro.core.model import MLPResult
from repro.core.results import LocationProfile
from repro.core.tweeting import RandomTweetingModel
from repro.data.columnar import compile_world
from repro.geo.gazetteer import normalize_place_name
from repro.serving.cache import LRUCache


@dataclass(frozen=True, slots=True)
class UserSpec:
    """Everything the model may know about a user to be scored.

    ``friends`` are training-set user ids this user follows,
    ``followers`` training-set users following them, ``venues`` venue
    ids mentioned (repeats count, as in training), and
    ``observed_location`` an optional self-reported home (boosted in
    the prior exactly like a labeled training user).
    """

    friends: tuple[int, ...] = ()
    followers: tuple[int, ...] = ()
    venues: tuple[int, ...] = ()
    observed_location: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "friends", tuple(int(v) for v in self.friends))
        object.__setattr__(
            self, "followers", tuple(int(v) for v in self.followers)
        )
        object.__setattr__(self, "venues", tuple(int(v) for v in self.venues))

    @property
    def n_relationships(self) -> int:
        return len(self.friends) + len(self.followers) + len(self.venues)

    def signature(self) -> str:
        """Canonical content hash -- the cache key component.

        Relationship *multisets* are order-insensitive, so permuted
        requests share a cache entry.
        """
        canonical = json.dumps(
            {
                "f": sorted(self.friends),
                "w": sorted(self.followers),
                "v": sorted(self.venues),
                "o": self.observed_location,
            },
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True, slots=True)
class FoldInPrediction:
    """One scored user: profile, home, and solver diagnostics."""

    profile: LocationProfile
    iterations: int
    converged: bool
    from_cache: bool = False

    @property
    def home(self) -> int | None:
        return self.profile.home


@dataclass(frozen=True, slots=True)
class EdgeScore:
    """One candidate assignment pair of a folded-in edge.

    ``x`` is the follower-side location, ``y`` the friend-side, as in
    :class:`~repro.core.results.EdgeExplanation`.
    """

    x: int
    y: int
    probability: float


@dataclass(frozen=True, slots=True)
class FoldInEdgeExplanation:
    """Explanation of one edge between a folded-in user and a neighbour."""

    neighbor: int
    direction: str
    noise_probability: float
    pairs: tuple[EdgeScore, ...]


@dataclass(frozen=True, slots=True)
class _Solution:
    """Internal solver output (cached; rendered lazily)."""

    candidates: np.ndarray
    gamma: np.ndarray
    phi: np.ndarray
    theta: np.ndarray
    iterations: int
    converged: bool


class FoldInPredictor:
    """Online scorer over one frozen fitted posterior.

    Parameters
    ----------
    result:
        A fitted :class:`~repro.core.model.MLPResult` -- typically
        loaded from an artifact
        (:func:`repro.serving.artifacts.load_result`).  Must carry the
        frozen venue table (``result.venue_counts``); results saved by
        this codebase always do.
    artifact_id:
        Identity of the underlying artifact, used in cache keys; pass
        the id returned by ``save_result``/``artifact_metadata``.
    max_iterations, tolerance:
        Fixed-point schedule of the expected-count iteration.
    cache_size:
        Capacity of the LRU prediction cache.
    """

    def __init__(
        self,
        result: MLPResult,
        artifact_id: str = "unsaved",
        max_iterations: int = 200,
        tolerance: float = 1e-9,
        cache_size: int = 1024,
    ):
        if result.venue_counts is None:
            raise ValueError(
                "result has no frozen venue table (venue_counts is None); "
                "refit with this version or re-save the artifact"
            )
        self.result = result
        self.dataset = result.dataset
        self.params = result.params
        self.artifact_id = artifact_id
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.cache = LRUCache(cache_size)

        #: The shared compiled substrate.  When the result came out of a
        #: fit in this process (or an artifact that persisted its world),
        #: the memoized compile returns the existing world -- serving
        #: re-derives nothing.
        world = compile_world(result.dataset)
        self.world = world
        gaz = world.gazetteer
        self.n_locations = world.n_locations
        self.n_venues = world.n_venues
        #: Eq. 1 over every location pair under the *fitted* law
        #: (beta included -- the selector balance needs it).
        self._law_matrix = result.fitted_law(gaz.distance_matrix)
        #: Frozen psi: smoothed venue multinomial per location.
        delta = result.params.delta
        totals = result.venue_counts.sum(axis=1)
        self._psi = (result.venue_counts + delta) / (
            totals + delta * self.n_venues
        )[:, None]
        self._fr_noise = result.params.rho_f * (
            world.n_following / float(world.n_users * world.n_users)
        )
        self._tr_probs = RandomTweetingModel.from_world(
            world
        ).venue_probabilities
        #: Sparse frozen neighbour profiles as parallel arrays.
        self._profile_locs = [
            np.array([loc for loc, _ in p.entries], dtype=np.int64)
            for p in result.profiles
        ]
        self._profile_probs = [
            np.array([pr for _, pr in p.entries], dtype=np.float64)
            for p in result.profiles
        ]

    # -- spec construction -------------------------------------------------

    def spec_for_training_user(self, user_id: int) -> UserSpec:
        """The spec that replays a training user's exact evidence."""
        world = self.world
        if not 0 <= user_id < world.n_users:
            raise ValueError(f"user {user_id} not in the training set")
        observed = int(world.observed_location[user_id])
        return UserSpec(
            friends=tuple(world.friends_of(user_id).tolist()),
            followers=tuple(world.followers_of(user_id).tolist()),
            venues=tuple(world.venues_of(user_id).tolist()),
            observed_location=observed if observed >= 0 else None,
        )

    def resolve_request(self, payload: dict) -> UserSpec:
        """Build a spec from a JSON request body.

        ``{"user_id": n}`` replays training user ``n``; otherwise the
        payload may carry ``friends``, ``followers``, ``venues`` (venue
        ids), ``venue_names`` (resolved through the gazetteer
        vocabulary) and ``observed_location``.  Unknown ids or names
        raise ``ValueError`` with the offending value named.
        """
        if not isinstance(payload, dict):
            raise ValueError("user spec must be a JSON object")
        if "user_id" in payload:
            extras = {
                "friends",
                "followers",
                "venues",
                "venue_names",
                "observed_location",
            } & payload.keys()
            if extras:
                # Silently dropping the extra evidence would score a
                # different user than the caller described.
                raise ValueError(
                    '"user_id" replays a training user and cannot be '
                    f"combined with explicit evidence ({sorted(extras)})"
                )
            return self.spec_for_training_user(int(payload["user_id"]))
        venues = [int(v) for v in payload.get("venues", ())]
        index = self.world.gazetteer.venue_index
        for name in payload.get("venue_names", ()):
            key = normalize_place_name(str(name))
            if key not in index:
                raise ValueError(f"unknown venue name {name!r}")
            venues.append(index[key])
        spec = UserSpec(
            friends=tuple(int(u) for u in payload.get("friends", ())),
            followers=tuple(int(u) for u in payload.get("followers", ())),
            venues=tuple(venues),
            observed_location=(
                int(payload["observed_location"])
                if payload.get("observed_location") is not None
                else None
            ),
        )
        self._validate(spec)
        return spec

    def _validate(self, spec: UserSpec) -> None:
        n = self.world.n_users
        for uid in spec.friends + spec.followers:
            if not 0 <= uid < n:
                raise ValueError(f"unknown neighbour user id {uid}")
        for vid in spec.venues:
            if not 0 <= vid < self.n_venues:
                raise ValueError(f"unknown venue id {vid}")
        if spec.observed_location is not None and not (
            0 <= spec.observed_location < self.n_locations
        ):
            raise ValueError(
                f"unknown observed location {spec.observed_location}"
            )

    # -- prior construction (mirrors core.priors) --------------------------

    def _candidates_for(self, spec: UserSpec) -> tuple[np.ndarray, np.ndarray]:
        """Candidacy vector and gamma prior, exactly as in training.

        Reads the compiled world's user table and referent CSR -- the
        same arrays prior construction used during training, so a
        replayed training user gets byte-identical candidacy.
        """
        params = self.params
        world = self.world
        observed = world.observed_location
        cand_set: set[int] = set()
        if params.use_candidacy:
            if spec.observed_location is not None:
                cand_set.add(spec.observed_location)
            if params.use_following:
                for nb in set(spec.friends) | set(spec.followers):
                    loc = int(observed[nb])
                    if loc >= 0:
                        cand_set.add(loc)
            if params.use_tweeting:
                for vid in set(spec.venues):
                    cand_set.update(world.referents_of(vid).tolist())
        if cand_set:
            cand = np.array(sorted(cand_set), dtype=np.int64)
        else:
            cand = np.arange(self.n_locations, dtype=np.int64)
        gamma = np.full(cand.size, params.tau, dtype=np.float64)
        if spec.observed_location is not None:
            pos = int(np.searchsorted(cand, spec.observed_location))
            if pos < cand.size and cand[pos] == spec.observed_location:
                gamma[pos] += params.boost
        return cand, gamma

    # -- the fold-in solve -------------------------------------------------

    def _relationship_rows(
        self, spec: UserSpec, cand: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Frozen per-relationship weight rows over the candidate set.

        Returns ``(M, noise, loc_factor)``: row ``r`` of ``M`` is the
        location-branch weight of relationship ``r`` at each candidate,
        ``noise[r]`` the absolute noise-branch weight, ``loc_factor[r]``
        the ``(1 - rho)`` prefactor.
        """
        params = self.params
        rows: list[np.ndarray] = []
        noise: list[float] = []
        factor: list[float] = []
        if params.use_following:
            for nb in spec.friends + spec.followers:
                locs = self._profile_locs[nb]
                probs = self._profile_probs[nb]
                rows.append(self._law_matrix[np.ix_(cand, locs)] @ probs)
                noise.append(self._fr_noise)
                factor.append(1.0 - params.rho_f)
        if params.use_tweeting:
            for vid in spec.venues:
                rows.append(self._psi[cand, vid])
                noise.append(params.rho_t * float(self._tr_probs[vid]))
                factor.append(1.0 - params.rho_t)
        if not rows:
            zero = np.zeros(0, dtype=np.float64)
            return np.zeros((0, cand.size)), zero, zero
        return np.stack(rows), np.array(noise), np.array(factor)

    def _solve(self, spec: UserSpec) -> _Solution:
        self._validate(spec)
        cand, gamma = self._candidates_for(spec)
        gamma_sum = float(gamma.sum())
        M, noise, factor = self._relationship_rows(spec, cand)
        phi = np.zeros(cand.size, dtype=np.float64)
        iterations = 0
        converged = True
        if len(M):
            converged = False
            for iterations in range(1, self.max_iterations + 1):
                w = phi + gamma
                total = float(phi.sum()) + gamma_sum
                joint = M * w  # (R, C)
                sums = joint.sum(axis=1)
                p_loc = factor * sums / total
                denom = p_loc + noise
                resp = np.divide(
                    p_loc, denom, out=np.zeros_like(p_loc), where=denom > 0
                )
                scale = np.divide(
                    resp, sums, out=np.zeros_like(sums), where=sums > 0
                )
                phi_new = joint.T @ scale
                drift = float(np.max(np.abs(phi_new - phi)))
                phi = phi_new
                if drift < self.tolerance:
                    converged = True
                    break
        theta = (phi + gamma) / (float(phi.sum()) + gamma_sum)
        return _Solution(
            candidates=cand,
            gamma=gamma,
            phi=phi,
            theta=theta,
            iterations=iterations,
            converged=converged,
        )

    def _render(self, solution: _Solution) -> FoldInPrediction:
        cand = solution.candidates
        theta = solution.theta
        # Same ordering contract as training profiles: descending
        # probability, ties to the lower location id.
        order = np.lexsort((cand, -theta))
        entries = tuple(
            (int(cand[i]), float(theta[i])) for i in order
        )
        return FoldInPrediction(
            profile=LocationProfile(user_id=-1, entries=entries),
            iterations=solution.iterations,
            converged=solution.converged,
        )

    # -- public scoring ----------------------------------------------------

    def predict(self, spec: UserSpec, use_cache: bool = True) -> FoldInPrediction:
        """Score one user; served from the LRU cache when possible."""
        key = (self.artifact_id, spec.signature())
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                return replace(cached, from_cache=True)
        prediction = self._render(self._solve(spec))
        if use_cache:
            self.cache.put(key, prediction)
        return prediction

    def predict_batch(
        self, specs: list[UserSpec] | tuple[UserSpec, ...], use_cache: bool = True
    ) -> list[FoldInPrediction]:
        """Score many users through one call.

        Each spec is solved (or cache-served) in turn -- the
        vectorization lives *inside* a solve, across a user's
        relationships; there is no cross-user batching of the linear
        algebra.  Duplicate specs within the batch hit the cache.
        """
        return [self.predict(spec, use_cache=use_cache) for spec in specs]

    def predict_home(self, spec: UserSpec) -> int | None:
        """Just the argmax home location of a folded-in user."""
        return self.predict(spec).home

    def explain_edge(
        self,
        spec: UserSpec,
        neighbor: int,
        direction: str = "out",
        top: int = 5,
    ) -> FoldInEdgeExplanation:
        """Explain one edge between a folded-in user and a neighbour.

        ``direction="out"`` means the folded-in user follows
        ``neighbor`` (the user is the ``x`` side); ``"in"`` the
        reverse.  Pairs are the top joint assignments of the blocked
        conditional at the solved profile, normalized over the
        location branch.
        """
        if direction not in ("out", "in"):
            raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
        if not 0 <= neighbor < self.world.n_users:
            raise ValueError(f"unknown neighbour user id {neighbor}")
        solution = self._solve(spec)
        cand = solution.candidates
        w = solution.phi + solution.gamma
        total = float(solution.phi.sum()) + float(solution.gamma.sum())
        locs = self._profile_locs[neighbor]
        probs = self._profile_probs[neighbor]
        joint = (
            w[:, None] * probs[None, :] * self._law_matrix[np.ix_(cand, locs)]
        )
        joint_sum = float(joint.sum())
        p_loc = (1.0 - self.params.rho_f) * joint_sum / total
        denom = p_loc + self._fr_noise
        noise_probability = self._fr_noise / denom if denom > 0 else 1.0
        pairs: list[EdgeScore] = []
        if joint_sum > 0:
            flat = joint.ravel() / joint_sum
            order = np.argsort(-flat, kind="stable")[:top]
            n_locs = locs.size
            for idx in order.tolist():
                u_loc = int(cand[idx // n_locs])
                nb_loc = int(locs[idx % n_locs])
                x, y = (
                    (u_loc, nb_loc) if direction == "out" else (nb_loc, u_loc)
                )
                pairs.append(
                    EdgeScore(x=x, y=y, probability=float(flat[idx]))
                )
        return FoldInEdgeExplanation(
            neighbor=neighbor,
            direction=direction,
            noise_probability=noise_probability,
            pairs=tuple(pairs),
        )


def prediction_payload(
    prediction: FoldInPrediction, gazetteer, top_k: int = 3
) -> dict:
    """JSON-ready rendering of a prediction (server + CLI share this)."""
    home = prediction.home
    return {
        "home": home,
        "home_name": gazetteer.by_id(home).name if home is not None else None,
        "profile": [
            {
                "location": loc,
                "name": gazetteer.by_id(loc).name,
                "probability": prob,
            }
            for loc, prob in prediction.profile.entries[:top_k]
        ],
        "iterations": prediction.iterations,
        "converged": prediction.converged,
        "cached": prediction.from_cache,
    }
