"""Fold-in inference: score new, unseen users against a frozen posterior.

Training (Sec. 4.5) jointly samples every user's assignments.  Serving
cannot re-run that for each query; instead a new user ``u`` is
**folded in**: the fitted posterior is frozen -- neighbour profiles
``theta_j`` (Eq. 10 over the pooled mean counts), the venue-side TL
table ``psi_l``, the fitted power law and the empirical noise models
FR/TR -- and only ``u``'s own assignments are inferred from ``u``'s
relationships.

Instead of re-sampling, the fold-in iterates the *expected* collapsed
Gibbs conditionals to a fixed point (a Rao-Blackwellized mean-field
pass over exactly the blocked conditionals of
:mod:`repro.core.gibbs`):

- following edge to neighbour ``j``:
  ``P(mu=0, x=l | rest) ∝ (1-rho_f) * w_u(l) * K_j(l) / T_u`` with
  ``K_j(l) = sum_e theta_j(e) * beta * d(l, e)**alpha`` precomputed per
  edge, against ``P(mu=1) ∝ rho_f * FR``;
- venue mention ``v``:
  ``P(nu=0, z=l | rest) ∝ (1-rho_t) * w_u(l) * psi_l(v) / T_u`` against
  ``rho_t * TR(v)``;

where ``w_u(l) = phi_u(l) + gamma_u(l)`` and ``T_u = phi_u + sum
gamma_u`` use *expected* counts: each relationship contributes its
location-branch responsibility, split over candidates in proportion to
the joint weights.  Candidacy vectors and ``gamma_u`` are built exactly
as in training (:mod:`repro.core.priors`), so folding in a user that
was *in* the training set reproduces the training-time prior, and --
because the frozen neighbour profiles are the training posterior means
-- converges to the training home prediction (exactly so for labeled
users, whose boosted prior pins the mode; a strongly multimodal
*unlabeled* user can resolve to a different posterior mode than the
chain average, which the tests quantify at a few percent).

Everything is deterministic (no RNG), vectorized over all of a user's
relationships at once, and memoized through an LRU cache keyed by
``(artifact id, user signature)``.

**Reduction discipline.**  Every floating-point reduction in the solver
goes through :func:`segment_sum`, which accumulates strictly in input
order (``np.bincount`` semantics).  That is a deliberate contract with
the population-scale batch engine (:mod:`repro.serving.batch`): the
batch path runs the same fixed point for thousands of users at once
over flat arenas, and because both paths reduce in the identical
element order, a batch solve is **bit-identical** per user to a
sequential solve -- numpy's pairwise ``sum`` or BLAS ``@`` would give
results that differ in the last ulp and break that golden contract.
``predict_batch`` dedupes specs by signature, serves what it can from
the cache in bulk, and hands any remaining block of
``>= batch_threshold`` unique specs to the batch engine.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.model import MLPResult
from repro.core.results import LocationProfile
from repro.core.tweeting import RandomTweetingModel
from repro.data.columnar import compile_world
from repro.geo.gazetteer import normalize_place_name
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.serving.cache import LRUCache

#: Fold-in + ingest instrumentation (read-only: timings and counts,
#: never inputs to the solve).  Children are resolved once at import so
#: the hot path pays a single increment per event.
_REG = obs_metrics.get_registry()
SOLVE_SECONDS = _REG.histogram(
    "repro_foldin_solve_seconds",
    "Wall time of fold-in fixed-point solves "
    "(per user sequentially, per chunk for the batch path)",
    labelnames=("path",),
)
SOLVES_TOTAL = _REG.counter(
    "repro_foldin_solves_total",
    "Fold-in fixed-point solves performed (cache hits excluded)",
    labelnames=("path",),
)
ITERATIONS_TOTAL = _REG.counter(
    "repro_foldin_iterations_total",
    "Fixed-point iterations summed over all fold-in solves",
    labelnames=("path",),
)
_SEQ_SECONDS = SOLVE_SECONDS.labels(path="sequential")
_SEQ_SOLVES = SOLVES_TOTAL.labels(path="sequential")
_SEQ_ITERATIONS = ITERATIONS_TOTAL.labels(path="sequential")
INGEST_DELTAS = _REG.counter(
    "repro_ingest_deltas_total",
    "World deltas applied to the served world",
)
INGEST_SECONDS = _REG.histogram(
    "repro_ingest_apply_seconds",
    "Wall time to splice one delta into the served world "
    "(including cache invalidation)",
)
INGEST_TOUCHED = _REG.counter(
    "repro_ingest_touched_users_total",
    "Users touched by applied world deltas",
)

#: ``predict_batch`` hands off to the vectorized batch engine once at
#: least this many unique, cache-missing specs need solving; below it
#: the per-user loop wins (the arena lowering has fixed overhead).
BATCH_CROSSOVER = 32


def segment_sum(values: np.ndarray, bins: np.ndarray, n: int) -> np.ndarray:
    """Deterministic per-bin sum: accumulates strictly in input order.

    ``np.bincount`` adds ``values[i]`` into ``out[bins[i]]`` one element
    at a time, left to right, so each bin's total depends only on its
    own values *in their input order* -- never on what other bins (or,
    in the batch engine, other users) contribute.  Used for the
    scattered reduction (``phi``'s per-candidate accumulation across
    relationship rows); see :func:`contiguous_segment_sum` for the
    contiguous ones.
    """
    return np.bincount(bins, weights=values, minlength=n)


def contiguous_segment_sum(values: np.ndarray, starts) -> np.ndarray:
    """Per-segment sum over contiguous, non-empty segments.

    A thin wrapper over ``np.add.reduceat`` that exists so the
    sequential solver and the batch engine reduce through the *same*
    primitive: whatever summation algorithm reduceat applies to a
    segment, both paths apply it to per-user-identical data, keeping
    batch results bit-identical to sequential ones.  (Reduceat is not
    interchangeable with :func:`segment_sum` -- it may sum a segment
    pairwise -- which is exactly why both paths must agree on which
    primitive covers which reduction.)  Callers guarantee non-empty
    segments; reduceat would silently misread empty ones.
    """
    return np.add.reduceat(values, starts)


@dataclass(frozen=True, slots=True)
class UserSpec:
    """Everything the model may know about a user to be scored.

    ``friends`` are training-set user ids this user follows,
    ``followers`` training-set users following them, ``venues`` venue
    ids mentioned (repeats count, as in training), and
    ``observed_location`` an optional self-reported home (boosted in
    the prior exactly like a labeled training user).
    """

    friends: tuple[int, ...] = ()
    followers: tuple[int, ...] = ()
    venues: tuple[int, ...] = ()
    observed_location: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "friends", tuple(int(v) for v in self.friends))
        object.__setattr__(
            self, "followers", tuple(int(v) for v in self.followers)
        )
        object.__setattr__(self, "venues", tuple(int(v) for v in self.venues))

    @property
    def n_relationships(self) -> int:
        """Total evidence edges in the spec."""
        return len(self.friends) + len(self.followers) + len(self.venues)

    def signature(self) -> str:
        """Canonical content hash -- the cache key component.

        Relationship *multisets* are order-insensitive, so permuted
        requests share a cache entry.
        """
        canonical = json.dumps(
            {
                "f": sorted(self.friends),
                "w": sorted(self.followers),
                "v": sorted(self.venues),
                "o": self.observed_location,
            },
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True, slots=True)
class FoldInPrediction:
    """One scored user: profile, home, and solver diagnostics."""

    profile: LocationProfile
    iterations: int
    converged: bool
    from_cache: bool = False

    @property
    def home(self) -> int | None:
        """Predicted home location id, or ``None`` for an empty profile."""
        return self.profile.home

    @property
    def confidence(self) -> float:
        """Posterior mass on the predicted home (0.0 for an empty profile).

        The projection hook of the prediction index
        (:mod:`repro.query.index`): one scalar per user that confidence
        filters (``min_confidence=``) compare against.
        """
        entries = self.profile.entries
        return float(entries[0][1]) if entries else 0.0

    def top_entries(self, k: int) -> tuple[tuple[int, float], ...]:
        """The ``k`` most probable ``(location, probability)`` pairs.

        Descending probability, ties broken by location id (the
        :class:`~repro.core.results.LocationProfile` order), so the
        projected alternates are deterministic.
        """
        return self.profile.entries[:k]


@dataclass(frozen=True, slots=True)
class EdgeScore:
    """One candidate assignment pair of a folded-in edge.

    ``x`` is the follower-side location, ``y`` the friend-side, as in
    :class:`~repro.core.results.EdgeExplanation`.
    """

    x: int
    y: int
    probability: float


@dataclass(frozen=True, slots=True)
class FoldInEdgeExplanation:
    """Explanation of one edge between a folded-in user and a neighbour."""

    neighbor: int
    direction: str
    noise_probability: float
    pairs: tuple[EdgeScore, ...]


@dataclass(frozen=True, slots=True)
class _Solution:
    """Internal solver output (cached; rendered lazily)."""

    candidates: np.ndarray
    gamma: np.ndarray
    phi: np.ndarray
    theta: np.ndarray
    iterations: int
    converged: bool


class FoldInPredictor:
    """Online scorer over one frozen fitted posterior.

    Parameters
    ----------
    result:
        A fitted :class:`~repro.core.model.MLPResult` -- typically
        loaded from an artifact
        (:func:`repro.serving.artifacts.load_result`).  Must carry the
        frozen venue table (``result.venue_counts``); results saved by
        this codebase always do.
    artifact_id:
        Identity of the underlying artifact, used in cache keys; pass
        the id returned by ``save_result``/``artifact_metadata``.
    max_iterations, tolerance:
        Fixed-point schedule of the expected-count iteration.
    cache_size:
        Capacity of the LRU prediction cache.
    batch_threshold:
        ``predict_batch`` delegates to the vectorized batch engine
        (:mod:`repro.serving.batch`) once at least this many unique,
        cache-missing specs need solving.
    world:
        The *evidence* world to serve against -- the training world
        grown by ingested :class:`~repro.data.delta.WorldDelta`
        batches (or a from-scratch recompile of the same final
        dataset).  Defaults to the training world itself.  The frozen
        posterior tables (neighbour profiles, psi, the FR/TR noise
        models, the fitted law) always come from the *training* world:
        they are model artifacts, fixed at fit time; the evidence
        world only supplies candidacy labels, adjacency and spec
        replay.  Users beyond the training set carry an empty frozen
        profile (their edges contribute only the noise branch until a
        refit), but their observed labels feed candidacy -- which is
        what makes fold-in of fresh arrivals meaningful.
    """

    def __init__(
        self,
        result: MLPResult,
        artifact_id: str = "unsaved",
        max_iterations: int = 200,
        tolerance: float = 1e-9,
        cache_size: int = 1024,
        batch_threshold: int = BATCH_CROSSOVER,
        world=None,
    ):
        if result.venue_counts is None:
            raise ValueError(
                "result has no frozen venue table (venue_counts is None); "
                "refit with this version or re-save the artifact"
            )
        self.result = result
        self.dataset = result.dataset
        self.params = result.params
        self.artifact_id = artifact_id
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.cache = LRUCache(cache_size)
        self.batch_threshold = batch_threshold
        #: Fixed-point solves actually performed (cache hits and
        #: in-batch duplicates excluded) -- observability for tests,
        #: benchmarks and capacity planning.  Guarded by ``_lock``
        #: together with the kernel-row cache and the lazy batch
        #: engine: server handler threads share this predictor.
        self.solve_count = 0
        self._lock = threading.Lock()
        self._batch_engine = None
        #: Per-neighbour kernel rows ``K_j(l) = sum_e theta_j(e) *
        #: law(l, e)`` over all locations, computed once per neighbour
        #: on first use and shared verbatim by the sequential solver
        #: and the batch engine (one array, so the two paths cannot
        #: disagree).  Bounded: beyond ``_kernel_cache_limit`` entries
        #: (~256 MB of rows) new rows are computed transiently instead
        #: of stored, so a long-running server on a huge artifact
        #: cannot grow toward an (n_users, n_locations) table.
        self._kernel_rows: dict[int, np.ndarray] = {}

        #: The shared compiled substrate.  When the result came out of a
        #: fit in this process (or an artifact that persisted its world),
        #: the memoized compile returns the existing world -- serving
        #: re-derives nothing.
        train_world = compile_world(result.dataset)
        #: Users with a frozen posterior profile; anyone beyond this
        #: (ingested after the fit) folds in with an empty profile.
        self._n_train = train_world.n_users
        self._train_world = train_world
        if world is None:
            world = train_world
        else:
            self._check_evidence_world(world)
        #: The live evidence world; swapped atomically by
        #: :meth:`refresh` as deltas stream in, or by
        #: :meth:`attach_world` when a reader adopts a generation
        #: published through a :class:`~repro.serving.store.WorldStore`.
        self.world = world
        gaz = train_world.gazetteer
        self.n_locations = train_world.n_locations
        self.n_venues = train_world.n_venues
        #: Cache at most ~256 MB of kernel rows, whatever the
        #: gazetteer size (each row is ``n_locations`` float64).
        self._kernel_cache_limit = max(
            1, (32 << 20) // max(1, self.n_locations)
        )
        #: Eq. 1 over every location pair under the *fitted* law
        #: (beta included -- the selector balance needs it).
        self._law_matrix = result.fitted_law(gaz.distance_matrix)
        #: Frozen psi: smoothed venue multinomial per location.
        delta = result.params.delta
        totals = result.venue_counts.sum(axis=1)
        self._psi = (result.venue_counts + delta) / (
            totals + delta * self.n_venues
        )[:, None]
        # FR/TR are empirical models of the *training* corpus, frozen
        # with the rest of the posterior -- ingested traffic must not
        # silently reweight every cached prediction's noise branch.
        self._fr_noise = result.params.rho_f * (
            train_world.n_following
            / float(train_world.n_users * train_world.n_users)
        )
        self._tr_probs = RandomTweetingModel.from_world(
            train_world
        ).venue_probabilities
        #: Sparse frozen neighbour profiles as one CSR arena: the
        #: sequential solver slices it per neighbour, the batch engine
        #: gathers straight from the flat arrays.
        counts = np.fromiter(
            (len(p.entries) for p in result.profiles),
            dtype=np.int64,
            count=len(result.profiles),
        )
        self._prof_indptr = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=self._prof_indptr[1:])
        self._prof_locs = np.fromiter(
            (loc for p in result.profiles for loc, _ in p.entries),
            dtype=np.int64,
            count=int(self._prof_indptr[-1]),
        )
        self._prof_probs = np.fromiter(
            (pr for p in result.profiles for _, pr in p.entries),
            dtype=np.float64,
            count=int(self._prof_indptr[-1]),
        )

    # -- spec construction -------------------------------------------------

    def spec_for_training_user(self, user_id: int) -> UserSpec:
        """The spec replaying a known user's exact world evidence.

        Covers ingested users too: a user added by a delta replays the
        friends/followers/venues the delta gave them.
        """
        world = self.world
        if not 0 <= user_id < world.n_users:
            raise ValueError(f"user {user_id} not in the served world")
        observed = int(world.observed_location[user_id])
        return UserSpec(
            friends=tuple(world.friends_of(user_id).tolist()),
            followers=tuple(world.followers_of(user_id).tolist()),
            venues=tuple(world.venues_of(user_id).tolist()),
            observed_location=observed if observed >= 0 else None,
        )

    def resolve_request(self, payload: dict) -> UserSpec:
        """Build a spec from a JSON request body.

        ``{"user_id": n}`` replays training user ``n``; otherwise the
        payload may carry ``friends``, ``followers``, ``venues`` (venue
        ids), ``venue_names`` (resolved through the gazetteer
        vocabulary) and ``observed_location``.  Unknown ids or names
        raise ``ValueError`` with the offending value named.
        """
        if not isinstance(payload, dict):
            raise ValueError("user spec must be a JSON object")
        if "user_id" in payload:
            extras = {
                "friends",
                "followers",
                "venues",
                "venue_names",
                "observed_location",
            } & payload.keys()
            if extras:
                # Silently dropping the extra evidence would score a
                # different user than the caller described.
                raise ValueError(
                    '"user_id" replays a training user and cannot be '
                    f"combined with explicit evidence ({sorted(extras)})"
                )
            return self.spec_for_training_user(int(payload["user_id"]))
        venues = [int(v) for v in payload.get("venues", ())]
        index = self.world.gazetteer.venue_index
        for name in payload.get("venue_names", ()):
            key = normalize_place_name(str(name))
            if key not in index:
                raise ValueError(f"unknown venue name {name!r}")
            venues.append(index[key])
        spec = UserSpec(
            friends=tuple(int(u) for u in payload.get("friends", ())),
            followers=tuple(int(u) for u in payload.get("followers", ())),
            venues=tuple(venues),
            observed_location=(
                int(payload["observed_location"])
                if payload.get("observed_location") is not None
                else None
            ),
        )
        self._validate(spec)
        return spec

    def _validate(self, spec: UserSpec, world=None) -> None:
        n = (world if world is not None else self.world).n_users
        for uid in spec.friends + spec.followers:
            if not 0 <= uid < n:
                raise ValueError(f"unknown neighbour user id {uid}")
        for vid in spec.venues:
            if not 0 <= vid < self.n_venues:
                raise ValueError(f"unknown venue id {vid}")
        if spec.observed_location is not None and not (
            0 <= spec.observed_location < self.n_locations
        ):
            raise ValueError(
                f"unknown observed location {spec.observed_location}"
            )

    # -- prior construction (mirrors core.priors) --------------------------

    def _candidates_for(
        self, spec: UserSpec, world=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Candidacy vector and gamma prior, exactly as in training.

        Reads the compiled world's user table and referent CSR -- the
        same arrays prior construction used during training, so a
        replayed training user gets byte-identical candidacy.
        """
        params = self.params
        if world is None:
            world = self.world
        observed = world.observed_location
        cand_set: set[int] = set()
        if params.use_candidacy:
            if spec.observed_location is not None:
                cand_set.add(spec.observed_location)
            if params.use_following:
                for nb in set(spec.friends) | set(spec.followers):
                    loc = int(observed[nb])
                    if loc >= 0:
                        cand_set.add(loc)
            if params.use_tweeting:
                for vid in set(spec.venues):
                    cand_set.update(world.referents_of(vid).tolist())
        if cand_set:
            cand = np.array(sorted(cand_set), dtype=np.int64)
        else:
            cand = np.arange(self.n_locations, dtype=np.int64)
        gamma = np.full(cand.size, params.tau, dtype=np.float64)
        if spec.observed_location is not None:
            pos = int(np.searchsorted(cand, spec.observed_location))
            if pos < cand.size and cand[pos] == spec.observed_location:
                gamma[pos] += params.boost
        return cand, gamma

    # -- the fold-in solve -------------------------------------------------

    def _profile_of(self, user_id: int) -> tuple[np.ndarray, np.ndarray]:
        """One neighbour's frozen sparse profile (CSR slice views).

        Users ingested after the fit have no frozen posterior: their
        profile is empty, so edges to them contribute only the noise
        branch (``K_j = 0``) until a refit produces a new artifact.
        """
        if user_id >= self._n_train:
            return self._prof_locs[:0], self._prof_probs[:0]
        start, end = self._prof_indptr[user_id], self._prof_indptr[user_id + 1]
        return self._prof_locs[start:end], self._prof_probs[start:end]

    def _kernel_row(self, neighbor: int) -> np.ndarray:
        """``K_j`` over every location, computed once per neighbour.

        Both the sequential solver and the batch engine read rows from
        this one cache, so the two paths see literally the same floats
        -- the cornerstone of the batch path's bit-identity guarantee.
        (A cache overflow recomputes the identical deterministic
        expression, so results cannot change; only time is lost.)
        First writer wins under the lock, so concurrent handler
        threads converge on a single shared array per neighbour.
        """
        row = self._kernel_rows.get(neighbor)
        if row is None:
            locs, probs = self._profile_of(neighbor)
            row = self._law_matrix[:, locs] @ probs
            with self._lock:
                if len(self._kernel_rows) < self._kernel_cache_limit:
                    row = self._kernel_rows.setdefault(neighbor, row)
        return row

    def _relationship_rows(
        self, spec: UserSpec, cand: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Frozen per-relationship weight rows over the candidate set.

        Returns ``(M, noise, loc_factor)``: row ``r`` of ``M`` is the
        location-branch weight of relationship ``r`` at each candidate,
        ``noise[r]`` the absolute noise-branch weight, ``loc_factor[r]``
        the ``(1 - rho)`` prefactor.  Rows are gathers -- from the
        shared per-neighbour kernel cache for following edges, from the
        frozen ``psi`` for venue mentions -- so the batch engine's
        flat-arena construction reproduces them bit for bit.
        """
        params = self.params
        rows: list[np.ndarray] = []
        noise: list[float] = []
        factor: list[float] = []
        if params.use_following:
            for nb in spec.friends + spec.followers:
                rows.append(self._kernel_row(nb)[cand])
                noise.append(self._fr_noise)
                factor.append(1.0 - params.rho_f)
        if params.use_tweeting:
            for vid in spec.venues:
                rows.append(self._psi[cand, vid])
                noise.append(params.rho_t * float(self._tr_probs[vid]))
                factor.append(1.0 - params.rho_t)
        if not rows:
            zero = np.zeros(0, dtype=np.float64)
            return np.zeros((0, cand.size)), zero, zero
        return np.stack(rows), np.array(noise), np.array(factor)

    def _solve(self, spec: UserSpec, world=None) -> _Solution:
        """Instrumented sequential solve: timing + iteration accounting.

        The numerical work lives in :meth:`_solve_exact`; this wrapper
        only observes it, so instrumentation cannot perturb the result.
        """
        t0 = time.perf_counter()
        with span("foldin.solve"):
            solution = self._solve_exact(spec, world)
        _SEQ_SECONDS.observe(time.perf_counter() - t0)
        _SEQ_SOLVES.inc()
        _SEQ_ITERATIONS.inc(solution.iterations)
        return solution

    def _solve_exact(self, spec: UserSpec, world=None) -> _Solution:
        # One world snapshot per solve: a concurrent refresh() swaps
        # self.world atomically, and mixing two generations inside one
        # solve would validate against one world and build candidacy
        # from another.  Callers that cache pass the snapshot in, so
        # they can refuse to cache a result solved against a world that
        # was refreshed away mid-solve.
        if world is None:
            world = self.world
        self._validate(spec, world)
        cand, gamma = self._candidates_for(spec, world)
        n_cand = cand.size
        one_segment = np.zeros(1, dtype=np.intp)
        gamma_sum = float(contiguous_segment_sum(gamma, one_segment)[0])
        M, noise, factor = self._relationship_rows(spec, cand)
        phi = np.zeros(n_cand, dtype=np.float64)
        iterations = 0
        converged = True
        if len(M):
            n_rel = M.shape[0]
            row_starts = np.arange(0, n_rel * n_cand, n_cand, dtype=np.intp)
            cand_of_cell = np.tile(np.arange(n_cand), n_rel)
            converged = False
            for iterations in range(1, self.max_iterations + 1):
                w = phi + gamma
                total = (
                    float(contiguous_segment_sum(phi, one_segment)[0])
                    + gamma_sum
                )
                joint = M * w  # (R, C)
                sums = contiguous_segment_sum(joint.ravel(), row_starts)
                p_loc = factor * sums / total
                denom = p_loc + noise
                resp = np.divide(
                    p_loc, denom, out=np.zeros_like(p_loc), where=denom > 0
                )
                scale = np.divide(
                    resp, sums, out=np.zeros_like(sums), where=sums > 0
                )
                phi_new = segment_sum(
                    (joint * scale[:, None]).ravel(), cand_of_cell, n_cand
                )
                drift = float(np.max(np.abs(phi_new - phi)))
                phi = phi_new
                if drift < self.tolerance:
                    converged = True
                    break
        theta = (phi + gamma) / (
            float(contiguous_segment_sum(phi, one_segment)[0]) + gamma_sum
        )
        return _Solution(
            candidates=cand,
            gamma=gamma,
            phi=phi,
            theta=theta,
            iterations=iterations,
            converged=converged,
        )

    def _render(self, solution: _Solution) -> FoldInPrediction:
        cand = solution.candidates
        theta = solution.theta
        # Same ordering contract as training profiles: descending
        # probability, ties to the lower location id.
        order = np.lexsort((cand, -theta))
        entries = tuple(
            (int(cand[i]), float(theta[i])) for i in order
        )
        return FoldInPrediction(
            profile=LocationProfile(user_id=-1, entries=entries),
            iterations=solution.iterations,
            converged=solution.converged,
        )

    # -- public scoring ----------------------------------------------------

    @property
    def batch_engine(self):
        """The lazily-built vectorized batch engine (shared arenas)."""
        if self._batch_engine is None:
            from repro.serving.batch import BatchFoldInEngine

            with self._lock:
                if self._batch_engine is None:
                    self._batch_engine = BatchFoldInEngine(self)
        return self._batch_engine

    @staticmethod
    def _spec_tags(spec: UserSpec) -> tuple[int, ...]:
        """Cache-invalidation tags: the neighbours a prediction read.

        A cached prediction depends on the served world only through
        its neighbours' *observed labels* (candidacy); profiles, psi
        and the noise models are frozen.  Tagging entries with their
        neighbour ids lets :meth:`refresh` drop exactly the
        predictions a label update staled -- nothing else.
        """
        return tuple(set(spec.friends) | set(spec.followers))

    def _cache_put(self, items, world) -> None:
        """Cache solved predictions -- unless the world moved mid-solve.

        Checked under the predictor lock, against which :meth:`refresh`
        serializes its swap + tag invalidation: a prediction solved
        over a world that was refreshed away must not land *after* the
        refresh's invalidation pass, or it would serve stale until the
        next touching delta.  Dropping it is cheap (the next request
        re-solves against the live world).
        """
        with self._lock:
            if self.world is world:
                self.cache.put_many(items)

    def predict(self, spec: UserSpec, use_cache: bool = True) -> FoldInPrediction:
        """Score one user; served from the LRU cache when possible."""
        key = (self.artifact_id, spec.signature())
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                return replace(cached, from_cache=True)
        with self._lock:
            self.solve_count += 1
        world = self.world
        prediction = self._render(self._solve(spec, world))
        if use_cache:
            self._cache_put([(key, prediction, self._spec_tags(spec))], world)
        return prediction

    def predict_batch(
        self, specs: list[UserSpec] | tuple[UserSpec, ...], use_cache: bool = True
    ) -> list[FoldInPrediction]:
        """Score many users through one call.

        Specs are deduplicated by signature first (a batch of k
        identical specs costs exactly one solve, cache on or off), then
        looked up in the LRU cache in bulk; whatever remains is solved
        -- through the vectorized batch engine when at least
        ``batch_threshold`` specs need solving (one numpy pass over a
        flat arena, bit-identical per user to the sequential path), or
        one ``_solve`` at a time below that.  Results fan back out to
        the request order; with the cache enabled, later duplicates of
        a spec solved earlier in the same batch report
        ``from_cache=True`` exactly as they would under sequential
        ``predict`` calls.
        """
        specs = list(specs)
        if not specs:
            return []
        keys = [(self.artifact_id, spec.signature()) for spec in specs]
        first_occurrence: dict[tuple[str, str], int] = {}
        for index, key in enumerate(keys):
            first_occurrence.setdefault(key, index)
        unique_indices = sorted(first_occurrence.values())
        cached = (
            self.cache.get_many([keys[i] for i in unique_indices])
            if use_cache
            else {}
        )
        miss_indices = [i for i in unique_indices if keys[i] not in cached]
        rendered: dict[tuple[str, str], FoldInPrediction] = {}
        if miss_indices:
            world = self.world
            to_solve = [specs[i] for i in miss_indices]
            if len(to_solve) >= self.batch_threshold:
                solutions = self.batch_engine.solve(to_solve, world)
            else:
                solutions = [self._solve(spec, world) for spec in to_solve]
            with self._lock:
                self.solve_count += len(to_solve)
            for index, solution in zip(miss_indices, solutions):
                rendered[keys[index]] = self._render(solution)
            if use_cache:
                self._cache_put(
                    [
                        (keys[i], rendered[keys[i]], self._spec_tags(specs[i]))
                        for i in miss_indices
                    ],
                    world,
                )
        results: list[FoldInPrediction] = []
        for index, key in enumerate(keys):
            if key in cached:
                results.append(replace(cached[key], from_cache=True))
            elif use_cache and first_occurrence[key] != index:
                results.append(replace(rendered[key], from_cache=True))
            else:
                results.append(rendered[key])
        return results

    def predict_home(self, spec: UserSpec) -> int | None:
        """Just the argmax home location of a folded-in user."""
        return self.predict(spec).home

    def clear_cache(self, reset_stats: bool = True) -> None:
        """Drop every cached prediction, by default zeroing counters too.

        Reload flows (a new artifact generation served behind the same
        ``/healthz``) call this so the reported hit rate describes the
        *current* artifact, not the union of everything ever served;
        pass ``reset_stats=False`` to keep the lifetime counters.
        """
        self.cache.clear()
        if reset_stats:
            self.cache.reset_stats()

    def _check_evidence_world(self, world) -> None:
        """Reject an evidence world this posterior cannot serve against."""
        train_world = self._train_world
        if world.gazetteer is not train_world.gazetteer and (
            world.n_locations != train_world.n_locations
            or world.n_venues != train_world.n_venues
            # Same sizes is not same id space: two regional gazetteers
            # of equal size would silently cross-index the law matrix
            # and psi.  Vocabulary equality pins the venue/location id
            # mapping itself (cheap: a one-time list compare).
            or list(world.gazetteer.venue_vocabulary)
            != list(train_world.gazetteer.venue_vocabulary)
        ):
            raise ValueError(
                "evidence world was built over a different gazetteer "
                "than the fitted result"
            )
        if world.n_users < train_world.n_users:
            raise ValueError(
                f"evidence world has {world.n_users} users but the "
                f"result was trained on {train_world.n_users}; serving "
                "worlds may only grow"
            )

    def attach_world(self, world, invalidate_users=None):
        """RCU reader-side swap: adopt an externally published world.

        The multi-process counterpart of :meth:`refresh`: a *writer*
        applied the delta elsewhere and published the result (e.g.
        through a :class:`~repro.serving.store.WorldStore`); this
        reader only swaps its served world to the new generation.  The
        swap and the cache invalidation happen atomically under the
        predictor lock, exactly like :meth:`refresh`, so the cache
        policy is identical to the single-process path:

        - ``invalidate_users=None`` (provenance unknown -- e.g. the
          reader skipped generations whose metadata is gone) drops the
          whole prediction cache;
        - otherwise only predictions tagged with one of the given
          neighbour ids are invalidated -- pass the union of
          ``label_users`` over every generation being skipped across.

        The kernel-row cache survives either way: frozen posterior
        tables do not depend on the evidence world.  Returns ``world``.
        """
        self._check_evidence_world(world)
        with self._lock:
            self.world = world
            if invalidate_users is None:
                self.cache.clear()
            else:
                users = [int(u) for u in invalidate_users]
                if users:
                    self.cache.invalidate_tags(users)
        return world

    def refresh(self, delta):
        """Apply a :class:`~repro.data.delta.WorldDelta` to the served world.

        Splices the delta into the evidence world in
        O(|delta| + touched rows) and re-attaches it -- no artifact
        reload, no recompile, no cold start.  Returns the new
        :class:`~repro.data.columnar.ColumnarWorld` (its
        ``content_hash`` is the chained ingest hash and ``generation``
        advanced by one).

        Cache policy is surgical, not wholesale: the frozen posterior
        tables are untouched by ingest, so the kernel-row cache stays
        valid verbatim, and only cached predictions *tagged* with a
        label-updated neighbour are invalidated (new users and new
        edges produce new signatures, which miss naturally).
        Concurrent refreshes serialize on the predictor lock, and the
        swap + invalidation happen atomically under it: an in-flight
        solve keeps the world snapshot it started with, and its result
        is cached only if that snapshot is still the served world
        (:meth:`_cache_put`), so a stale prediction can never land
        *after* the invalidation pass.
        """
        from repro.data.delta import apply_delta

        t0 = time.perf_counter()
        with span("ingest.apply"):
            with self._lock:
                new_world = apply_delta(self.world, delta)
                self.world = new_world
                if delta.label_users.size:
                    self.cache.invalidate_tags(
                        int(uid) for uid in delta.label_users
                    )
        INGEST_SECONDS.observe(time.perf_counter() - t0)
        INGEST_DELTAS.inc()
        INGEST_TOUCHED.inc(int(new_world.delta_log[-1].touched_users.size))
        return new_world

    def explain_edge(
        self,
        spec: UserSpec,
        neighbor: int,
        direction: str = "out",
        top: int = 5,
    ) -> FoldInEdgeExplanation:
        """Explain one edge between a folded-in user and a neighbour.

        ``direction="out"`` means the folded-in user follows
        ``neighbor`` (the user is the ``x`` side); ``"in"`` the
        reverse.  Pairs are the top joint assignments of the blocked
        conditional at the solved profile, normalized over the
        location branch.
        """
        if direction not in ("out", "in"):
            raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
        if not 0 <= neighbor < self.world.n_users:
            raise ValueError(f"unknown neighbour user id {neighbor}")
        solution = self._solve(spec)
        cand = solution.candidates
        w = solution.phi + solution.gamma
        total = float(solution.phi.sum()) + float(solution.gamma.sum())
        locs, probs = self._profile_of(neighbor)
        joint = (
            w[:, None] * probs[None, :] * self._law_matrix[np.ix_(cand, locs)]
        )
        joint_sum = float(joint.sum())
        p_loc = (1.0 - self.params.rho_f) * joint_sum / total
        denom = p_loc + self._fr_noise
        noise_probability = self._fr_noise / denom if denom > 0 else 1.0
        pairs: list[EdgeScore] = []
        if joint_sum > 0:
            flat = joint.ravel() / joint_sum
            order = np.argsort(-flat, kind="stable")[:top]
            n_locs = locs.size
            for idx in order.tolist():
                u_loc = int(cand[idx // n_locs])
                nb_loc = int(locs[idx % n_locs])
                x, y = (
                    (u_loc, nb_loc) if direction == "out" else (nb_loc, u_loc)
                )
                pairs.append(
                    EdgeScore(x=x, y=y, probability=float(flat[idx]))
                )
        return FoldInEdgeExplanation(
            neighbor=neighbor,
            direction=direction,
            noise_probability=noise_probability,
            pairs=tuple(pairs),
        )


def prediction_payload(
    prediction: FoldInPrediction, gazetteer, top_k: int = 3
) -> dict:
    """JSON-ready rendering of a prediction (server + CLI share this)."""
    home = prediction.home
    return {
        "home": home,
        "home_name": gazetteer.by_id(home).name if home is not None else None,
        "profile": [
            {
                "location": loc,
                "name": gazetteer.by_id(loc).name,
                "probability": prob,
            }
            for loc, prob in prediction.profile.entries[:top_k]
        ],
        "iterations": prediction.iterations,
        "converged": prediction.converged,
        "cached": prediction.from_cache,
    }
