"""The inference server: JSON-over-HTTP serving of a frozen artifact.

A deliberately dependency-free server (stdlib ``http.server``,
threaded) exposing the three serving tasks of the paper's problem
statement as endpoints:

- ``POST /predict-home``   -- fold-in home prediction for one or many
  user specs (``{"users": [...], "top_k": k}``); each spec is either
  ``{"user_id": n}`` (replay a training user) or explicit evidence
  (``friends``/``followers``/``venues``/``venue_names``/
  ``observed_location``);
- ``POST /predict-batch``  -- the bulk population-scoring endpoint: a
  single JSON *array* of user specs in, an array of predictions out,
  scored through the vectorized batch fold-in engine;
- ``POST /profile``        -- the *stored* posterior profile of a
  training user (``{"user_id": n, "top_k": k}``), no fold-in;
- ``POST /explain-edge``   -- the blocked-conditional explanation of
  one edge between a spec'd user and a training neighbour
  (``{"user": {...}, "neighbor": j, "direction": "out"|"in"}``);
- ``POST /ingest``         -- streaming world ingest: a
  :class:`~repro.data.delta.WorldDelta` payload (``{"new_users":
  [...], "edges": [...], "tweets": [...], "labels": {...}}``) is
  spliced into the served world in O(|delta| + touched rows), no
  artifact reload; returns the new chained world hash + generation
  (body capped at the standard 1 MiB budget -- stream larger backlogs
  as multiple deltas);
- ``GET /healthz``         -- liveness plus per-subsystem status blocks
  under stable top-level keys (``artifact``/``world``/``cache``/
  ``journal``/``metrics``);
- ``GET /metrics``         -- the process metrics registry in the
  Prometheus text exposition format (request counts and latency
  histograms per route, fold-in solve timings, cache hit/miss, journal
  fsync/append timings, ...);
- ``GET /artifact``        -- the artifact's identity and parameters;
- ``GET /query/*``         -- the geo-analytics query layer
  (:mod:`repro.query`): ``/query/radius``, ``/query/top-cities``,
  ``/query/venue-residents`` and ``/query/aggregate`` answer inverse
  lookups ("who do we predict lives near X?") from the prediction
  index, which is built lazily on first query and refreshed
  incrementally after each ``/ingest`` (responses carry the index's
  world generation in the body and the ``X-World-Generation`` header).

Requests and responses are JSON (except ``/metrics``, which is
Prometheus text); errors come back as ``{"error": ...}`` with a 400
(bad request), a 404 (unknown route), a 500 (unexpected server fault)
or -- when a known route is hit with the wrong HTTP method -- a 405
with an ``Allow`` header naming the supported method.  Each connection
is handled on its own thread -- the predictor's shared mutable state
(the LRU cache, the kernel-row cache, the solve counter) is
lock-protected inside the predictor.

Every request is measured: a per-route latency histogram, request and
error counters, and an in-flight gauge feed ``/metrics``, and each
request runs under a :func:`repro.obs.trace.trace_request` trace whose
span breakdown lands in the server's bounded trace ring (slow requests
in a separate log).  With ``access_log`` set (``repro serve
--access-log``), one structured JSON line per request (route, status,
latency_ms, trace id) is written -- the stdlib ``log_message`` chatter
stays opt-in via ``quiet=False`` as before.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import metrics as obs_metrics
from repro.obs.trace import TraceBuffer, trace_request
from repro.query.service import (
    QUERY_ROUTES,
    QueryService,
    split_query_path,
)
from repro.serving.foldin import FoldInPredictor, prediction_payload

#: Cap on accepted request bodies (1 MiB): a single-user serving
#: endpoint should never need more, and the cap bounds memory per
#: connection.
MAX_BODY_BYTES = 1 << 20

#: The bulk ``/predict-batch`` route exists to take population dumps,
#: so it gets a much larger (but still bounded) budget: 64 MiB holds
#: on the order of a million small specs.
MAX_BATCH_BODY_BYTES = 64 << 20

#: The single route table: route -> handler method name.  Both method
#: dispatch and 405-vs-404 classification read it, so a route added
#: here automatically gets the right ``Allow`` header everywhere.
GET_HANDLERS = {
    "/healthz": "_healthz",
    "/artifact": "_artifact",
    "/metrics": "_metrics",
    # The geo-analytics layer: every /query/* route funnels into one
    # handler that defers to the shared QueryService dispatch, so both
    # topologies render the same bytes from the same builders.
    **{route: "_query" for route in QUERY_ROUTES},
}
POST_HANDLERS = {
    "/predict-home": "_predict_home",
    "/predict-batch": "_predict_batch",
    "/profile": "_profile",
    "/explain-edge": "_explain_edge",
    "/ingest": "_ingest",
}
GET_ROUTES = tuple(GET_HANDLERS)
POST_ROUTES = tuple(POST_HANDLERS)

METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Request metrics, resolved once at import.  The route label is always
#: a route-table entry or the literal ``<unknown>`` so cardinality is
#: bounded by the route table, never by client-controlled paths.
_REG = obs_metrics.get_registry()
HTTP_REQUESTS = _REG.counter(
    "repro_http_requests_total",
    "HTTP requests served, by route, method, and status code",
    labelnames=("route", "method", "status"),
)
HTTP_ERRORS = _REG.counter(
    "repro_http_errors_total",
    "HTTP responses with status >= 400, by route and status code",
    labelnames=("route", "status"),
)
HTTP_LATENCY = _REG.histogram(
    "repro_http_request_seconds",
    "Wall time from request dispatch to response written, by route",
    labelnames=("route",),
)
HTTP_INFLIGHT = _REG.gauge(
    "repro_http_inflight_requests",
    "Requests currently being handled across all server threads",
)


class ServingServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` owning the predictor it serves."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        predictor: FoldInPredictor,
        quiet: bool = True,
        journal=None,
        access_log=None,
        slow_request_seconds: float = 0.5,
    ):
        self.predictor = predictor
        self.quiet = quiet
        #: Optional :class:`repro.data.journal.DeltaJournal`: when set,
        #: ``POST /ingest`` write-ahead journals every delta before
        #: applying it, and ``/healthz`` reports the journal position.
        self.journal = journal
        #: Optional writable text stream: when set, every request emits
        #: one structured JSON access-log line (route, status,
        #: latency_ms, trace id).
        self.access_log = access_log
        #: The geo-analytics layer behind ``GET /query/*``: owns the
        #: prediction index (built lazily on first query, refreshed
        #: incrementally as ingest advances the world generation).
        self.query_service = QueryService(predictor, journal=journal)
        self.trace_buffer = TraceBuffer(slow_threshold=slow_request_seconds)
        self.started_unix = time.time()
        self._access_log_lock = threading.Lock()
        #: Graceful-drain bookkeeping: requests this server is handling
        #: right now, and an event that is set exactly while the count
        #: is zero.  :meth:`drain` stops accepting and then waits on it.
        self._inflight_count = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        super().__init__(address, ServingHandler)

    def _track_request_start(self) -> None:
        with self._inflight_lock:
            self._inflight_count += 1
            self._idle.clear()

    def _track_request_end(self) -> None:
        with self._inflight_lock:
            self._inflight_count -= 1
            if self._inflight_count <= 0:
                self._idle.set()

    def drain(self, deadline_seconds: float = 10.0) -> bool:
        """Stop accepting, let in-flight requests finish, close.

        The SIGTERM/SIGINT path: no new connections are dispatched once
        this runs, but handler threads mid-response get up to
        ``deadline_seconds`` to write their bodies instead of having
        the socket torn from under them.  Returns ``True`` when the
        server went idle within the deadline.  Must be called from a
        thread other than the one blocked in ``serve_forever`` --
        ``shutdown()`` waits for that loop to exit.
        """
        self.shutdown()
        drained = self._idle.wait(timeout=deadline_seconds)
        self.server_close()
        return drained


class _RequestError(ValueError):
    """A client error that maps to a 400 response."""


class ServingHandler(BaseHTTPRequestHandler):
    """Routes serving requests to the predictor."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a client that declares a Content-Length it never
    #: delivers must not pin a handler thread forever.
    timeout = 30

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        """Silence the stdlib per-request stderr log (traced instead)."""
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict | None = None,
    ) -> None:
        self._response_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            # Tell keep-alive clients the socket is going away (set on
            # error paths that leave the request body unread).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self, status: int, payload, extra_headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(status, body, "application/json", extra_headers)

    def _reject_unknown(self, allowed: str | None) -> None:
        """404 for an unknown route, 405 + Allow for a known one.

        Either way the request body (if any) was never read: close so a
        keep-alive client cannot desync on the leftover bytes.
        """
        self.close_connection = True
        if allowed is not None:
            self._send_json(
                405,
                {
                    "error": (
                        f"method not allowed for {self.path}; use {allowed}"
                    )
                },
                extra_headers={"Allow": allowed},
            )
        else:
            self._send_json(404, {"error": f"unknown route {self.path}"})

    def _read_json(self, max_bytes: int = MAX_BODY_BYTES):
        raw_length = self.headers.get("Content-Length")
        # Strict ASCII digits only: Python's int() also accepts "1_0",
        # "+10" and whitespace, and str.isdigit() alone admits Unicode
        # digits like "²" that int() then rejects -- either way the
        # body would be mis-framed and desync a keep-alive connection.
        stripped = raw_length.strip() if raw_length is not None else "0"
        if not (stripped.isascii() and stripped.isdigit()):
            # A malformed header (e.g. "abc") means the body size is
            # unknowable: answer 400 and close, never 500, and never
            # leave unread bytes to desync a keep-alive connection.
            self.close_connection = True
            raise _RequestError(
                f"invalid Content-Length header {raw_length!r}"
            )
        length = int(raw_length) if raw_length is not None else 0
        if length <= 0:
            raise _RequestError("request body required")
        if length > max_bytes:
            # The body stays unread; drop the connection so the bytes
            # cannot be parsed as the next request line.
            self.close_connection = True
            raise _RequestError(f"request body exceeds {max_bytes} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _RequestError(f"invalid JSON body: {exc}") from exc

    # -- instrumented dispatch ---------------------------------------------

    def _route_label(self) -> str:
        """The metrics label for this request's path (bounded cardinality).

        The query string never reaches the label (``/query/radius?lat=…``
        collapses to ``/query/radius``), so client-controlled parameters
        cannot explode series cardinality any more than unknown paths can.
        """
        route, _ = split_query_path(self.path)
        if route in GET_HANDLERS or route in POST_HANDLERS:
            return route
        return "<unknown>"

    def _dispatch(self, method: str) -> None:
        """Run one request under metrics + tracing + the access log.

        All response paths funnel through :meth:`_send_body`, which
        records the status; anything a handler raises past the expected
        client-error types becomes a 500 instead of killing the
        connection thread silently.
        """
        route = self._route_label()
        self._response_status = 0
        trace_id = ""
        t0 = time.perf_counter()
        HTTP_INFLIGHT.inc()
        tracker = getattr(self.server, "_track_request_start", None)
        if tracker is not None:
            tracker()
        try:
            buffer = getattr(self.server, "trace_buffer", None)
            with trace_request(
                f"{method} {route}", buffer, meta={"route": route}
            ) as trace:
                trace_id = trace.trace_id
                try:
                    if method == "GET":
                        self._handle_get()
                    else:
                        self._handle_post()
                except (_RequestError, ValueError, KeyError, TypeError) as exc:
                    self._send_json(400, {"error": str(exc)})
                except Exception as exc:
                    # Defensive catch-all: answer 500 if the socket is
                    # still writable, and always close -- the failed
                    # handler may have left the body half-read.
                    self.close_connection = True
                    try:
                        self._send_json(
                            500,
                            {"error": f"internal error: {type(exc).__name__}"},
                        )
                    except OSError:
                        pass
                trace.meta["status"] = self._response_status
        finally:
            HTTP_INFLIGHT.dec()
            untracker = getattr(self.server, "_track_request_end", None)
            if untracker is not None:
                untracker()
            elapsed = time.perf_counter() - t0
            status = str(self._response_status)
            HTTP_REQUESTS.labels(route=route, method=method, status=status).inc()
            HTTP_LATENCY.labels(route=route).observe(elapsed)
            if self._response_status >= 400:
                HTTP_ERRORS.labels(route=route, status=status).inc()
            self._write_access_log(method, route, elapsed, trace_id)

    def _write_access_log(
        self, method: str, route: str, elapsed: float, trace_id: str
    ) -> None:
        stream = getattr(self.server, "access_log", None)
        if stream is None:
            return
        line = json.dumps(
            {
                "ts": round(time.time(), 6),
                "method": method,
                "route": route,
                "path": self.path,
                "status": self._response_status,
                "latency_ms": round(elapsed * 1e3, 3),
                "trace_id": trace_id,
            }
        )
        lock = getattr(self.server, "_access_log_lock", None)
        try:
            if lock is not None:
                with lock:
                    stream.write(line + "\n")
                    stream.flush()
            else:
                stream.write(line + "\n")
                stream.flush()
        except (OSError, ValueError):
            pass  # a dead log sink must never fail the request

    # -- GET ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        """stdlib handler hook: dispatch GET requests."""
        self._dispatch("GET")

    def _handle_get(self) -> None:
        route, query = split_query_path(self.path)
        name = GET_HANDLERS.get(route)
        if name is None:
            self._reject_unknown("POST" if route in POST_ROUTES else None)
            return
        if name == "_query":
            payload = self._query(route, query)
            self._send_json(
                200,
                payload,
                extra_headers={
                    "X-World-Generation": str(payload["generation"])
                },
            )
            return
        result = getattr(self, name)()
        if isinstance(result, bytes):
            # /metrics returns a pre-encoded non-JSON body.
            self._send_body(200, result, METRICS_CONTENT_TYPE)
        else:
            self._send_json(200, result)

    def _healthz(self) -> dict:
        """Liveness plus per-subsystem blocks under stable top-level keys.

        Schema contract (tests/test_serving_obs.py): ``status`` plus the
        blocks ``artifact``/``world``/``cache``/``journal``/``metrics``/
        ``serving`` are always present; ``journal`` is ``None`` on an
        unjournaled server rather than absent, and ``serving`` names the
        topology (here always the single-process threaded shape).
        """
        server = self.server
        return healthz_payload(
            server.predictor,
            journal=getattr(server, "journal", None),
            trace_buffer=getattr(server, "trace_buffer", None),
            started_unix=getattr(server, "started_unix", None),
            serving=threaded_serving_block(),
        )

    def _metrics(self) -> bytes:
        """The process registry in Prometheus text exposition format."""
        return obs_metrics.render_prometheus().encode("utf-8")

    def _artifact(self) -> dict:
        """``GET /artifact``: identity and parameters of the artifact."""
        return artifact_payload(self.server.predictor)

    def _query(self, route: str, query: str) -> dict:
        """``GET /query/*``: defer to the shared query-service dispatch."""
        return self.server.query_service.answer(route, query)

    # -- other methods -----------------------------------------------------

    def _do_unsupported(self) -> None:
        """PUT/DELETE/PATCH: 405 on known routes, 404 otherwise."""
        route, _ = split_query_path(self.path)
        if route in GET_ROUTES:
            self._reject_unknown("GET")
        elif route in POST_ROUTES:
            self._reject_unknown("POST")
        else:
            self._reject_unknown(None)

    do_PUT = _do_unsupported  # noqa: N815 (stdlib handler contract)
    do_DELETE = _do_unsupported  # noqa: N815
    do_PATCH = _do_unsupported  # noqa: N815

    # -- POST --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler contract)
        """stdlib handler hook: dispatch POST requests."""
        self._dispatch("POST")

    def _handle_post(self) -> None:
        route, _ = split_query_path(self.path)
        name = POST_HANDLERS.get(route)
        if name is None:
            self._reject_unknown("GET" if route in GET_ROUTES else None)
            return
        max_bytes = (
            MAX_BATCH_BODY_BYTES
            if route == "/predict-batch"
            else MAX_BODY_BYTES
        )
        payload = self._read_json(max_bytes=max_bytes)
        self._send_json(200, getattr(self, name)(payload))

    def _predict_home(self, payload) -> dict:
        return predict_home_payload(self.server.predictor, payload)

    def _predict_batch(self, payload) -> list:
        """Bulk scoring: a JSON array of specs in, an array out.

        The body *is* the spec list (no wrapper object), so callers can
        stream a population dump straight through; predictions come
        back in request order, scored by the vectorized batch engine
        past the predictor's crossover size.
        """
        return predict_batch_payload(self.server.predictor, payload)

    def _profile(self, payload) -> dict:
        return profile_payload(self.server.predictor, payload)

    def _ingest(self, payload) -> dict:
        """Apply one delta batch to the served world, live.

        The response names the new world's identity (chained hash +
        generation) so callers can checkpoint their ingest position --
        ``score_population(since_generation=...)`` re-scores exactly
        the users this delta touched.

        On a journaled server (``repro serve --journal``) the delta is
        validated, write-ahead appended to the journal and only then
        applied -- an acknowledged ingest survives ``kill -9``.
        """
        return ingest_payload(
            self.server.predictor,
            payload,
            journal=getattr(self.server, "journal", None),
        )

    def _explain_edge(self, payload) -> dict:
        return explain_edge_payload(self.server.predictor, payload)


# -- shared response builders ------------------------------------------------
#
# Pure payload constructors over a predictor: the threaded handler
# methods above, the multi-process worker loop
# (:mod:`repro.serving.workers`) and the async front end
# (:mod:`repro.serving.frontend`) all render responses through these
# same functions, which is what makes "bit-identical to the
# single-process path" a structural property rather than a test
# assertion.  Client errors are ``ValueError``s; every transport maps
# them to a 400.


def require_object(payload) -> dict:
    """The payload as a dict, or ValueError for non-object JSON."""
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    return payload


def predict_home_payload(predictor: FoldInPredictor, payload) -> dict:
    """``POST /predict-home``: fold-in predictions for a spec list."""
    payload = require_object(payload)
    users = payload.get("users")
    if not isinstance(users, list) or not users:
        raise ValueError('"users" must be a non-empty list of specs')
    top_k = int(payload.get("top_k", 3))
    specs = [predictor.resolve_request(entry) for entry in users]
    predictions = predictor.predict_batch(specs)
    gaz = predictor.dataset.gazetteer
    return {
        "artifact_id": predictor.artifact_id,
        "predictions": [
            prediction_payload(p, gaz, top_k=top_k) for p in predictions
        ],
    }


def predict_batch_payload(predictor: FoldInPredictor, payload) -> list:
    """``POST /predict-batch``: a JSON array of specs in, an array out."""
    if not isinstance(payload, list):
        raise ValueError("request body must be a JSON array of user specs")
    specs = [predictor.resolve_request(entry) for entry in payload]
    predictions = predictor.predict_batch(specs)
    gaz = predictor.dataset.gazetteer
    return [prediction_payload(p, gaz) for p in predictions]


def profile_payload(predictor: FoldInPredictor, payload) -> dict:
    """``POST /profile``: a training user's stored posterior profile."""
    payload = require_object(payload)
    if "user_id" not in payload:
        raise ValueError('"user_id" is required')
    user_id = int(payload["user_id"])
    if not 0 <= user_id < predictor.dataset.n_users:
        raise ValueError(f"user {user_id} not in the training set")
    top_k = int(payload.get("top_k", 3))
    profile = predictor.result.profile_of(user_id)
    gaz = predictor.dataset.gazetteer
    return {
        "artifact_id": predictor.artifact_id,
        "user_id": user_id,
        "home": profile.home,
        "home_name": (
            gaz.by_id(profile.home).name if profile.home is not None else None
        ),
        "profile": [
            {
                "location": loc,
                "name": gaz.by_id(loc).name,
                "probability": prob,
            }
            for loc, prob in profile.entries[:top_k]
        ],
    }


def explain_edge_payload(predictor: FoldInPredictor, payload) -> dict:
    """``POST /explain-edge``: blocked-conditional edge explanation."""
    payload = require_object(payload)
    if "user" not in payload or "neighbor" not in payload:
        raise ValueError('"user" and "neighbor" are required')
    spec = predictor.resolve_request(payload["user"])
    explanation = predictor.explain_edge(
        spec,
        neighbor=int(payload["neighbor"]),
        direction=payload.get("direction", "out"),
        top=int(payload.get("top", 5)),
    )
    gaz = predictor.dataset.gazetteer
    return {
        "artifact_id": predictor.artifact_id,
        "neighbor": explanation.neighbor,
        "direction": explanation.direction,
        "noise_probability": explanation.noise_probability,
        "pairs": [
            {
                "x": pair.x,
                "x_name": gaz.by_id(pair.x).name,
                "y": pair.y,
                "y_name": gaz.by_id(pair.y).name,
                "probability": pair.probability,
            }
            for pair in explanation.pairs
        ],
    }


def artifact_payload(predictor: FoldInPredictor) -> dict:
    """``GET /artifact``: the served artifact's identity and parameters."""
    world = predictor.world
    return {
        "artifact_id": predictor.artifact_id,
        "params": asdict(predictor.params),
        "users": world.n_users,
        "following": world.n_following,
        "tweeting": world.n_tweeting,
        "locations": world.n_locations,
        "venues": world.n_venues,
        "fitted_law": {
            "alpha": predictor.result.fitted_law.alpha,
            "beta": predictor.result.fitted_law.beta,
        },
    }


def apply_ingest(predictor: FoldInPredictor, payload, journal=None):
    """Parse + apply one ingest body; returns ``(world, delta)``.

    Split out of :func:`ingest_payload` because the multi-process front
    end needs the delta itself after applying -- its ``label_users``
    set rides along with the :meth:`WorldStore.publish` so readers can
    invalidate surgically.
    """
    from repro.data.delta import WorldDelta

    payload = require_object(payload)
    delta = WorldDelta.from_payload(
        payload, gazetteer=predictor.world.gazetteer
    )
    if journal is not None:
        from repro.data.journal import journaled_ingest

        world = journaled_ingest(predictor, journal, delta)
    else:
        world = predictor.refresh(delta)
    return world, delta


def ingest_response(predictor: FoldInPredictor, world, journal=None) -> dict:
    """The ``POST /ingest`` response body for an applied delta."""
    record = world.delta_log[-1]
    response = {
        "artifact_id": predictor.artifact_id,
        "world_hash": world.content_hash,
        "generation": world.generation,
        "users": world.n_users,
        "following": world.n_following,
        "tweeting": world.n_tweeting,
        "applied": {
            "new_users": record.n_new_users,
            "edges": record.n_edges,
            "tweets": record.n_tweets,
            "label_updates": record.n_label_updates,
            "touched_users": int(record.touched_users.size),
        },
        "cache": predictor.cache.stats(),
    }
    if journal is not None:
        response["journal"] = journal.stats()
    return response


def ingest_payload(
    predictor: FoldInPredictor, payload, journal=None
) -> dict:
    """``POST /ingest``: splice one delta into the served world."""
    world, _ = apply_ingest(predictor, payload, journal=journal)
    return ingest_response(predictor, world, journal=journal)


def threaded_serving_block() -> dict:
    """The ``serving`` healthz block of the single-process server."""
    return {
        "mode": "threaded",
        "workers": 0,
        "coalesce_ms": None,
        "store": None,
        "worker_info": [],
    }


def healthz_payload(
    predictor: FoldInPredictor,
    journal=None,
    trace_buffer=None,
    started_unix=None,
    serving=None,
) -> dict:
    """``GET /healthz``: liveness plus stable per-subsystem blocks.

    ``serving`` describes the process topology -- the threaded server
    passes :func:`threaded_serving_block`, the multi-process front end
    its worker-pool snapshot (mode/workers/coalesce_ms/store/
    worker_info).  The key is always present.
    """
    world = predictor.world
    return {
        "status": "ok",
        "artifact": {"id": predictor.artifact_id},
        "world": {
            "users": world.n_users,
            "generation": world.generation,
            "following": world.n_following,
            "tweeting": world.n_tweeting,
            "hash": world.content_hash,
        },
        "cache": predictor.cache.stats(),
        "journal": journal.stats() if journal is not None else None,
        "metrics": {
            "uptime_seconds": (
                round(time.time() - started_unix, 3) if started_unix else None
            ),
            "requests_total": HTTP_REQUESTS.total(),
            "errors_total": HTTP_ERRORS.total(),
            "inflight": HTTP_INFLIGHT.value,
            "solves_total": predictor.solve_count,
            "traces": (
                trace_buffer.stats() if trace_buffer is not None else None
            ),
        },
        "serving": serving if serving is not None else threaded_serving_block(),
    }


def make_server(
    predictor: FoldInPredictor,
    host: str = "127.0.0.1",
    port: int = 8000,
    quiet: bool = True,
    journal=None,
    access_log=None,
) -> ServingServer:
    """Bind a serving server (``port=0`` picks a free port -- tests)."""
    return ServingServer(
        (host, port),
        predictor,
        quiet=quiet,
        journal=journal,
        access_log=access_log,
    )
