"""A small thread-safe LRU cache for serving results.

The inference server answers repeated queries for the same user
signature (dashboards, retries, crawler refreshes), and a fold-in
solve -- cheap as it is -- still costs a few hundred microseconds of
linear algebra.  The predictor memoizes finished predictions keyed by
``(artifact id, user signature)``; this module provides the bounded,
thread-safe map behind that.

Implemented on :class:`collections.OrderedDict` with a lock around
every operation: the stdlib HTTP server handles each request on its own
thread, so gets and puts race by design.  Hit/miss counters feed the
``/healthz`` endpoint and the serving benchmark, and are mirrored onto
the process metrics registry (``repro_cache_{hits,misses,
invalidations}_total{cache=...}``) so ``/metrics`` sees them too; the
instance-local integers remain the source of truth for ``stats()``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Iterable

from repro.obs import metrics as obs_metrics

_MISSING = object()

_REG = obs_metrics.get_registry()
CACHE_HITS = _REG.counter(
    "repro_cache_hits_total", "LRU cache hits", labelnames=("cache",)
)
CACHE_MISSES = _REG.counter(
    "repro_cache_misses_total", "LRU cache misses", labelnames=("cache",)
)
CACHE_INVALIDATIONS = _REG.counter(
    "repro_cache_invalidations_total",
    "LRU cache entries dropped by tag invalidation",
    labelnames=("cache",),
)


class LRUCache:
    """Bounded least-recently-used mapping with hit/miss accounting."""

    def __init__(self, max_size: int = 1024, metrics_label: str = "prediction"):
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        # Registry children resolved once here: the hot path pays one
        # counter increment, not a label lookup.  All instances with the
        # same label aggregate into one /metrics time series.
        self._m_hits = CACHE_HITS.labels(cache=metrics_label)
        self._m_misses = CACHE_MISSES.labels(cache=metrics_label)
        self._m_invalidations = CACHE_INVALIDATIONS.labels(cache=metrics_label)
        # Optional entry tags for selective invalidation: tag -> keys
        # carrying it, plus the reverse map so eviction can clean up.
        # Streaming ingest tags predictions with the neighbour ids they
        # read, then drops exactly the entries a label update staled.
        self._tag_index: dict[Hashable, set[Hashable]] = {}
        self._key_tags: dict[Hashable, tuple] = {}

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
            else:
                self._data.move_to_end(key)
                self.hits += 1
        if value is _MISSING:
            self._m_misses.inc()
            return default
        self._m_hits.inc()
        return value

    def put(self, key: Hashable, value: Any, tags: Iterable[Hashable] = ()) -> None:
        """Insert or refresh ``key``, evicting the oldest entry if full.

        ``tags`` label the entry for :meth:`invalidate_tags`; an entry
        re-put with different tags keeps only the new ones.
        """
        with self._lock:
            self._put_locked(key, value, tuple(tags))

    def get_many(self, keys: Iterable[Hashable]) -> dict[Hashable, Any]:
        """Bulk :meth:`get` under one lock acquisition.

        Returns only the keys that were present (each counted as a hit
        and refreshed); absent keys are counted as misses.  The batch
        fold-in path looks up a whole request's signatures through
        this instead of taking the lock once per spec.
        """
        n_requested = 0
        with self._lock:
            found: dict[Hashable, Any] = {}
            for key in keys:
                n_requested += 1
                value = self._data.get(key, _MISSING)
                if value is _MISSING:
                    self.misses += 1
                else:
                    self._data.move_to_end(key)
                    self.hits += 1
                    found[key] = value
        if found:
            self._m_hits.inc(len(found))
        if n_requested > len(found):
            self._m_misses.inc(n_requested - len(found))
        return found

    def put_many(self, items: Iterable[tuple]) -> None:
        """Bulk :meth:`put` under one lock acquisition.

        Items are ``(key, value)`` or ``(key, value, tags)`` tuples.
        """
        with self._lock:
            for item in items:
                key, value = item[0], item[1]
                tags = tuple(item[2]) if len(item) > 2 else ()
                self._put_locked(key, value, tags)

    def invalidate_tags(self, tags: Iterable[Hashable]) -> int:
        """Drop every entry carrying any of ``tags``; returns the count.

        The serving layer calls this on streaming ingest: a label
        update stales exactly the predictions tagged with that user,
        and nothing else -- no wholesale flush, hit-rate history kept.
        """
        with self._lock:
            doomed: set[Hashable] = set()
            for tag in tags:
                doomed.update(self._tag_index.get(tag, ()))
            for key in doomed:
                del self._data[key]
                self._drop_tags_locked(key)
            self.invalidations += len(doomed)
        if doomed:
            self._m_invalidations.inc(len(doomed))
        return len(doomed)

    def _put_locked(self, key: Hashable, value: Any, tags: tuple = ()) -> None:
        if key in self._data:
            self._data.move_to_end(key)
            self._drop_tags_locked(key)
        self._data[key] = value
        if tags:
            self._key_tags[key] = tags
            for tag in tags:
                self._tag_index.setdefault(tag, set()).add(key)
        while len(self._data) > self.max_size:
            evicted, _ = self._data.popitem(last=False)
            self._drop_tags_locked(evicted)

    def _drop_tags_locked(self, key: Hashable) -> None:
        for tag in self._key_tags.pop(key, ()):
            keys = self._tag_index.get(tag)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._tag_index[tag]

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop every entry (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._data.clear()
            self._tag_index.clear()
            self._key_tags.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries are kept).

        Call together with :meth:`clear` when the cached *population*
        changes meaning -- e.g. the predictor reloads a new artifact --
        so ``/healthz`` hit rates describe the current generation
        rather than blending in a dead one.
        """
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0

    def stats(self) -> dict[str, int]:
        """Hit/miss/size snapshot for health endpoints and benchmarks."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "size": len(self._data),
                "max_size": self.max_size,
            }
