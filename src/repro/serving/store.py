"""WorldStore: the shared-memory world plane of multi-process serving.

One process *writes* worlds (ingest applies deltas); many processes
*read* them (predictor workers solving fold-in requests).  Before this
module, the two roles lived in one address space and
``FoldInPredictor.refresh()`` swapped ``self.world`` under a lock -- an
ad-hoc RCU.  :class:`WorldStore` formalizes that protocol across
process boundaries:

- **publish** (writer side): each :class:`~repro.data.columnar
  .ColumnarWorld` generation is dumped as read-only ``.npy`` arenas
  into its own ``gen-<generation>`` directory
  (:meth:`ColumnarWorld.dump_dir`, fsynced), together with a
  ``meta.json`` naming the generation, the chained content hash, the
  full-array digest and the delta's ``label_users`` (the cache
  invalidation set readers need).  The directory is written under a
  temporary name and **renamed** into place, then the ``CURRENT``
  manifest is atomically replaced -- a reader can observe the old
  generation or the new one, never a half-published directory;
- **acquire / release** (reader side): :meth:`acquire` resolves
  ``CURRENT`` and memory-maps the named generation
  (:meth:`ColumnarWorld.load_dir` with ``mmap=True``): attaching costs
  page-table entries, not copies, and N workers share one page cache
  image of the arenas.  The returned :class:`WorldLease` pins the
  generation against in-process retirement until released;
- **retire** (grace period): old generations are unlinked only once
  they fall behind the newest ``retain`` *and* hold no in-process
  lease.  Cross-process readers that raced a retirement are safe
  twice over: POSIX keeps unlinked-but-mapped files readable, and
  :meth:`acquire` retries through ``CURRENT`` when the directory it
  resolved has vanished.

**Single-writer discipline.**  :meth:`lock_writer` takes an exclusive
``flock`` on ``writer.lock``; a second would-be writer fails loudly
instead of silently interleaving generations.  Readers never lock
anything -- generation swap is wait-free on their side, exactly the
RCU shape the serving front end needs.

The on-disk layout deliberately reuses the persistence machinery that
already existed: :meth:`dump_dir`/:meth:`load_dir` for the arenas
(PR 8) and the journal's atomic write-fsync-rename idiom
(:func:`repro.data.journal.fsync_dir`) for publication, so a store
directory is just "a snapshot per generation plus a pointer".
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.data.columnar import ColumnarWorld
from repro.data.journal import fsync_dir
from repro.obs import metrics as obs_metrics

_REG = obs_metrics.get_registry()
STORE_PUBLISHES = _REG.counter(
    "repro_store_publishes_total",
    "World generations published to the world store",
)
STORE_PUBLISH_SECONDS = _REG.histogram(
    "repro_store_publish_seconds",
    "Wall time to publish one generation (dump + fsync + rename)",
)
STORE_ACQUIRES = _REG.counter(
    "repro_store_acquires_total",
    "Reader attachments (mmap acquires) against the world store",
)
STORE_RETIRED = _REG.counter(
    "repro_store_retired_generations_total",
    "Old generations unlinked by the retention policy",
)

#: ``CURRENT`` names the generation readers should attach; replaced
#: atomically on every publish.
MANIFEST_FILE = "CURRENT"
META_FILE = "meta.json"
WRITER_LOCK_FILE = "writer.lock"
_GEN_RE = re.compile(r"^gen-(\d{12})$")

#: Generations kept on disk behind the current one.  A reader that is
#: this many publishes behind re-acquires through ``CURRENT`` instead
#: of finding its directory; in-process leases extend retention past
#: this floor.
DEFAULT_RETAIN = 4


class StoreError(RuntimeError):
    """The store cannot publish or attach safely."""


@dataclass
class WorldLease:
    """One reader's pin on a published generation.

    Holds the mmap-attached world plus the publication metadata;
    release through :meth:`WorldStore.release` (or ``lease.release()``)
    when swapping to a newer generation so retirement can reclaim the
    directory.
    """

    world: ColumnarWorld
    generation: int
    content_hash: str
    meta: dict
    path: Path
    _store: "WorldStore" = field(repr=False)
    _released: bool = field(default=False, repr=False)

    def release(self) -> None:
        """Release the reader lease."""
        self._store.release(self)


class WorldStore:
    """A generation-versioned, single-writer, many-reader world plane."""

    def __init__(
        self,
        directory: str | Path,
        gazetteer,
        retain: int = DEFAULT_RETAIN,
    ):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.gazetteer = gazetteer
        self.retain = int(retain)
        self._lock = threading.Lock()
        #: generation -> number of live in-process leases.
        self._leases: dict[int, int] = {}
        #: (st_ino, st_mtime_ns, st_size) -> parsed manifest, so the
        #: readers' between-requests poll is a stat, not a read+parse.
        self._manifest_stat: tuple | None = None
        self._manifest: dict | None = None
        self._writer_fh = None

    # -- writer side -------------------------------------------------------

    def lock_writer(self) -> None:
        """Take the exclusive writer role for this store directory.

        Backed by ``flock`` on ``writer.lock``: the lock dies with the
        process (no stale-pid files), is inherited across ``fork`` (a
        forked *reader* keeps the parent's lock alive rather than
        stealing it), and a concurrent writer fails immediately.
        """
        import fcntl

        if self._writer_fh is not None:
            return
        fh = open(self.directory / WRITER_LOCK_FILE, "a+")
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            fh.close()
            raise StoreError(
                f"{self.directory}: another writer holds this store "
                "(single-writer discipline; stop the other server or "
                "point --store elsewhere)"
            ) from exc
        self._writer_fh = fh

    def unlock_writer(self) -> None:
        """Release the writer lock file."""
        if self._writer_fh is not None:
            self._writer_fh.close()  # closing drops the flock
            self._writer_fh = None

    def publish(
        self,
        world: ColumnarWorld,
        label_users=(),
    ) -> dict:
        """Publish one world generation; returns the new manifest.

        Atomic by rename: the arenas and ``meta.json`` land in a
        temporary directory first (every file fsynced), which is then
        renamed to ``gen-<generation>`` and pointed to by an
        atomically-replaced ``CURRENT``.  Re-publishing the generation
        already current (same content hash -- e.g. a writer restarting
        after journal recovery) is an idempotent no-op; publishing a
        *different* world under an existing generation number is a
        corruption and raises.

        ``label_users`` is the delta's observed-label update set, the
        only part of a delta that can stale cached predictions --
        readers skipping from generation a to b invalidate the union
        of ``label_users`` over (a, b] (see
        :meth:`FoldInPredictor.attach_world`).
        """
        t0 = time.perf_counter()
        generation = int(world.generation)
        name = f"gen-{generation:012d}"
        final = self.directory / name
        meta = {
            "generation": generation,
            "content_hash": world.content_hash,
            "world_rehash": world.rehash(),
            "n_users": world.n_users,
            "n_following": world.n_following,
            "n_tweeting": world.n_tweeting,
            "label_users": [int(u) for u in label_users],
            "created_unix": time.time(),
        }
        if final.exists():
            existing = self._read_meta(final)
            if (
                existing is not None
                and existing.get("content_hash") == meta["content_hash"]
            ):
                # Idempotent re-publish (writer restart): just make
                # sure CURRENT points here.
                self._write_manifest(generation, name, meta)
                return self.current_manifest()
            raise StoreError(
                f"{final}: generation {generation} already published "
                "with different content -- refusing to overwrite "
                "(two writers? out-of-order generations?)"
            )
        tmp = self.directory / f".{name}.tmp-{os.getpid()}"
        if tmp.exists():
            shutil.rmtree(tmp)
        try:
            world.dump_dir(tmp, fsync=True)
            with open(tmp / META_FILE, "w", encoding="utf-8") as fh:
                json.dump(meta, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.rename(tmp, final)
            fsync_dir(self.directory)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self._write_manifest(generation, name, meta)
        self._retire_old()
        STORE_PUBLISH_SECONDS.observe(time.perf_counter() - t0)
        STORE_PUBLISHES.inc()
        return self.current_manifest()

    def _write_manifest(self, generation: int, name: str, meta: dict) -> None:
        manifest = {
            "generation": generation,
            "path": name,
            "content_hash": meta["content_hash"],
            "published_unix": meta["created_unix"],
        }
        tmp = self.directory / (MANIFEST_FILE + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.directory / MANIFEST_FILE)
        fsync_dir(self.directory)

    # -- reader side -------------------------------------------------------

    def current_manifest(self) -> dict | None:
        """The manifest readers attach from (stat-cached; None if empty)."""
        path = self.directory / MANIFEST_FILE
        try:
            st = path.stat()
        except FileNotFoundError:
            return None
        key = (st.st_ino, st.st_mtime_ns, st.st_size)
        with self._lock:
            if self._manifest_stat == key and self._manifest is not None:
                return self._manifest
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            # Mid-replace race (the file vanished or we read a torn
            # rename on a non-POSIX filesystem): the caller retries.
            return None
        with self._lock:
            self._manifest_stat = key
            self._manifest = manifest
        return manifest

    def current_generation(self) -> int | None:
        """Newest published generation -- the readers' poll target."""
        manifest = self.current_manifest()
        return None if manifest is None else int(manifest["generation"])

    def acquire(self, verify: bool = False) -> WorldLease:
        """Attach the current generation by mmap and lease it.

        Zero-copy: every arena is a read-only ``np.memmap`` view onto
        the published ``.npy`` files, so N readers share one page-cache
        image.  With ``verify=True`` the full-array digest is recomputed
        and checked against the published ``world_rehash`` -- the
        no-half-published-generation invariant, paid for by one pass
        over the arenas (tests and paranoid boots; the rename protocol
        makes it structurally redundant in normal operation).

        Retries through ``CURRENT`` when the resolved directory was
        retired between the manifest read and the attach (a reader
        ``retain`` publishes behind).
        """
        last_error: Exception | None = None
        for _ in range(8):
            manifest = self.current_manifest()
            if manifest is None:
                raise StoreError(
                    f"{self.directory}: store has no published generation"
                )
            path = self.directory / manifest["path"]
            try:
                meta = self._read_meta(path)
                if meta is None:
                    raise FileNotFoundError(path / META_FILE)
                world = ColumnarWorld.load_dir(
                    self.gazetteer, path, mmap=True
                )
            except (FileNotFoundError, OSError, ValueError) as exc:
                # Lost the race against retirement (or a torn replace
                # on an exotic filesystem): resolve CURRENT again.
                last_error = exc
                self._drop_manifest_cache()
                time.sleep(0.005)
                continue
            world.generation = int(meta["generation"])
            world._content_hash = meta["content_hash"]
            if verify and world.rehash() != meta["world_rehash"]:
                raise StoreError(
                    f"{path}: published arenas do not match their "
                    "recorded digest (half-published generation?)"
                )
            generation = int(meta["generation"])
            with self._lock:
                self._leases[generation] = (
                    self._leases.get(generation, 0) + 1
                )
            STORE_ACQUIRES.inc()
            return WorldLease(
                world=world,
                generation=generation,
                content_hash=meta["content_hash"],
                meta=meta,
                path=path,
                _store=self,
            )
        raise StoreError(
            f"{self.directory}: could not attach a generation "
            f"(kept losing the retirement race: {last_error})"
        )

    def release(self, lease: WorldLease) -> None:
        """Return a lease; the generation becomes retireable again."""
        with self._lock:
            if lease._released:
                return
            lease._released = True
            count = self._leases.get(lease.generation, 0) - 1
            if count <= 0:
                self._leases.pop(lease.generation, None)
            else:
                self._leases[lease.generation] = count

    def _drop_manifest_cache(self) -> None:
        with self._lock:
            self._manifest_stat = None
            self._manifest = None

    # -- generation metadata ----------------------------------------------

    def _read_meta(self, gen_dir: Path) -> dict | None:
        try:
            return json.loads(
                (gen_dir / META_FILE).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            return None

    def meta_for(self, generation: int) -> dict | None:
        """Published metadata of one generation (None once retired)."""
        return self._read_meta(self.directory / f"gen-{generation:012d}")

    def label_users_between(
        self, old_generation: int, new_generation: int
    ) -> list[int] | None:
        """Union of ``label_users`` over generations in ``(old, new]``.

        The surgical cache-invalidation set for a reader skipping from
        ``old`` to ``new``.  Returns ``None`` when any intermediate
        generation's metadata is gone (retired underneath a very slow
        reader) -- the caller must fall back to a full cache clear.
        """
        users: set[int] = set()
        for generation in range(old_generation + 1, new_generation + 1):
            meta = self.meta_for(generation)
            if meta is None:
                return None
            users.update(int(u) for u in meta.get("label_users", ()))
        return sorted(users)

    def generations_on_disk(self) -> list[int]:
        """Published generations present, oldest first."""
        found = []
        for entry in self.directory.iterdir():
            match = _GEN_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def stats(self) -> dict:
        """Store observability for ``/healthz``."""
        manifest = self.current_manifest()
        with self._lock:
            leased = {gen: n for gen, n in self._leases.items()}
        return {
            "directory": str(self.directory),
            "generation": (
                None if manifest is None else int(manifest["generation"])
            ),
            "retain": self.retain,
            "on_disk": self.generations_on_disk(),
            "leased": leased,
        }

    # -- retention ---------------------------------------------------------

    def _retire_old(self) -> None:
        """Unlink generations behind the retention window.

        A generation survives while it is one of the newest
        ``retain`` or holds an in-process lease.  Cross-process
        readers past the window are covered by the acquire retry (and
        by POSIX unlink semantics for already-mapped arenas).
        """
        generations = self.generations_on_disk()
        if len(generations) <= self.retain:
            return
        keep = set(generations[-self.retain :])
        with self._lock:
            keep.update(gen for gen, n in self._leases.items() if n > 0)
        for generation in generations:
            if generation in keep:
                continue
            shutil.rmtree(
                self.directory / f"gen-{generation:012d}",
                ignore_errors=True,
            )
            STORE_RETIRED.inc()

    def close(self) -> None:
        """Detach from the store and release held leases."""
        self.unlock_writer()
