"""The async front end: one accept loop, N worker processes, one writer.

The multi-process serving topology (``repro serve --workers N``):

- this process runs an **asyncio** accept loop speaking the same
  JSON-over-HTTP protocol as the threaded server (same routes, same
  error semantics, same body caps, same strict Content-Length
  discipline -- :mod:`repro.serving.server` documents the contract);
- ``/predict-home`` and ``/predict-batch`` are **micro-batched**:
  requests arriving within a ``coalesce_ms`` window are coalesced into
  one worker dispatch, where the whole window folds into a single
  ``predict_batch`` call -- the batch engine amortizes its arena
  lowering across requests that would each have paid it alone;
- dispatches round-robin over the :class:`~repro.serving.workers
  .WorkerPool`; a dead worker (``kill -9``) is detected by its broken
  pipe, the batch re-dispatched to a survivor, and -- with no survivors
  -- served inline by the writer's own predictor: requests degrade,
  they are never lost to a worker death;
- ``/ingest`` runs on the **writer** predictor here (the single
  writer), write-ahead journaled when a journal is attached, then
  published to the :class:`~repro.serving.store.WorldStore`; workers
  adopt the new generation before their next batch (RCU);
- ``/profile``, ``/explain-edge``, ``/artifact``, ``/healthz`` and
  ``/metrics`` are served inline (stored-posterior reads and
  diagnostics -- not worth a process hop);
- ``GET /query/*`` (the geo-analytics layer, :mod:`repro.query`) is
  served inline on the **writer** predictor too -- the prediction
  index must reflect every acknowledged ingest, and the writer is the
  one process guaranteed to be at the newest generation.  Index
  builds/refreshes run in an executor thread so a first-query build
  never stalls the accept loop, and the payload bytes come from the
  same :class:`~repro.query.service.QueryService` builders the
  threaded server uses (byte-identical bodies, same
  ``X-World-Generation`` header);
- predict responses carry an ``X-World-Generation`` header naming the
  generation they were served from.  The *body* stays byte-identical
  to the threaded server's (the RCU tests depend on the header, the
  bit-identity contract on the body; only the ``cached`` marker may
  differ, being serving metadata about batch-local dedup).

Graceful shutdown mirrors the threaded server's satellite: closing the
listener, letting in-flight requests finish within a bounded deadline,
then stopping the coalescer and the pool.

Observability caveat: worker processes keep their own metric
registries, so ``/metrics`` here exports the front end's view --
request/latency/coalescing/dispatch families plus the writer's solves.
Worker-side solve counts surface through ``/healthz``'s per-worker
rows (``solves`` in each status reply) rather than Prometheus.
Request *tracing* stays a threaded-server feature: the trace spans are
thread-local, which interleaved coroutines would corrupt, so the front
end logs and measures but does not trace.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.query.service import QueryService, split_query_path
from repro.serving.foldin import FoldInPredictor
from repro.serving.server import (
    GET_HANDLERS,
    HTTP_ERRORS,
    HTTP_INFLIGHT,
    HTTP_LATENCY,
    HTTP_REQUESTS,
    MAX_BATCH_BODY_BYTES,
    MAX_BODY_BYTES,
    METRICS_CONTENT_TYPE,
    POST_HANDLERS,
    artifact_payload,
    explain_edge_payload,
    healthz_payload,
    ingest_response,
    profile_payload,
)
from repro.serving.store import WorldStore
from repro.serving.workers import (
    WorkerDied,
    WorkerPool,
    serve_predict_requests,
)

_REG = obs_metrics.get_registry()
#: Size of each coalesced dispatch, in requests -- the histogram that
#: shows whether the coalescing window is actually merging traffic
#: (all-ones means the window is too short or the load too thin).
COALESCE_BATCH_SIZE = _REG.histogram(
    "repro_serve_coalesced_batch_size",
    "Requests per coalesced predict dispatch",
    buckets=np.array([1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64], dtype=float),
)
COALESCE_DISPATCHES = _REG.counter(
    "repro_serve_dispatches_total",
    "Coalesced predict dispatches, by outcome",
    labelnames=("outcome",),
)

#: The two routes that go through the coalescer + worker pool; every
#: other route is served inline on the event loop / writer.
_WORKER_ROUTES = ("/predict-home", "/predict-batch")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}

#: Mirrors ``ServingHandler.timeout``: a declared body that never
#: arrives must not pin its coroutine forever.
BODY_READ_TIMEOUT = 30.0


class AsyncFrontend:
    """Asyncio accept loop + micro-batcher over a worker pool."""

    def __init__(
        self,
        predictor: FoldInPredictor,
        store: WorldStore,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = 8000,
        coalesce_ms: float = 2.0,
        max_coalesce: int = 64,
        journal=None,
        access_log=None,
        quiet: bool = True,
    ):
        #: The *writer* predictor: ingest applies deltas here, and the
        #: inline routes (profile/explain/healthz) read from it.  It is
        #: always at the newest generation by construction.
        self.predictor = predictor
        self.store = store
        self.pool = pool
        self.host = host
        self.port = port
        self.coalesce_ms = float(coalesce_ms)
        self.max_coalesce = int(max_coalesce)
        self.journal = journal
        self.access_log = access_log
        self.quiet = quiet
        #: ``GET /query/*`` served on the writer predictor (always at
        #: the newest generation); same service class as the threaded
        #: server, so the bodies are byte-identical by construction.
        self.query_service = QueryService(predictor, journal=journal)
        self.started_unix = time.time()
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._coalescer: asyncio.Task | None = None
        self._ingest_lock: asyncio.Lock | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._inflight = 0
        self._idle: asyncio.Event | None = None
        self._draining = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start accepting requests."""
        self._queue = asyncio.Queue()
        self._ingest_lock = asyncio.Lock()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._coalescer = asyncio.create_task(self._coalesce_loop())

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until the stop event fires, then close."""
        await stop.wait()

    async def drain(self, deadline_seconds: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight, stop pool.

        Returns ``True`` when every in-flight request completed within
        the deadline; either way the coalescer is cancelled, remaining
        connections are closed and the workers stopped afterwards.
        """
        if self._draining:
            return True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = True
        if self._idle is not None and self._inflight > 0:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=deadline_seconds
                )
            except asyncio.TimeoutError:
                drained = False
        if self._coalescer is not None:
            self._coalescer.cancel()
            try:
                await self._coalescer
            except (asyncio.CancelledError, Exception):
                pass
        for task in list(self._conn_tasks):
            task.cancel()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.stop_all)
        return drained

    # -- coalescing dispatcher ---------------------------------------------

    async def _coalesce_loop(self) -> None:
        """Collect predict traffic into windows; one dispatch per window.

        Classic micro-batching: the first request opens a window of
        ``coalesce_ms``; everything arriving inside it (up to
        ``max_coalesce``) joins the same dispatch.  Each dispatch runs
        as its own task, so consecutive windows solve concurrently on
        *different* workers while the loop is already collecting the
        next one.
        """
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        window = self.coalesce_ms / 1000.0
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + window
            while len(batch) < self.max_coalesce:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(
                            self._queue.get(), timeout=remaining
                        )
                    )
                except asyncio.TimeoutError:
                    break
            COALESCE_BATCH_SIZE.observe(len(batch))
            task = asyncio.create_task(self._dispatch_batch(batch))
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)

    async def _dispatch_batch(self, batch: list) -> None:
        """Send one coalesced batch to a worker; survive worker death.

        Tries every live worker once (round-robin); a
        :class:`WorkerDied` marks the casualty and re-dispatches the
        *entire* batch to the next -- the worker never acknowledged, so
        nothing was half-served.  With the whole pool dead, the batch
        is served inline on the writer's predictor: slower, never
        wrong, and ``/healthz`` makes the degradation visible.
        """
        requests = [
            {"route": route, "payload": payload}
            for route, payload, _ in batch
        ]
        loop = asyncio.get_running_loop()
        message = {"kind": "predict", "requests": requests}
        for _ in range(len(self.pool.workers)):
            worker = self.pool.next_worker()
            if worker is None:
                break
            try:
                reply = await loop.run_in_executor(
                    None, worker.call, message, self.pool.call_timeout
                )
            except WorkerDied:
                COALESCE_DISPATCHES.labels(outcome="worker_died").inc()
                continue
            if not isinstance(reply, dict) or not reply.get("ok"):
                error = (
                    reply.get("error", "worker error")
                    if isinstance(reply, dict)
                    else "worker protocol error"
                )
                self._resolve_batch(
                    batch, [{"status": 500, "body": {"error": error}}] * len(batch), None
                )
                COALESCE_DISPATCHES.labels(outcome="worker_error").inc()
                return
            self._resolve_batch(
                batch, reply["results"], reply.get("generation")
            )
            COALESCE_DISPATCHES.labels(outcome="ok").inc()
            return
        # Every worker is gone: degrade to the writer's own predictor.
        try:
            results = await loop.run_in_executor(
                None, serve_predict_requests, self.predictor, requests
            )
        except Exception as exc:
            self._resolve_batch(
                batch,
                [
                    {
                        "status": 500,
                        "body": {
                            "error": f"internal error: {type(exc).__name__}"
                        },
                    }
                ]
                * len(batch),
                None,
            )
            COALESCE_DISPATCHES.labels(outcome="fallback_error").inc()
            return
        self._resolve_batch(batch, results, self.predictor.world.generation)
        COALESCE_DISPATCHES.labels(outcome="fallback_inline").inc()

    @staticmethod
    def _resolve_batch(batch, results, generation) -> None:
        for (_, _, future), result in zip(batch, results):
            if not future.done():
                future.set_result(
                    (result["status"], result["body"], generation)
                )

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                if not await self._handle_one_request(reader, writer):
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _request_started(self) -> None:
        self._inflight += 1
        HTTP_INFLIGHT.inc()
        if self._idle is not None:
            self._idle.clear()

    def _request_finished(self) -> None:
        self._inflight -= 1
        HTTP_INFLIGHT.dec()
        if self._inflight <= 0 and self._idle is not None:
            self._idle.set()

    async def _handle_one_request(self, reader, writer) -> bool:
        """Read/serve one request; returns False to drop the connection."""
        request_line = await reader.readline()
        if not request_line or self._draining:
            return False
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return False
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        bare_route, _ = split_query_path(path)
        route = (
            bare_route
            if bare_route in GET_HANDLERS or bare_route in POST_HANDLERS
            else "<unknown>"
        )
        self._request_started()
        t0 = time.perf_counter()
        status = 0
        try:
            status, keep_alive = await self._serve_request(
                writer, method, path, headers, reader
            )
            return keep_alive and not self._draining
        finally:
            elapsed = time.perf_counter() - t0
            self._request_finished()
            HTTP_REQUESTS.labels(
                route=route, method=method, status=str(status)
            ).inc()
            HTTP_LATENCY.labels(route=route).observe(elapsed)
            if status >= 400:
                HTTP_ERRORS.labels(route=route, status=str(status)).inc()
            self._write_access_log(method, route, path, status, elapsed)

    async def _serve_request(
        self, writer, method, path, headers, reader
    ) -> tuple[int, bool]:
        """Route one request; returns ``(status, keep_alive)``.

        The error contract mirrors the threaded handler exactly: 404
        unknown route, 405 + ``Allow`` on a method mismatch, 400 for
        malformed framing/JSON/client errors, 500 + close for anything
        unexpected, and any response that leaves the body unread closes
        the connection so keep-alive clients cannot desync.
        """
        wants_close = headers.get("connection", "").lower() == "close"
        route, query = split_query_path(path)
        if method == "GET":
            if route not in GET_HANDLERS:
                return await self._reject_unknown(
                    writer, path, "POST" if route in POST_HANDLERS else None
                )
            if route == "/metrics":
                body = obs_metrics.render_prometheus().encode("utf-8")
                await self._respond(
                    writer, 200, body,
                    content_type=METRICS_CONTENT_TYPE, close=wants_close,
                )
                return 200, not wants_close
            extra = None
            try:
                if route.startswith("/query/"):
                    # Index builds/refreshes can take seconds at scale:
                    # run off the event loop, on the writer predictor.
                    loop = asyncio.get_running_loop()
                    payload = await loop.run_in_executor(
                        None, self.query_service.answer, route, query
                    )
                    extra = {
                        "X-World-Generation": str(payload["generation"])
                    }
                elif route == "/healthz":
                    payload = self._healthz()
                else:
                    payload = artifact_payload(self.predictor)
            except (ValueError, KeyError, TypeError) as exc:
                # Mirror the threaded handler's client-error contract.
                await self._respond_json(
                    writer, 400, {"error": str(exc)}, close=wants_close
                )
                return 400, not wants_close
            except Exception as exc:
                await self._respond_json(
                    writer, 500,
                    {"error": f"internal error: {type(exc).__name__}"},
                    close=True,
                )
                return 500, False
            await self._respond_json(
                writer, 200, payload, extra_headers=extra, close=wants_close
            )
            return 200, not wants_close
        if method != "POST":
            if route in GET_HANDLERS:
                return await self._reject_unknown(writer, path, "GET")
            if route in POST_HANDLERS:
                return await self._reject_unknown(writer, path, "POST")
            return await self._reject_unknown(writer, path, None)
        if route not in POST_HANDLERS:
            return await self._reject_unknown(
                writer, path, "GET" if route in GET_HANDLERS else None
            )
        path = route
        max_bytes = (
            MAX_BATCH_BODY_BYTES if path == "/predict-batch"
            else MAX_BODY_BYTES
        )
        raw_length = headers.get("content-length")
        stripped = raw_length.strip() if raw_length is not None else "0"
        if not (stripped.isascii() and stripped.isdigit()):
            await self._respond_json(
                writer, 400,
                {"error": f"invalid Content-Length header {raw_length!r}"},
                close=True,
            )
            return 400, False
        length = int(stripped)
        if length <= 0:
            await self._respond_json(
                writer, 400, {"error": "request body required"},
                close=wants_close,
            )
            return 400, not wants_close
        if length > max_bytes:
            await self._respond_json(
                writer, 400,
                {"error": f"request body exceeds {max_bytes} bytes"},
                close=True,
            )
            return 400, False
        raw = await asyncio.wait_for(
            reader.readexactly(length), timeout=BODY_READ_TIMEOUT
        )
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            await self._respond_json(
                writer, 400, {"error": f"invalid JSON body: {exc}"},
                close=wants_close,
            )
            return 400, not wants_close
        try:
            status, body, extra = await self._handle_post(path, payload)
        except (ValueError, KeyError, TypeError) as exc:
            status, body, extra = 400, {"error": str(exc)}, None
        except asyncio.TimeoutError:
            status, body, extra = (
                500, {"error": "internal error: TimeoutError"}, None,
            )
        except Exception as exc:
            await self._respond_json(
                writer, 500,
                {"error": f"internal error: {type(exc).__name__}"},
                close=True,
            )
            return 500, False
        await self._respond_json(
            writer, status, body, extra_headers=extra, close=wants_close
        )
        return status, not wants_close

    async def _handle_post(self, path, payload):
        """Dispatch one parsed POST body; returns (status, body, headers)."""
        loop = asyncio.get_running_loop()
        if path in _WORKER_ROUTES:
            assert self._queue is not None
            future = loop.create_future()
            await self._queue.put((path, payload, future))
            status, body, generation = await future
            extra = (
                {"X-World-Generation": str(generation)}
                if generation is not None
                else None
            )
            return status, body, extra
        if path == "/ingest":
            return await self._ingest(payload)
        if path == "/profile":
            body = await loop.run_in_executor(
                None, profile_payload, self.predictor, payload
            )
            return 200, body, None
        if path == "/explain-edge":
            body = await loop.run_in_executor(
                None, explain_edge_payload, self.predictor, payload
            )
            return 200, body, None
        raise ValueError(f"unroutable path {path!r}")  # unreachable

    async def _ingest(self, payload):
        """The single-writer path: apply, journal, publish, respond.

        Serialized on an asyncio lock (one delta at a time, matching
        the chained-hash discipline), applied on the writer predictor
        in an executor thread, then published to the store so workers
        adopt it.  The response is built only after the publish: an
        acknowledged ingest is always visible to every future reader.
        """
        from repro.serving.server import apply_ingest

        assert self._ingest_lock is not None
        loop = asyncio.get_running_loop()
        async with self._ingest_lock:
            def apply_and_publish():
                world, delta = apply_ingest(
                    self.predictor, payload, journal=self.journal
                )
                self.store.publish(
                    world, label_users=delta.label_users.tolist()
                )
                return ingest_response(
                    self.predictor, world, journal=self.journal
                )

            body = await loop.run_in_executor(None, apply_and_publish)
        return (
            200, body,
            {"X-World-Generation": str(body["generation"])},
        )

    def _healthz(self) -> dict:
        return healthz_payload(
            self.predictor,
            journal=self.journal,
            trace_buffer=None,
            started_unix=self.started_unix,
            serving={
                "mode": "multiprocess",
                "workers": len(self.pool.workers),
                "coalesce_ms": self.coalesce_ms,
                "store": self.store.stats(),
                "worker_info": self.pool.snapshot(),
            },
        )

    # -- response writing --------------------------------------------------

    async def _reject_unknown(self, writer, path, allowed):
        if allowed is not None:
            await self._respond_json(
                writer, 405,
                {"error": f"method not allowed for {path}; use {allowed}"},
                extra_headers={"Allow": allowed},
                close=True,
            )
            return 405, False
        await self._respond_json(
            writer, 404, {"error": f"unknown route {path}"}, close=True
        )
        return 404, False

    async def _respond_json(
        self, writer, status, payload, extra_headers=None, close=False
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        await self._respond(
            writer, status, body, extra_headers=extra_headers, close=close
        )

    async def _respond(
        self,
        writer,
        status,
        body: bytes,
        content_type: str = "application/json",
        extra_headers=None,
        close: bool = False,
    ) -> None:
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Server: repro-serve/1",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        if close:
            head.append("Connection: close")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()

    def _write_access_log(
        self, method, route, path, status, elapsed
    ) -> None:
        if self.access_log is None:
            return
        line = json.dumps(
            {
                "ts": round(time.time(), 6),
                "method": method,
                "route": route,
                "path": path,
                "status": status,
                "latency_ms": round(elapsed * 1e3, 3),
                "trace_id": "",
            }
        )
        try:
            self.access_log.write(line + "\n")
            self.access_log.flush()
        except (OSError, ValueError):
            pass


def make_frontend(
    predictor: FoldInPredictor,
    store: WorldStore,
    n_workers: int,
    host: str = "127.0.0.1",
    port: int = 8000,
    coalesce_ms: float = 2.0,
    max_coalesce: int = 64,
    journal=None,
    access_log=None,
    quiet: bool = True,
) -> AsyncFrontend:
    """Publish the writer's world, fork the pool, build the front end.

    Ordering matters: the current generation must be published (and the
    writer lock held) before the fork, so every worker finds a world to
    attach at birth, and the fork must happen before any event loop
    exists in this process.
    """
    store.lock_writer()
    store.publish(predictor.world)
    pool = WorkerPool(n_workers, predictor, store)
    return AsyncFrontend(
        predictor,
        store,
        pool,
        host=host,
        port=port,
        coalesce_ms=coalesce_ms,
        max_coalesce=max_coalesce,
        journal=journal,
        access_log=access_log,
        quiet=quiet,
    )


class FrontendThread:
    """Run an :class:`AsyncFrontend` on a background event loop.

    The harness tests and ``tools/loadgen.py`` use this to stand a
    multi-process server up inside one Python process: the event loop
    lives on a daemon thread, ``port`` is known once ``start`` returns,
    and ``stop`` drains gracefully from any thread.
    """

    def __init__(self, frontend: AsyncFrontend):
        self.frontend = frontend
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = None

    @property
    def port(self) -> int:
        """The bound port (valid after start)."""
        return self.frontend.port

    def start(self, timeout: float = 30.0) -> "FrontendThread":
        """Start the loop thread; block until the socket is bound."""
        import threading

        ready = threading.Event()

        def run_loop() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.frontend.start())
            ready.set()
            loop.run_forever()
            loop.close()

        self._thread = threading.Thread(
            target=run_loop, name="repro-frontend", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("frontend failed to start in time")
        return self

    def stop(self, deadline_seconds: float = 10.0) -> None:
        """Stop the loop and join the thread."""
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.frontend.drain(deadline_seconds), self._loop
        )
        try:
            future.result(timeout=deadline_seconds + 10.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10.0)
