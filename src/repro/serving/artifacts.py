"""Versioned on-disk model artifacts: ``save_result`` / ``load_result``.

A fitted :class:`~repro.core.model.MLPResult` is the expensive thing in
this codebase -- minutes of Gibbs sweeps -- yet before this module it
died with the process.  An **artifact** is one compressed
``.mlp.npz`` file (a NumPy zip archive, no pickling) that round-trips a
result *bit-for-bit*:

- the embedded dataset (gazetteer included), reusing the exact
  :mod:`repro.data.io` wire payload;
- the fitted params, profiles, explanations, convergence trace and
  power-law history;
- the frozen venue-side posterior table serving fold-in scores against;
- for multi-chain fits, the full :class:`~repro.engine.pool.PooledPosterior`
  (per-chain mean counts, traces, law histories, final states and edge
  tallies).

The format is versioned like the dataset format: loading an unknown
version or a corrupted file raises :class:`ArtifactError` loudly rather
than guessing.  Every artifact carries a deterministic ``artifact_id``
(a content hash) that the serving cache keys on.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.convergence import ConvergenceTrace, IterationStats
from repro.core.model import MLPResult
from repro.core.params import MLPParams
from repro.core.results import (
    EdgeExplanation,
    LocationProfile,
    TweetExplanation,
)
from repro.core.state import EdgeAssignmentTally
from repro.data.columnar import (
    WORLD_ARRAY_KEYS,
    ColumnarWorld,
    compile_world,
    register_world,
)
from repro.data.io import dataset_from_payload, dataset_to_payload
from repro.engine.pool import ChainResult, PooledPosterior
from repro.mathx.powerlaw import PowerLaw

#: Artifact format version written by this build; bump on any layout
#: change.  Version 2 added the persisted columnar world
#: (``world_*`` arrays + ``world_hash`` metadata).
ARTIFACT_VERSION = 2

#: Versions this build can read.  Version-1 artifacts (no persisted
#: world) load fine -- the world is recompiled from the dataset on
#: first use.
SUPPORTED_ARTIFACT_VERSIONS = (1, 2)

#: Conventional artifact file suffix (not enforced).
ARTIFACT_SUFFIX = ".mlp.npz"


class ArtifactError(ValueError):
    """A model artifact is corrupted, truncated, or of an unknown version."""


# -- packing helpers ------------------------------------------------------


def _pack_profiles(
    profiles: tuple[LocationProfile, ...],
) -> dict[str, np.ndarray]:
    return {
        "prof_counts": np.array(
            [len(p.entries) for p in profiles], dtype=np.int64
        ),
        "prof_locs": np.array(
            [loc for p in profiles for loc, _ in p.entries], dtype=np.int64
        ),
        "prof_probs": np.array(
            [pr for p in profiles for _, pr in p.entries], dtype=np.float64
        ),
    }


def _unpack_profiles(data) -> tuple[LocationProfile, ...]:
    counts = data["prof_counts"]
    locs = data["prof_locs"].tolist()
    probs = data["prof_probs"].tolist()
    profiles = []
    pos = 0
    for uid, n in enumerate(counts.tolist()):
        entries = tuple(
            (locs[pos + i], probs[pos + i]) for i in range(n)
        )
        pos += n
        profiles.append(LocationProfile(user_id=uid, entries=entries))
    return tuple(profiles)


def _pack_explanations(
    explanations: tuple[EdgeExplanation, ...],
) -> dict[str, np.ndarray]:
    return {
        "expl_edge": np.array([e.edge_index for e in explanations], dtype=np.int64),
        "expl_follower": np.array([e.follower for e in explanations], dtype=np.int64),
        "expl_friend": np.array([e.friend for e in explanations], dtype=np.int64),
        "expl_x": np.array([e.x for e in explanations], dtype=np.int64),
        "expl_y": np.array([e.y for e in explanations], dtype=np.int64),
        "expl_support": np.array([e.support for e in explanations], dtype=np.float64),
        "expl_noise": np.array(
            [e.noise_probability for e in explanations], dtype=np.float64
        ),
    }


def _unpack_explanations(data) -> tuple[EdgeExplanation, ...]:
    return tuple(
        EdgeExplanation(
            edge_index=int(e),
            follower=int(fo),
            friend=int(fr),
            x=int(x),
            y=int(y),
            support=float(s),
            noise_probability=float(n),
        )
        for e, fo, fr, x, y, s, n in zip(
            data["expl_edge"],
            data["expl_follower"],
            data["expl_friend"],
            data["expl_x"],
            data["expl_y"],
            data["expl_support"],
            data["expl_noise"],
        )
    )


def _pack_tweet_explanations(
    explanations: tuple[TweetExplanation, ...],
) -> dict[str, np.ndarray]:
    return {
        "texpl_edge": np.array([e.edge_index for e in explanations], dtype=np.int64),
        "texpl_user": np.array([e.user for e in explanations], dtype=np.int64),
        "texpl_venue": np.array([e.venue_id for e in explanations], dtype=np.int64),
        "texpl_z": np.array([e.z for e in explanations], dtype=np.int64),
        "texpl_support": np.array([e.support for e in explanations], dtype=np.float64),
        "texpl_noise": np.array(
            [e.noise_probability for e in explanations], dtype=np.float64
        ),
    }


def _unpack_tweet_explanations(data) -> tuple[TweetExplanation, ...]:
    return tuple(
        TweetExplanation(
            edge_index=int(e),
            user=int(u),
            venue_id=int(v),
            z=int(z),
            support=float(s),
            noise_probability=float(n),
        )
        for e, u, v, z, s, n in zip(
            data["texpl_edge"],
            data["texpl_user"],
            data["texpl_venue"],
            data["texpl_z"],
            data["texpl_support"],
            data["texpl_noise"],
        )
    )


def _pack_trace(trace: ConvergenceTrace, prefix: str) -> dict[str, np.ndarray]:
    stats = trace.iterations
    metrics = np.array(
        [0.0 if s.metric is None else s.metric for s in stats],
        dtype=np.float64,
    )
    return {
        f"{prefix}iter": np.array([s.iteration for s in stats], dtype=np.int64),
        f"{prefix}changed": np.array(
            [s.changed_fraction for s in stats], dtype=np.float64
        ),
        f"{prefix}noise_f": np.array(
            [s.noise_following_fraction for s in stats], dtype=np.float64
        ),
        f"{prefix}noise_t": np.array(
            [s.noise_tweeting_fraction for s in stats], dtype=np.float64
        ),
        f"{prefix}metric": metrics,
        f"{prefix}metric_mask": np.array(
            [s.metric is not None for s in stats], dtype=np.bool_
        ),
    }


def _unpack_trace(data, prefix: str) -> ConvergenceTrace:
    trace = ConvergenceTrace()
    for it, ch, nf, nt, metric, has_metric in zip(
        data[f"{prefix}iter"].tolist(),
        data[f"{prefix}changed"].tolist(),
        data[f"{prefix}noise_f"].tolist(),
        data[f"{prefix}noise_t"].tolist(),
        data[f"{prefix}metric"].tolist(),
        data[f"{prefix}metric_mask"].tolist(),
    ):
        trace.append(
            IterationStats(
                iteration=it,
                changed_fraction=ch,
                noise_following_fraction=nf,
                noise_tweeting_fraction=nt,
                metric=metric if has_metric else None,
            )
        )
    return trace


def _pack_laws(
    laws: tuple[PowerLaw, ...], prefix: str
) -> dict[str, np.ndarray]:
    return {
        f"{prefix}alpha": np.array([l.alpha for l in laws], dtype=np.float64),
        f"{prefix}beta": np.array([l.beta for l in laws], dtype=np.float64),
        f"{prefix}minx": np.array([l.min_x for l in laws], dtype=np.float64),
    }


def _unpack_laws(data, prefix: str) -> tuple[PowerLaw, ...]:
    return tuple(
        PowerLaw(alpha=float(a), beta=float(b), min_x=float(m))
        for a, b, m in zip(
            data[f"{prefix}alpha"], data[f"{prefix}beta"], data[f"{prefix}minx"]
        )
    )


_FINAL_STATE_KEYS = ("mu", "x", "y", "nu", "z")
_TALLY_KEYS = (
    "f_edge",
    "f_x",
    "f_y",
    "f_count",
    "z_edge",
    "z_z",
    "z_count",
    "mu_noise",
    "nu_noise",
    "samples",
)


def _pack_posterior(posterior: PooledPosterior) -> tuple[dict, dict]:
    """Posterior -> (meta fragment, arrays)."""
    arrays: dict[str, np.ndarray] = {}
    chain_meta = []
    for chain in posterior.chains:
        c = chain.chain_index
        p = f"c{c}_"
        arrays[f"{p}mean_counts"] = chain.mean_theta_counts
        if chain.mean_venue_counts is not None:
            arrays[f"{p}venue_counts"] = chain.mean_venue_counts
        arrays.update(_pack_trace(chain.trace, f"{p}trace_"))
        arrays.update(_pack_laws(chain.law_history, f"{p}law_"))
        for key in _FINAL_STATE_KEYS:
            arrays[f"{p}fs_{key}"] = chain.final_state[key]
        if chain.edge_tally is not None:
            for key, arr in chain.edge_tally.to_arrays().items():
                arrays[f"{p}tally_{key}"] = arr
        chain_meta.append(
            {
                "chain_index": chain.chain_index,
                "seed": chain.seed,
                "has_tally": chain.edge_tally is not None,
                "has_venue_counts": chain.mean_venue_counts is not None,
            }
        )
    return {"burn_in": posterior.burn_in, "chains": chain_meta}, arrays


def _unpack_posterior(meta: dict, data) -> PooledPosterior:
    chains = []
    for info in meta["chains"]:
        c = info["chain_index"]
        p = f"c{c}_"
        tally = None
        if info["has_tally"]:
            tally = EdgeAssignmentTally.from_arrays(
                {key: data[f"{p}tally_{key}"] for key in _TALLY_KEYS}
            )
        chains.append(
            ChainResult(
                chain_index=c,
                seed=info["seed"],
                mean_theta_counts=data[f"{p}mean_counts"],
                trace=_unpack_trace(data, f"{p}trace_"),
                law_history=_unpack_laws(data, f"{p}law_"),
                edge_tally=tally,
                final_state={
                    key: data[f"{p}fs_{key}"] for key in _FINAL_STATE_KEYS
                },
                mean_venue_counts=(
                    data[f"{p}venue_counts"]
                    if info["has_venue_counts"]
                    else None
                ),
            )
        )
    return PooledPosterior(chains=tuple(chains), burn_in=meta["burn_in"])


# -- public API -----------------------------------------------------------


def compute_artifact_id(
    dataset_json: str, params_json: str, arrays: dict[str, np.ndarray]
) -> str:
    """Deterministic content hash identifying an artifact (cache key)."""
    digest = hashlib.sha256()
    digest.update(dataset_json.encode("utf-8"))
    digest.update(params_json.encode("utf-8"))
    for key in sorted(arrays):
        digest.update(key.encode("utf-8"))
        digest.update(np.ascontiguousarray(arrays[key]).tobytes())
    return digest.hexdigest()[:16]


def save_result(result: MLPResult, path: str | Path) -> str:
    """Persist a fitted result as one compressed artifact file.

    Returns the artifact id.  The conventional suffix is ``.mlp.npz``
    but any path is accepted (the file is written exactly where asked).
    """
    dataset_json = json.dumps(dataset_to_payload(result.dataset))
    params_json = json.dumps(asdict(result.params), sort_keys=True)

    arrays: dict[str, np.ndarray] = {}
    arrays.update(_pack_profiles(result.profiles))
    arrays.update(_pack_explanations(result.explanations))
    arrays.update(_pack_tweet_explanations(result.tweet_explanations))
    arrays.update(_pack_trace(result.trace, "trace_"))
    arrays.update(_pack_laws(result.law_history, "law_"))
    if result.venue_counts is not None:
        arrays["venue_counts"] = result.venue_counts

    # Persist the compiled columnar world (memoized: a result fitted in
    # this process reuses the fit's world), so loading the artifact
    # re-attaches the index instead of re-deriving it.
    world = compile_world(result.dataset)
    for key, arr in world.to_arrays().items():
        arrays[f"world_{key}"] = arr

    posterior_meta = None
    if result.posterior is not None:
        posterior_meta, posterior_arrays = _pack_posterior(result.posterior)
        arrays.update(posterior_arrays)

    artifact_id = compute_artifact_id(dataset_json, params_json, arrays)
    meta = {
        "format_version": ARTIFACT_VERSION,
        "artifact_id": artifact_id,
        "params": json.loads(params_json),
        "n_users": result.dataset.n_users,
        "n_locations": len(result.dataset.gazetteer),
        "n_venues": len(result.dataset.gazetteer.venue_vocabulary),
        "has_venue_counts": result.venue_counts is not None,
        "world_hash": world.content_hash,
        "posterior": posterior_meta,
    }
    # Write through an open handle: np.savez would otherwise append
    # ".npz" to paths that lack it, silently moving the artifact.
    with open(path, "wb") as fh:
        np.savez_compressed(
            fh,
            meta=np.array(json.dumps(meta)),
            dataset_json=np.array(dataset_json),
            **arrays,
        )
    return artifact_id


def _open_artifact(path: str | Path):
    """np.load with corruption mapped to :class:`ArtifactError`."""
    try:
        data = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise ArtifactError(
            f"{path}: not a readable model artifact ({exc})"
        ) from exc
    if "meta" not in data.files:
        raise ArtifactError(
            f"{path}: not a model artifact (no metadata record)"
        )
    try:
        meta = json.loads(str(data["meta"][()]))
    except (json.JSONDecodeError, ValueError) as exc:
        raise ArtifactError(f"{path}: corrupted artifact metadata") from exc
    version = meta.get("format_version")
    if version not in SUPPORTED_ARTIFACT_VERSIONS:
        raise ArtifactError(
            f"{path}: unsupported artifact format version {version!r} "
            f"(this build reads versions {SUPPORTED_ARTIFACT_VERSIONS})"
        )
    return meta, data


def artifact_metadata(path: str | Path) -> dict:
    """Read an artifact's metadata (id, params, sizes) without arrays."""
    meta, data = _open_artifact(path)
    data.close()
    return meta


def load_result(path: str | Path) -> MLPResult:
    """Load an artifact back into a bit-identical :class:`MLPResult`."""
    meta, data = _open_artifact(path)
    try:
        dataset = dataset_from_payload(json.loads(str(data["dataset_json"][()])))
        if meta.get("world_hash") is not None:
            # Re-attach the persisted columnar world: consumers (fold-in,
            # evaluation) then share the saved index with zero re-indexing.
            world = ColumnarWorld.from_arrays(
                dataset.gazetteer,
                {key: data[f"world_{key}"] for key in WORLD_ARRAY_KEYS},
            )
            if world.content_hash != meta["world_hash"]:
                raise ArtifactError(
                    f"{path}: persisted columnar world does not match its "
                    "recorded content hash (corrupted artifact)"
                )
            register_world(dataset, world)
        params = MLPParams(**meta["params"])
        posterior = (
            _unpack_posterior(meta["posterior"], data)
            if meta["posterior"] is not None
            else None
        )
        result = MLPResult(
            dataset=dataset,
            params=params,
            profiles=_unpack_profiles(data),
            explanations=_unpack_explanations(data),
            tweet_explanations=_unpack_tweet_explanations(data),
            trace=_unpack_trace(data, "trace_"),
            law_history=_unpack_laws(data, "law_"),
            posterior=posterior,
            venue_counts=(
                data["venue_counts"] if meta["has_venue_counts"] else None
            ),
        )
    except KeyError as exc:
        raise ArtifactError(
            f"{path}: truncated artifact (missing record {exc})"
        ) from exc
    finally:
        data.close()
    return result
