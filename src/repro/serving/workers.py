"""Predictor worker processes: mmap readers behind the async front end.

Each worker is a forked child running the *existing* fold-in stack
unchanged -- the same :class:`~repro.serving.foldin.FoldInPredictor`,
the same sequential/batch solvers, the same response builders as the
threaded server (:mod:`repro.serving.server`).  What changes is only
where the world comes from: instead of sharing the parent's address
space, a worker attaches generations published through a
:class:`~repro.serving.store.WorldStore` by mmap, so N workers cost one
page-cache image of the arenas, not N copies, and no arena is ever
pickled across the process boundary.

The fork inheritance is deliberate: workers are forked *before* the
event loop starts, so each child gets the frozen posterior (law matrix,
psi, CSR profiles -- all read-only after construction) copy-on-write
for free, and only the evidence world flows through the store.

Protocol (length-delimited pickles over a ``multiprocessing.Pipe``;
one request in flight per worker -- the front end is the only caller
and serializes on :class:`WorkerHandle`):

- ``{"kind": "predict", "requests": [{"route", "payload"}, ...]}`` --
  one coalesced micro-batch.  The worker syncs to the newest published
  generation first (RCU read-side swap via
  :meth:`FoldInPredictor.attach_world`, invalidating exactly the
  ``label_users`` union of the generations skipped), then resolves
  every request's specs and folds them into **one**
  ``predict_batch`` call -- the coalescing win: k requests of one spec
  each cost one batch-engine solve, not k sequential ones.  Replies
  with per-request ``{"status", "body"}`` plus the generation served;
- ``{"kind": "status"}`` -- pid + attached generation (healthz);
- ``{"kind": "stop"}`` -- clean exit.

Worker death is the front end's problem by design: a ``kill -9`` shows
up here as a broken pipe / dead process, surfaces as
:class:`WorkerDied`, and the front end re-dispatches the batch to a
survivor -- requests degrade, state never corrupts (the store is
read-only to workers; a dying reader can leave nothing behind).
"""

from __future__ import annotations

import os
import threading
import time

from repro.obs import metrics as obs_metrics
from repro.serving.foldin import FoldInPredictor, prediction_payload
from repro.serving.server import require_object
from repro.serving.store import WorldStore

_REG = obs_metrics.get_registry()
WORKER_BATCHES = _REG.counter(
    "repro_worker_batches_total",
    "Coalesced micro-batches dispatched, by worker",
    labelnames=("worker",),
)
WORKER_DEATHS = _REG.counter(
    "repro_worker_deaths_total",
    "Predictor workers observed dead by the dispatcher",
)
WORKER_GENERATION_SWAPS = _REG.counter(
    "repro_worker_generation_swaps_total",
    "RCU generation adoptions performed by workers "
    "(observed process-locally; the exported value is the parent's)",
)

#: How long the dispatcher waits for a worker's reply before declaring
#: it dead.  Generous: a micro-batch is a handful of fold-in solves,
#: normally milliseconds.
DEFAULT_CALL_TIMEOUT = 60.0


class WorkerDied(RuntimeError):
    """The worker did not answer (killed, crashed, or hung past timeout)."""


def sync_generation(predictor: FoldInPredictor, store: WorldStore, lease):
    """Adopt the newest published generation; returns the live lease.

    The reader half of the RCU protocol, run between micro-batches so a
    batch is always served against one coherent generation.  Skipping
    several generations at once invalidates the union of their
    ``label_users`` (surgical, same policy as single-process
    ``refresh``); if any skipped generation's metadata was already
    retired, provenance is unknown and the whole prediction cache is
    dropped instead.  Cheap in steady state: one ``stat`` on the store
    manifest.
    """
    current = store.current_generation()
    if current is None or current == lease.generation:
        return lease
    new_lease = store.acquire()
    if new_lease.generation == lease.generation:
        new_lease.release()
        return lease
    invalidate = store.label_users_between(
        lease.generation, new_lease.generation
    )
    predictor.attach_world(new_lease.world, invalidate_users=invalidate)
    lease.release()
    WORKER_GENERATION_SWAPS.inc()
    return new_lease


def serve_predict_requests(
    predictor: FoldInPredictor, requests: list[dict]
) -> list[dict]:
    """Serve one coalesced micro-batch through a single solver pass.

    Every request's specs are resolved, concatenated, and handed to
    ``predict_batch`` **once** -- signature dedup and the batch-engine
    crossover then work across the whole micro-batch, which is where
    coalescing buys throughput.  Each request still gets exactly the
    body the threaded server would have built (same
    ``prediction_payload`` rendering, same error strings); only the
    ``cached`` marker can differ, because a spec solved for one request
    in the batch is a cache hit for its duplicates.  Per-request client
    errors 400 individually; they never fail the batch.
    """
    parsed: list[tuple] = []
    merged: list = []
    for request in requests:
        route = request.get("route")
        payload = request.get("payload")
        try:
            if route == "/predict-home":
                body = require_object(payload)
                users = body.get("users")
                if not isinstance(users, list) or not users:
                    raise ValueError(
                        '"users" must be a non-empty list of specs'
                    )
                top_k = int(body.get("top_k", 3))
                specs = [predictor.resolve_request(e) for e in users]
                parsed.append(("home", top_k, len(merged), len(specs)))
                merged.extend(specs)
            elif route == "/predict-batch":
                if not isinstance(payload, list):
                    raise ValueError(
                        "request body must be a JSON array of user specs"
                    )
                specs = [predictor.resolve_request(e) for e in payload]
                parsed.append(("batch", None, len(merged), len(specs)))
                merged.extend(specs)
            else:
                raise ValueError(f"worker cannot serve route {route!r}")
        except (ValueError, KeyError, TypeError) as exc:
            parsed.append(("error", {"error": str(exc)}, None, None))
    predictions = predictor.predict_batch(merged)
    gaz = predictor.dataset.gazetteer
    results: list[dict] = []
    for kind, arg, start, count in parsed:
        if kind == "error":
            results.append({"status": 400, "body": arg})
            continue
        chunk = predictions[start : start + count]
        if kind == "home":
            results.append(
                {
                    "status": 200,
                    "body": {
                        "artifact_id": predictor.artifact_id,
                        "predictions": [
                            prediction_payload(p, gaz, top_k=arg)
                            for p in chunk
                        ],
                    },
                }
            )
        else:
            results.append(
                {
                    "status": 200,
                    "body": [prediction_payload(p, gaz) for p in chunk],
                }
            )
    return results


def worker_main(
    worker_id: int,
    conn,
    parent_conn,
    predictor: FoldInPredictor,
    store: WorldStore,
) -> None:
    """A worker process's entire life: attach, serve, exit on EOF.

    ``parent_conn`` is the parent's pipe end, inherited across the
    fork; closing it here is what makes the parent's death (or a
    deliberate ``stop``/close) observable as EOF instead of a hang.
    """
    if parent_conn is not None:
        parent_conn.close()
    lease = store.acquire()
    predictor.attach_world(lease.world, invalidate_users=())
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message.get("kind")
        if kind == "stop":
            try:
                conn.send({"ok": True, "worker": worker_id})
            except (BrokenPipeError, OSError):
                pass
            break
        try:
            lease = sync_generation(predictor, store, lease)
            if kind == "predict":
                results = serve_predict_requests(
                    predictor, message.get("requests", [])
                )
                reply = {
                    "ok": True,
                    "worker": worker_id,
                    "pid": os.getpid(),
                    "generation": lease.generation,
                    "world_hash": predictor.world.content_hash,
                    "solves": predictor.solve_count,
                    "results": results,
                }
            elif kind == "status":
                reply = {
                    "ok": True,
                    "worker": worker_id,
                    "pid": os.getpid(),
                    "generation": lease.generation,
                    "solves": predictor.solve_count,
                }
            else:
                reply = {
                    "ok": False,
                    "worker": worker_id,
                    "error": f"unknown message kind {kind!r}",
                }
        except Exception as exc:  # the reply, not the process, fails
            reply = {
                "ok": False,
                "worker": worker_id,
                "pid": os.getpid(),
                "error": f"{type(exc).__name__}: {exc}",
            }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break


class WorkerHandle:
    """The parent's view of one worker: pipe, process, liveness."""

    def __init__(self, worker_id: int, process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.alive = True
        self.generation: int | None = None
        self.dispatches = 0
        self._mutex = threading.Lock()
        self._batches = WORKER_BATCHES.labels(worker=str(worker_id))

    @property
    def pid(self) -> int | None:
        """The worker process pid (None before spawn)."""
        return self.process.pid

    def _mark_dead(self) -> None:
        if self.alive:
            self.alive = False
            WORKER_DEATHS.inc()

    def call(self, message: dict, timeout: float = DEFAULT_CALL_TIMEOUT):
        """One request/reply round trip; raises :class:`WorkerDied`.

        Serialized per worker (one request in flight); a broken pipe,
        EOF, dead process, or blown timeout all mark the worker dead --
        the caller re-dispatches elsewhere.  A worker that answers
        after its timeout was declared dead stays dead: its pipe is no
        longer trusted to be aligned with the request stream.
        """
        with self._mutex:
            if not self.alive:
                raise WorkerDied(f"worker {self.worker_id} is dead")
            try:
                self.conn.send(message)
            except (BrokenPipeError, OSError) as exc:
                self._mark_dead()
                raise WorkerDied(
                    f"worker {self.worker_id}: pipe closed"
                ) from exc
            deadline = time.monotonic() + timeout
            while True:
                try:
                    if self.conn.poll(0.05):
                        reply = self.conn.recv()
                        break
                except (EOFError, OSError) as exc:
                    self._mark_dead()
                    raise WorkerDied(
                        f"worker {self.worker_id}: connection lost"
                    ) from exc
                if not self.process.is_alive():
                    # One last poll: the reply may have raced the exit.
                    try:
                        if self.conn.poll(0):
                            reply = self.conn.recv()
                            break
                    except (EOFError, OSError):
                        pass
                    self._mark_dead()
                    raise WorkerDied(
                        f"worker {self.worker_id} (pid {self.pid}) died"
                    )
                if time.monotonic() > deadline:
                    self._mark_dead()
                    raise WorkerDied(
                        f"worker {self.worker_id}: no reply in {timeout}s"
                    )
            if message.get("kind") == "predict":
                self.dispatches += 1
                self._batches.inc()
            if isinstance(reply, dict) and "generation" in reply:
                self.generation = reply["generation"]
            return reply

    def stop(self, timeout: float = 5.0) -> None:
        """Terminate the worker process and join it."""
        if self.alive and self.process.is_alive():
            try:
                self.call({"kind": "stop"}, timeout=timeout)
            except WorkerDied:
                pass
        self.alive = False
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)


class WorkerPool:
    """N forked predictor workers sharing one store by mmap."""

    def __init__(
        self,
        n_workers: int,
        predictor: FoldInPredictor,
        store: WorldStore,
        call_timeout: float = DEFAULT_CALL_TIMEOUT,
    ):
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        import multiprocessing

        # Fork, not spawn: the children inherit the frozen posterior
        # copy-on-write instead of re-unpickling it, and nothing about
        # the predictor survives a spawn-pickle anyway (locks, caches).
        ctx = multiprocessing.get_context("fork")
        self.call_timeout = call_timeout
        self.workers: list[WorkerHandle] = []
        self._rr = 0
        self._rr_lock = threading.Lock()
        for worker_id in range(n_workers):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=worker_main,
                args=(worker_id, child_conn, parent_conn, predictor, store),
                daemon=True,
                name=f"repro-worker-{worker_id}",
            )
            process.start()
            # The child holds its own copy of this end; keeping ours
            # open would mask worker death as a never-EOF pipe.
            child_conn.close()
            self.workers.append(WorkerHandle(worker_id, process, parent_conn))

    def alive_workers(self) -> list[WorkerHandle]:
        """Handles of workers currently alive."""
        return [w for w in self.workers if w.alive]

    def next_worker(self) -> WorkerHandle | None:
        """Round-robin over live workers (None when all are dead)."""
        with self._rr_lock:
            alive = self.alive_workers()
            if not alive:
                return None
            worker = alive[self._rr % len(alive)]
            self._rr += 1
            return worker

    def snapshot(self) -> list[dict]:
        """Per-worker healthz rows, from parent-side state (non-blocking)."""
        return [
            {
                "worker": w.worker_id,
                "pid": w.pid,
                "alive": w.alive and w.process.is_alive(),
                "generation": w.generation,
                "dispatches": w.dispatches,
            }
            for w in self.workers
        ]

    def stop_all(self) -> None:
        """Stop every worker in the pool."""
        for worker in self.workers:
            worker.stop()
