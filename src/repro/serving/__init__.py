"""Serving layer: persistent model artifacts + online fold-in inference.

This package turns a fitted :class:`~repro.core.model.MLPResult` from a
process-lifetime object into a served product:

- :mod:`repro.serving.artifacts` -- versioned compressed ``.mlp.npz``
  artifacts that round-trip a result (multi-chain posteriors included)
  bit-for-bit;
- :mod:`repro.serving.foldin` -- deterministic collapsed fold-in
  scoring of *new* users against the frozen posterior, with an LRU
  result cache;
- :mod:`repro.serving.batch` -- the vectorized batch fold-in engine:
  whole populations scored in one numpy pass, bit-identical to the
  sequential path (``predict_batch`` delegates to it automatically);
- :mod:`repro.serving.cache` -- the thread-safe LRU map behind it;
- :mod:`repro.serving.server` -- a stdlib JSON-over-HTTP inference
  server (``repro serve``) exposing predict-home / predict-batch /
  profile / explain-edge / ingest;
- :mod:`repro.serving.store` -- the generation-versioned
  :class:`WorldStore`: a single writer publishes each world as
  mmap-backed read-only arenas, readers acquire/release generations
  RCU-style;
- :mod:`repro.serving.workers` / :mod:`repro.serving.frontend` -- the
  multi-process topology (``repro serve --workers N``): forked
  predictor workers attached to the store by mmap behind an asyncio
  front end that micro-batches predict traffic (``--coalesce-ms``).

Worlds served here are *live*: ``FoldInPredictor.refresh(delta)``
splices a :class:`~repro.data.delta.WorldDelta` of arrivals into the
served world in O(|delta| + touched rows) -- no artifact reload -- and
invalidates only the cached predictions the delta actually staled
(``POST /ingest`` is the HTTP face of it, ``repro ingest`` the offline
streamer).

Typical flow::

    result = MLPModel(params).fit(dataset)
    artifact_id = save_result(result, "model.mlp.npz")

    predictor = FoldInPredictor(
        load_result("model.mlp.npz"), artifact_id=artifact_id
    )
    spec = UserSpec(friends=(3, 17), venues=(42,))
    predictor.predict(spec).home

    make_server(predictor, port=8000).serve_forever()
"""

from repro.serving.artifacts import (
    ARTIFACT_SUFFIX,
    ARTIFACT_VERSION,
    ArtifactError,
    artifact_metadata,
    load_result,
    save_result,
)
from repro.serving.batch import BatchFoldInEngine, score_population
from repro.serving.cache import LRUCache
from repro.serving.foldin import (
    FoldInEdgeExplanation,
    FoldInPrediction,
    FoldInPredictor,
    UserSpec,
    prediction_payload,
)
from repro.serving.server import ServingServer, make_server
from repro.serving.store import StoreError, WorldLease, WorldStore

__all__ = [
    "ARTIFACT_SUFFIX",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "BatchFoldInEngine",
    "FoldInEdgeExplanation",
    "FoldInPrediction",
    "FoldInPredictor",
    "LRUCache",
    "ServingServer",
    "StoreError",
    "UserSpec",
    "WorldLease",
    "WorldStore",
    "artifact_metadata",
    "load_result",
    "make_server",
    "prediction_payload",
    "save_result",
    "score_population",
]
