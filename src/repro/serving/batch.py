"""Population-scale batch fold-in: score N users in one numpy pass.

The sequential serving path (:meth:`FoldInPredictor.predict`) runs one
fixed-point solve per user; profiling the 95% unlabeled population of a
50k-user world that way is 50k sequential solves, each a string of tiny
numpy calls whose interpreter overhead dwarfs the arithmetic.  This
module lowers a whole list of :class:`~repro.serving.foldin.UserSpec`
into one flat **spec arena** -- the same array-native treatment
:mod:`repro.data.columnar` gives datasets -- and iterates the collapsed
fold-in fixed point for *all* users simultaneously:

- **candidate CSR**: every spec's Sec. 4.3 candidacy vector, built in
  one :func:`~repro.data.columnar.build_unique_csr` pass over
  (spec, location) evidence pairs (observed homes, labeled neighbours'
  homes via the world's user table, venue referents via the world's
  referent CSR); specs with no candidacy evidence splice in the full
  gazetteer exactly like the sequential path;
- **relationship arena**: one row per (spec, relationship) in the
  sequential order (friends, followers, venues) with its noise weight
  and ``(1 - rho)`` prefactor;
- **cell arena**: the per-user ``(R, C)`` weight matrices ``M``
  flattened end to end, following rows sliced from the predictor's
  shared per-neighbour kernel cache, venue rows gathered straight from
  ``psi``;
- **masked iteration**: the expected-count fixed point runs as flat
  segment reductions over every still-active user at once; a user
  whose drift falls under tolerance is frozen immediately, and once
  frozen users hold an eighth of the arena it is compacted down to the
  survivors, so late convergers never pay for the finished majority.

**Bit-identity.**  Per user, the batch engine performs the *identical
sequence of floating-point operations* as the sequential solver,
regardless of batch composition: scattered reductions go through
:func:`~repro.serving.foldin.segment_sum` (strict input-order
accumulation) and contiguous ones through
:func:`~repro.serving.foldin.contiguous_segment_sum` in both paths, and
following-edge rows are slices of one shared kernel-row cache.
Results are therefore bit-identical to :meth:`FoldInPredictor._solve`
(golden-tested, including iteration counts and convergence flags).

Chunking bounds peak arena memory (``chunk_size`` specs per arena);
per-user independence means chunk boundaries cannot change results.

**When it wins.**  Throughput scales with how *overhead-bound* the
sequential path is: on the sparse population-scale worlds the roadmap
targets (mean degree ~3, the sharded-generator shape) a 5k-user batch
scores ~8x faster than sequential ``predict_batch``; on small dense
worlds (mean degree ~10+) per-user arenas are large enough that both
paths are memory-bound and the gap narrows to ~2-3x (see
docs/PERFORMANCE.md).
"""

from __future__ import annotations

import time
from itertools import chain

import numpy as np

from repro.data.columnar import (
    ColumnarWorld,
    build_unique_csr,
    compile_world,
    expand_csr,
)
from repro.obs.trace import span
from repro.serving.foldin import (
    ITERATIONS_TOTAL,
    SOLVE_SECONDS,
    SOLVES_TOTAL,
    FoldInPrediction,
    FoldInPredictor,
    UserSpec,
    _Solution,
    contiguous_segment_sum,
    segment_sum,
)

__all__ = ["BatchFoldInEngine", "score_population"]

#: Batch-path instrumentation is per *chunk*, not per spec: one
#: histogram observation per ~2048 solves keeps the overhead on the
#: population-scoring path unmeasurable (gated by bench_obs.py).
_BATCH_SECONDS = SOLVE_SECONDS.labels(path="batch")
_BATCH_SOLVES = SOLVES_TOTAL.labels(path="batch")
_BATCH_ITERATIONS = ITERATIONS_TOTAL.labels(path="batch")


def _offsets(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums as an indptr-style array (len + 1)."""
    out = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


def _field_arrays(
    specs: list[UserSpec], field: str
) -> tuple[np.ndarray, np.ndarray]:
    """``(owner, value)`` arrays over one ragged spec field."""
    counts = np.fromiter(
        (len(getattr(s, field)) for s in specs),
        dtype=np.int64,
        count=len(specs),
    )
    values = np.fromiter(
        chain.from_iterable(getattr(s, field) for s in specs),
        dtype=np.int64,
        count=int(counts.sum()),
    )
    owners = np.repeat(np.arange(len(specs), dtype=np.int64), counts)
    return owners, values


class _Arena:
    """One chunk of specs lowered to flat arrays (the spec arena)."""

    __slots__ = (
        "n_specs",
        "cand_indptr",
        "cand_ids",
        "cand_counts",
        "gamma",
        "gamma_sum",
        "rel_indptr",
        "rel_counts",
        "noise",
        "factor",
        "cells_per_rel",
        "cell_indptr",
        "weights",
    )


class BatchFoldInEngine:
    """Vectorized batch fold-in over one predictor's frozen posterior.

    Reads the same frozen tables the sequential solver uses (law
    matrix, psi, noise models, neighbour-profile CSR, candidate
    machinery) straight off the owning
    :class:`~repro.serving.foldin.FoldInPredictor` -- there is exactly
    one source of truth for the model, and the engine is just a faster
    evaluation strategy over it.
    """

    def __init__(self, predictor: FoldInPredictor, chunk_size: int = 2048):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.predictor = predictor
        self.chunk_size = chunk_size

    # -- public API --------------------------------------------------------

    def solve(
        self, specs: list[UserSpec], world: ColumnarWorld | None = None
    ) -> list[_Solution]:
        """Solve every spec; element ``i`` corresponds to ``specs[i]``.

        Bit-identical per spec to ``predictor._solve(specs[i])``;
        chunked so arena memory stays bounded on huge populations.
        One world snapshot covers the whole call (pass the caller's
        snapshot to share it): a concurrent streaming refresh swaps the
        predictor's world atomically, and every chunk of this batch
        must see the same generation.
        """
        specs = list(specs)
        if world is None:
            world = self.predictor.world
        solutions: list[_Solution] = []
        for start in range(0, len(specs), self.chunk_size):
            chunk = specs[start:start + self.chunk_size]
            t0 = time.perf_counter()
            with span("foldin.batch_chunk"):
                solved = self._solve_chunk(chunk, world)
            _BATCH_SECONDS.observe(time.perf_counter() - t0)
            _BATCH_SOLVES.inc(len(solved))
            _BATCH_ITERATIONS.inc(sum(s.iterations for s in solved))
            solutions.extend(solved)
        return solutions

    # -- validation --------------------------------------------------------

    def _validate(
        self,
        neighbors: np.ndarray,
        venues: np.ndarray,
        observed: np.ndarray,
        has_observed: np.ndarray,
        world: ColumnarWorld,
    ) -> None:
        """Vectorized spec validation, same messages as the sequential path."""
        predictor = self.predictor
        n_users = world.n_users
        bad = neighbors[(neighbors < 0) | (neighbors >= n_users)]
        if bad.size:
            raise ValueError(f"unknown neighbour user id {int(bad[0])}")
        bad = venues[(venues < 0) | (venues >= predictor.n_venues)]
        if bad.size:
            raise ValueError(f"unknown venue id {int(bad[0])}")
        bad = observed[
            has_observed
            & ((observed < 0) | (observed >= predictor.n_locations))
        ]
        if bad.size:
            raise ValueError(f"unknown observed location {int(bad[0])}")

    # -- arena construction ------------------------------------------------

    def _lower(self, specs: list[UserSpec], world: ColumnarWorld) -> _Arena:
        """Lower one chunk of specs into the flat spec arena."""
        predictor = self.predictor
        params = predictor.params
        n_specs = len(specs)

        fr_owner, fr_nb = _field_arrays(specs, "friends")
        fo_owner, fo_nb = _field_arrays(specs, "followers")
        ve_owner, ve_vid = _field_arrays(specs, "venues")
        has_observed = np.fromiter(
            (s.observed_location is not None for s in specs),
            dtype=bool,
            count=n_specs,
        )
        observed_raw = np.fromiter(
            (
                s.observed_location if s.observed_location is not None else 0
                for s in specs
            ),
            dtype=np.int64,
            count=n_specs,
        )
        self._validate(
            np.concatenate([fr_nb, fo_nb]), ve_vid, observed_raw, has_observed,
            world,
        )
        observed = np.where(has_observed, observed_raw, -1)

        # Candidacy (Sec. 4.3), one unique-CSR pass over evidence pairs.
        pair_owner: list[np.ndarray] = []
        pair_loc: list[np.ndarray] = []
        if params.use_candidacy:
            labeled_specs = observed >= 0
            pair_owner.append(np.flatnonzero(labeled_specs))
            pair_loc.append(observed[labeled_specs])
            if params.use_following:
                nb_owner = np.concatenate([fr_owner, fo_owner])
                nb_ids = np.concatenate([fr_nb, fo_nb])
                nb_observed = world.observed_location[nb_ids]
                labeled = nb_observed >= 0
                pair_owner.append(nb_owner[labeled])
                pair_loc.append(nb_observed[labeled])
            if params.use_tweeting:
                repeats, referents = expand_csr(
                    world.ref_indptr, world.ref_indices, ve_vid
                )
                pair_owner.append(np.repeat(ve_owner, repeats))
                pair_loc.append(referents)
        owners = (
            np.concatenate(pair_owner)
            if pair_owner
            else np.empty(0, dtype=np.int64)
        )
        locations = (
            np.concatenate(pair_loc)
            if pair_loc
            else np.empty(0, dtype=np.int64)
        )
        cand_indptr, cand_ids = build_unique_csr(owners, locations, n_specs)
        empty = np.flatnonzero(np.diff(cand_indptr) == 0)
        if empty.size:
            # No candidacy evidence (or candidacy ablated): the full
            # gazetteer, exactly like the sequential fallback.
            n_loc = predictor.n_locations
            owners = np.concatenate([owners, np.repeat(empty, n_loc)])
            locations = np.concatenate(
                [locations, np.tile(np.arange(n_loc, dtype=np.int64), empty.size)]
            )
            cand_indptr, cand_ids = build_unique_csr(owners, locations, n_specs)

        arena = _Arena()
        arena.n_specs = n_specs
        arena.cand_indptr = cand_indptr
        arena.cand_ids = cand_ids
        arena.cand_counts = np.diff(cand_indptr)
        cand_owner = np.repeat(
            np.arange(n_specs, dtype=np.int64), arena.cand_counts
        )

        gamma = np.full(cand_ids.size, params.tau, dtype=np.float64)
        boosted = (observed[cand_owner] >= 0) & (cand_ids == observed[cand_owner])
        gamma[boosted] += params.boost
        arena.gamma = gamma
        arena.gamma_sum = contiguous_segment_sum(gamma, cand_indptr[:-1])

        # Relationship arena, sequential order per spec: friends,
        # followers, venues (a stable sort by owner preserves it).
        rel_sources: list[tuple[np.ndarray, np.ndarray, bool]] = []
        if params.use_following:
            rel_sources.append((fr_owner, fr_nb, False))
            rel_sources.append((fo_owner, fo_nb, False))
        if params.use_tweeting:
            rel_sources.append((ve_owner, ve_vid, True))
        if rel_sources:
            rel_owner = np.concatenate([s[0] for s in rel_sources])
            rel_ref = np.concatenate([s[1] for s in rel_sources])
            rel_is_venue = np.concatenate(
                [np.full(s[0].size, s[2], dtype=bool) for s in rel_sources]
            )
        else:
            rel_owner = np.empty(0, dtype=np.int64)
            rel_ref = np.empty(0, dtype=np.int64)
            rel_is_venue = np.empty(0, dtype=bool)
        order = np.argsort(rel_owner, kind="stable")
        rel_owner = rel_owner[order]
        rel_ref = rel_ref[order]
        rel_is_venue = rel_is_venue[order]
        arena.rel_counts = np.bincount(rel_owner, minlength=n_specs)
        arena.rel_indptr = _offsets(arena.rel_counts)

        noise = np.empty(rel_ref.size, dtype=np.float64)
        factor = np.empty(rel_ref.size, dtype=np.float64)
        noise[~rel_is_venue] = predictor._fr_noise
        factor[~rel_is_venue] = 1.0 - params.rho_f
        venue_rels = np.flatnonzero(rel_is_venue)
        noise[venue_rels] = params.rho_t * predictor._tr_probs[
            rel_ref[venue_rels]
        ]
        factor[venue_rels] = 1.0 - params.rho_t
        arena.noise = noise
        arena.factor = factor

        # Cell arena: per spec the (R, C) matrix M, rows end to end.
        cells_per_rel = arena.cand_counts[rel_owner]
        arena.cells_per_rel = cells_per_rel
        cell_rel_offsets = _offsets(cells_per_rel)
        arena.cell_indptr = cell_rel_offsets[arena.rel_indptr]
        total_cells = int(cell_rel_offsets[-1])
        cell_rel = np.repeat(
            np.arange(rel_ref.size, dtype=np.int64), cells_per_rel
        )
        cell_c = (
            np.arange(total_cells, dtype=np.int64)
            - cell_rel_offsets[cell_rel]
        )
        cell_cand = cand_indptr[rel_owner[cell_rel]] + cell_c

        # Following rows: slice the shared per-neighbour kernel cache
        # (literally the same arrays the sequential solver slices) into
        # each relationship's cell slots -- one stacked table for the
        # chunk's unique neighbours, then a flat two-index gather.
        weights = np.zeros(total_cells, dtype=np.float64)
        following_cells = ~rel_is_venue[cell_rel]
        if following_cells.any():
            unique_nb, nb_local = np.unique(
                rel_ref[~rel_is_venue], return_inverse=True
            )
            kernel_table = np.empty(
                (unique_nb.size, predictor.n_locations), dtype=np.float64
            )
            for local, nb in enumerate(unique_nb.tolist()):
                kernel_table[local] = predictor._kernel_row(nb)
            rel_nb_local = np.full(rel_ref.size, -1, dtype=np.int64)
            rel_nb_local[~rel_is_venue] = nb_local
            weights[following_cells] = kernel_table[
                rel_nb_local[cell_rel[following_cells]],
                cand_ids[cell_cand[following_cells]],
            ]

        # Venue rows: a straight psi gather into their cell slots.
        venue_cells = rel_is_venue[cell_rel]
        if venue_cells.any():
            weights[venue_cells] = predictor._psi[
                cand_ids[cell_cand[venue_cells]],
                rel_ref[cell_rel[venue_cells]],
            ]
        arena.weights = weights
        return arena

    # -- the batched fixed point -------------------------------------------

    def _solve_chunk(
        self, specs: list[UserSpec], world: ColumnarWorld | None = None
    ) -> list[_Solution]:
        if not specs:
            return []
        predictor = self.predictor
        tolerance = predictor.tolerance
        arena = self._lower(
            specs, world if world is not None else predictor.world
        )
        n_specs = arena.n_specs
        total_cand = arena.cand_ids.size
        cand_positions = np.arange(total_cand, dtype=np.int64)
        cell_positions = np.arange(int(arena.cell_indptr[-1]), dtype=np.int64)
        rel_positions = np.arange(int(arena.rel_indptr[-1]), dtype=np.int64)

        phi = np.zeros(total_cand, dtype=np.float64)
        iterations = np.zeros(n_specs, dtype=np.int64)
        converged = arena.rel_counts == 0
        active = np.flatnonzero(arena.rel_counts > 0)

        # Convergence masking is two-tier: a user whose drift falls
        # under tolerance is *frozen* immediately (its phi stops
        # updating, exactly as if it had broken out of the sequential
        # loop), and once frozen users hold >= 1/8 of the arena's cells
        # the arena is *compacted* down to the survivors so the long
        # convergence tail never pays for the finished majority.
        #
        # Reductions over contiguous segments use ``np.add.reduceat``;
        # its left-to-right accumulation matches ``segment_sum`` bit
        # for bit on these non-negative operands (``0.0 + x == x``),
        # and the golden tests pin that equivalence.
        local = None
        live = live_cells = None
        frozen_cells = 0
        iteration = 0
        while active.size and iteration < predictor.max_iterations:
            if local is None:
                local = self._compact(
                    arena, active, cand_positions, rel_positions, cell_positions
                )
                (
                    cand_sel,
                    gamma_a,
                    gamma_sum_a,
                    noise_a,
                    factor_a,
                    weights_a,
                    cand_counts_a,
                    rel_user,
                    cell_rel,
                    cell_cand,
                    cand_starts,
                    rel_starts,
                ) = local
                phi_a = phi[cand_sel]
                live = np.ones(active.size, dtype=bool)
                live_cells = np.ones(cand_sel.size, dtype=bool)
                frozen_cells = 0
                w = np.empty_like(gamma_a)
                cand_buf = np.empty_like(gamma_a)
                joint = np.empty_like(weights_a)
                cell_buf = np.empty_like(weights_a)
                rel_total = np.empty_like(noise_a)
                p_loc = np.empty_like(noise_a)
                resp = np.empty_like(noise_a)
                scale = np.empty_like(noise_a)
            iteration += 1
            np.add(phi_a, gamma_a, out=w)
            total = contiguous_segment_sum(phi_a, cand_starts) + gamma_sum_a
            np.take(w, cell_cand, out=cell_buf)
            np.multiply(weights_a, cell_buf, out=joint)
            sums = contiguous_segment_sum(joint, rel_starts)
            np.take(total, rel_user, out=rel_total)
            np.multiply(factor_a, sums, out=p_loc)
            np.divide(p_loc, rel_total, out=p_loc)
            denom = p_loc + noise_a
            resp.fill(0.0)
            np.divide(p_loc, denom, out=resp, where=denom > 0)
            scale.fill(0.0)
            np.divide(resp, sums, out=scale, where=sums > 0)
            np.take(scale, cell_rel, out=cell_buf)
            np.multiply(joint, cell_buf, out=cell_buf)
            phi_new = segment_sum(cell_buf, cell_cand, cand_sel.size)
            np.subtract(phi_new, phi_a, out=cand_buf)
            np.abs(cand_buf, out=cand_buf)
            drift = np.maximum.reduceat(cand_buf, cand_starts)
            np.copyto(phi_a, phi_new, where=live_cells)
            newly_done = (drift < tolerance) & live
            if newly_done.any():
                converged[active[newly_done]] = True
                iterations[active[newly_done]] = iteration
                live &= ~newly_done
                live_cells = np.repeat(live, cand_counts_a)
                frozen_cells += int(
                    (arena.rel_counts[active[newly_done]]
                     * arena.cand_counts[active[newly_done]]).sum()
                )
                phi[cand_sel] = phi_a
                if not live.any():
                    active = active[:0]
                    local = None
                elif frozen_cells * 8 >= weights_a.size:
                    active = active[live]
                    local = None
        if active.size:
            # Ran out of iterations: stamp the survivors non-converged
            # at the full budget, exactly like the sequential loop
            # falling through.  When a compaction was pending at exit
            # (``local is None``) their phi was already persisted at
            # the freeze event; otherwise persist it now.
            if local is not None:
                phi[cand_sel] = phi_a
                iterations[active[live]] = iteration
            else:
                iterations[active] = iteration

        # theta for everyone at once, in the sequential element order.
        cand_owner = np.repeat(
            np.arange(n_specs, dtype=np.int64), arena.cand_counts
        )
        denominator = (
            contiguous_segment_sum(phi, arena.cand_indptr[:-1])
            + arena.gamma_sum
        )
        theta = (phi + arena.gamma) / denominator[cand_owner]

        solutions: list[_Solution] = []
        indptr = arena.cand_indptr
        for i in range(n_specs):
            start, end = int(indptr[i]), int(indptr[i + 1])
            solutions.append(
                _Solution(
                    candidates=arena.cand_ids[start:end].copy(),
                    gamma=arena.gamma[start:end].copy(),
                    phi=phi[start:end].copy(),
                    theta=theta[start:end].copy(),
                    iterations=int(iterations[i]),
                    converged=bool(converged[i]),
                )
            )
        return solutions

    def _compact(
        self,
        arena: _Arena,
        active: np.ndarray,
        cand_positions: np.ndarray,
        rel_positions: np.ndarray,
        cell_positions: np.ndarray,
    ):
        """Gather the arena down to the still-active specs.

        Finished users genuinely drop out: every subsequent iteration
        touches only the survivors' candidates, relationships and
        cells.
        """
        n_active = active.size
        cand_counts = arena.cand_counts[active]
        rel_counts = arena.rel_counts[active]
        _, cand_sel = expand_csr(arena.cand_indptr, cand_positions, active)
        _, rel_sel = expand_csr(arena.rel_indptr, rel_positions, active)
        _, cell_sel = expand_csr(arena.cell_indptr, cell_positions, active)

        cells_per_rel = arena.cells_per_rel[rel_sel]
        cell_rel = np.repeat(
            np.arange(rel_sel.size, dtype=np.int64), cells_per_rel
        )
        cell_offsets = _offsets(cells_per_rel)
        cand_offsets = _offsets(cand_counts)
        rel_user = np.repeat(np.arange(n_active, dtype=np.int64), rel_counts)
        cell_cand = (
            np.arange(cell_sel.size, dtype=np.int64)
            - cell_offsets[cell_rel]
            + cand_offsets[rel_user][cell_rel]
        )
        return (
            cand_sel,
            arena.gamma[cand_sel],
            arena.gamma_sum[active],
            arena.noise[rel_sel],
            arena.factor[rel_sel],
            arena.weights[cell_sel],
            cand_counts,
            rel_user,
            cell_rel,
            cell_cand,
            cand_offsets[:-1],
            cell_offsets[:-1],
        )


def score_population(
    world,
    result,
    predictor: FoldInPredictor | None = None,
    use_cache: bool = False,
    since_generation: int | None = None,
    journal=None,
) -> dict[int, FoldInPrediction]:
    """Profile every *unlabeled* user of a dataset in one batch call.

    The MLP paper's end goal in one function: given a fitted ``result``
    and the world it was trained on (a ``Dataset`` or a compiled
    ``ColumnarWorld``), fold in the entire unlabeled population through
    the vectorized batch engine and return ``{user_id: prediction}``.
    Pass an existing ``predictor`` to reuse its frozen tables and LRU
    cache (``use_cache=True`` then serves repeat populations from it).

    With ``since_generation=g`` only the *delta-affected* slice is
    re-scored: unlabeled users touched by ingest generations ``> g``
    (arrivals, endpoints of new edges, tweeters, label updates and
    their neighbours -- read from the world's ``delta_log``).  A
    steady-state server keeps a full population scored, streams deltas
    in, and re-scores just ``since_generation=<last scored>`` instead
    of the world.

    The in-memory ``delta_log`` forgets generations past
    ``DELTA_LOG_LIMIT``; pass ``journal=`` (a
    :class:`repro.data.journal.DeltaJournal`) to answer the touched
    window from the durable log instead, which covers everything since
    the last compaction.  A ``since_generation`` behind the retained
    window raises :class:`repro.data.delta.StaleWindowError` -- this
    function never silently falls back to a full re-score; callers that
    choose to (``repro ingest --score-output``, the query layer's index
    refresh) must surface the fallback loudly (docs/API.md documents
    the window contract).
    """
    world = compile_world(world)
    if predictor is None:
        # Build over the *training* world, so the content check below
        # still catches a same-size-but-different world; to score a
        # delta-grown world, pass the refreshed predictor (or build
        # one with ``FoldInPredictor(result, world=grown)``).
        predictor = FoldInPredictor(result)
    if world.n_users != predictor.world.n_users:
        raise ValueError(
            f"world has {world.n_users} users but the predictor serves "
            f"{predictor.world.n_users}"
        )
    if (
        world is not predictor.world
        and world.content_hash != predictor.world.content_hash
        # Chained ingest hashes encode a *history*, so two worlds with
        # identical arrays but different provenance (N deltas vs. a
        # from-scratch recompile) disagree above; the array-level
        # rehash settles it before we reject.
        and world.rehash() != predictor.world.rehash()
    ):
        # Same size but different edges/labels: the specs below replay
        # the predictor world's evidence, so scoring a different world
        # with them would silently produce stale profiles.
        raise ValueError(
            "world content does not match the world the predictor "
            f"serves ({world.content_hash} != "
            f"{predictor.world.content_hash})"
        )
    unlabeled = np.flatnonzero(~world.labeled_mask)
    if since_generation is not None:
        if journal is not None:
            affected = journal.touched_since(since_generation)
        else:
            from repro.data.delta import touched_since

            affected = touched_since(world, since_generation)
        unlabeled = np.intersect1d(unlabeled, affected, assume_unique=True)
    specs = [
        predictor.spec_for_training_user(int(uid)) for uid in unlabeled
    ]
    predictions = predictor.predict_batch(specs, use_cache=use_cache)
    return {
        int(uid): prediction
        for uid, prediction in zip(unlabeled, predictions)
    }
