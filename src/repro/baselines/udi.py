"""BaseUDI: a unified single-location influence model (Li et al. [11]).

The MLP paper's third reference point is the authors' own earlier
KDD'12 model (citation [11]): a *unified* model that integrates the
following network and tweet content -- like MLP -- but assumes a
*single* home location per user -- like BaseU/BaseC.  Comparing MLP
against it isolates the paper's central claim: the gains of Sec. 5 come
from modeling **multiple** locations, not merely from combining the two
signal types.

This reproduction scores every candidate location with a unified
log-likelihood

    score_i(l) = sum_{v in located neighbours} log(beta * d(l, loc_v)**alpha)
               + w_content * sum_{venue m in tweets_i} log P(m | l)

where ``P(m | l)`` is the per-city venue multinomial estimated from
labeled users (with neighbourhood smoothing), and iterates so newly
located users propagate, exactly like the original's network-influence
iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import MLPParams
from repro.data.model import Dataset
from repro.evaluation.methods import MethodPrediction
from repro.mathx.powerlaw import PowerLaw


@dataclass(frozen=True, slots=True)
class UDIConfig:
    """Knobs of the unified influence baseline."""

    n_rounds: int = 3
    #: Relative weight of the content term against one neighbour edge.
    content_weight: float = 0.5
    #: Additive smoothing of the per-city venue distributions.
    dirichlet: float = 0.05
    #: Neighbourhood smoothing radius for the venue distributions.
    smoothing_radius: float = 50.0
    smoothing_weight: float = 0.2
    fit_max_users: int = 2000
    seed: int = 0


class UnifiedInfluenceBaseline:
    """Single-home unified network+content model ([11], simplified)."""

    name = "BaseUDI"

    def __init__(self, config: UDIConfig | None = None):
        self.config = config or UDIConfig()

    def predict(self, dataset: Dataset) -> MethodPrediction:
        """Rank locations by combined network + content influence."""
        cfg = self.config
        law = self._fit_law(dataset)
        dmat = dataset.gazetteer.distance_matrix
        log_venue = self._content_log_probs(dataset)

        located = np.full(dataset.n_users, -1, dtype=np.int64)
        for uid, loc in dataset.observed_locations.items():
            located[uid] = loc
        ranked: list[list[int]] = [[] for _ in range(dataset.n_users)]
        for uid, loc in dataset.observed_locations.items():
            ranked[uid] = [loc]

        referents = self._venue_referents(dataset)
        for _round in range(cfg.n_rounds):
            updates: dict[int, list[int]] = {}
            for uid in range(dataset.n_users):
                if dataset.users[uid].is_labeled:
                    continue
                candidates = self._candidates(dataset, uid, located, referents)
                if not candidates:
                    continue
                neighbour_locs = np.array(
                    [
                        located[nb]
                        for nb in dataset.neighbors_of[uid]
                        if located[nb] >= 0
                    ],
                    dtype=np.int64,
                )
                venue_ids = dataset.venues_of[uid]
                scores = np.empty(len(candidates))
                for c_idx, cand in enumerate(candidates):
                    network = (
                        float(np.sum(law.log_prob(dmat[cand, neighbour_locs])))
                        if neighbour_locs.size
                        else 0.0
                    )
                    content = sum(log_venue[vid][cand] for vid in venue_ids)
                    scores[c_idx] = network + cfg.content_weight * content
                order = np.lexsort((np.array(candidates), -scores))
                ranking = [candidates[i] for i in order]
                updates[uid] = ranking
            if not updates:
                break
            for uid, ranking in updates.items():
                located[uid] = ranking[0]
                ranked[uid] = ranking

        fallback = self._fallback(dataset)
        for uid in range(dataset.n_users):
            if not ranked[uid]:
                ranked[uid] = [fallback]
        return MethodPrediction(method_name=self.name, ranked_locations=ranked)

    # -- components --------------------------------------------------------

    def _fit_law(self, dataset: Dataset) -> PowerLaw:
        from repro.core.calibration import fit_initial_power_law

        params = MLPParams(seed=self.config.seed)
        return fit_initial_power_law(
            dataset, params, max_users=self.config.fit_max_users
        )

    def _content_log_probs(self, dataset: Dataset) -> np.ndarray:
        """log P(venue | city) matrix, (V, L), smoothed."""
        cfg = self.config
        n_loc = len(dataset.gazetteer)
        n_venues = len(dataset.gazetteer.venue_vocabulary)
        observed = dataset.observed_locations
        counts = np.zeros((n_loc, n_venues))
        for t in dataset.tweeting:
            loc = observed.get(t.user)
            if loc is not None:
                counts[loc, t.venue_id] += 1.0
        dmat = dataset.gazetteer.distance_matrix
        neighbour = (dmat <= cfg.smoothing_radius).astype(np.float64)
        np.fill_diagonal(neighbour, 0.0)
        degree = neighbour.sum(axis=1)
        degree[degree == 0] = 1.0
        counts = (1 - cfg.smoothing_weight) * counts + cfg.smoothing_weight * (
            (neighbour / degree[:, None]) @ counts
        )
        probs = (counts + cfg.dirichlet) / (
            counts.sum(axis=1, keepdims=True) + cfg.dirichlet * n_venues
        )
        return np.log(probs).T.copy()  # (V, L)

    @staticmethod
    def _venue_referents(dataset: Dataset) -> dict[int, tuple[int, ...]]:
        gaz = dataset.gazetteer
        return {
            vid: tuple(loc.location_id for loc in gaz.lookup_name(name))
            for vid, name in enumerate(gaz.venue_vocabulary)
        }

    @staticmethod
    def _candidates(
        dataset: Dataset,
        uid: int,
        located: np.ndarray,
        referents: dict[int, tuple[int, ...]],
    ) -> list[int]:
        cands: set[int] = set()
        for nb in dataset.neighbors_of[uid]:
            if located[nb] >= 0:
                cands.add(int(located[nb]))
        for vid in set(dataset.venues_of[uid]):
            cands.update(referents[vid])
        return sorted(cands)

    @staticmethod
    def _fallback(dataset: Dataset) -> int:
        observed = list(dataset.observed_locations.values())
        if observed:
            return int(np.argmax(np.bincount(observed)))
        return int(np.argmax(dataset.gazetteer.populations))
