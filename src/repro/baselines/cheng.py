"""BaseC: Cheng, Caverlee & Lee (CIKM 2010), "You are where you tweet".

The content-based baseline the paper compares against:

1. from labeled users' tweets, estimate per-word city distributions
   ``p(c | w)`` -- here "words" are the venue mentions the corpus
   provides (the paper's reproduction note: BaseC's quality hinges on
   which words are kept as *local words*);
2. select local words by a geographic focus criterion: a word is local
   when enough of its probability mass falls within ``focus_radius``
   miles of its modal city (replacing the original's human labeling +
   classifier, as the MLP paper itself had to do);
3. apply neighbourhood (lattice) smoothing so mass spreads to nearby
   cities;
4. classify each user by summing ``count_u(w) * p(c | w)`` over their
   local words and ranking cities.

Labeled users keep their registered location at rank 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.model import Dataset
from repro.evaluation.methods import MethodPrediction


@dataclass(frozen=True, slots=True)
class ChengConfig:
    """Knobs of the BaseC reproduction."""

    #: A word is "local" when this much of its mass lies within
    #: ``focus_radius`` miles of its modal city.
    focus_threshold: float = 0.5
    focus_radius: float = 100.0
    #: Words seen fewer times than this in labeled tweets are dropped.
    min_word_count: int = 3
    #: Neighbourhood smoothing: fraction of a city's mass shared with
    #: cities within ``smoothing_radius`` miles.
    smoothing_weight: float = 0.3
    smoothing_radius: float = 50.0
    #: Additive smoothing of the per-word city distributions.
    dirichlet: float = 0.01


class ChengBaseline:
    """BaseC -- local-word content classification (tweets only)."""

    name = "BaseC"

    def __init__(self, config: ChengConfig | None = None):
        self.config = config or ChengConfig()

    def predict(self, dataset: Dataset) -> MethodPrediction:
        """Rank cities for every user from local-word tweet content."""
        cfg = self.config
        n_loc = len(dataset.gazetteer)
        n_venues = len(dataset.gazetteer.venue_vocabulary)
        observed = dataset.observed_locations

        # 1. per-word city counts from labeled users' venue mentions.
        word_city = np.zeros((n_venues, n_loc), dtype=np.float64)
        for t in dataset.tweeting:
            loc = observed.get(t.user)
            if loc is not None:
                word_city[t.venue_id, loc] += 1.0
        word_totals = word_city.sum(axis=1)

        # 2. local-word selection by geographic focus.
        local_words = self._select_local_words(dataset, word_city, word_totals)

        # 3. neighbourhood smoothing over the selected words.
        p_city_given_word = self._smooth(dataset, word_city, word_totals)

        # 4. classify every user.
        fallback = self._fallback_location(dataset)
        ranked: list[list[int]] = []
        for uid in range(dataset.n_users):
            own = observed.get(uid)
            if own is not None:
                ranked.append([own])
                continue
            scores = np.zeros(n_loc)
            for vid in dataset.venues_of[uid]:
                if local_words[vid]:
                    scores += p_city_given_word[vid]
            if scores.sum() <= 0:
                ranked.append([fallback])
                continue
            order = np.lexsort((np.arange(n_loc), -scores))
            positive = [int(c) for c in order if scores[c] > 0]
            ranked.append(positive if positive else [fallback])
        return MethodPrediction(method_name=self.name, ranked_locations=ranked)

    def _select_local_words(
        self,
        dataset: Dataset,
        word_city: np.ndarray,
        word_totals: np.ndarray,
    ) -> np.ndarray:
        """Boolean mask over venue ids: which words count as local."""
        cfg = self.config
        dmat = dataset.gazetteer.distance_matrix
        n_venues = word_city.shape[0]
        local = np.zeros(n_venues, dtype=bool)
        for vid in range(n_venues):
            total = word_totals[vid]
            if total < cfg.min_word_count:
                continue
            modal = int(np.argmax(word_city[vid]))
            nearby = dmat[modal] <= cfg.focus_radius
            focus = word_city[vid, nearby].sum() / total
            local[vid] = focus >= cfg.focus_threshold
        return local

    def _smooth(
        self,
        dataset: Dataset,
        word_city: np.ndarray,
        word_totals: np.ndarray,
    ) -> np.ndarray:
        """Dirichlet + neighbourhood smoothing of p(c | w)."""
        cfg = self.config
        n_loc = word_city.shape[1]
        dmat = dataset.gazetteer.distance_matrix
        neighbour_mask = (dmat <= cfg.smoothing_radius).astype(np.float64)
        np.fill_diagonal(neighbour_mask, 0.0)
        degree = neighbour_mask.sum(axis=1)
        degree[degree == 0] = 1.0
        spread = neighbour_mask / degree[:, None]

        probs = (word_city + cfg.dirichlet) / (
            word_totals[:, None] + cfg.dirichlet * n_loc
        )
        smoothed = (1.0 - cfg.smoothing_weight) * probs + (
            cfg.smoothing_weight * probs @ spread
        )
        row_sums = smoothed.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1.0
        return smoothed / row_sums

    @staticmethod
    def _fallback_location(dataset: Dataset) -> int:
        observed = list(dataset.observed_locations.values())
        if observed:
            return int(np.argmax(np.bincount(observed)))
        return int(np.argmax(dataset.gazetteer.populations))
