"""Baseline methods the paper compares against (Sec. 5 "Methods").

- :mod:`repro.baselines.backstrom` -- **BaseU**: Backstrom, Sun &
  Marlow (WWW'10) "Find me if you can": friend-distance maximum
  likelihood with iterative propagation over the social graph.
- :mod:`repro.baselines.cheng` -- **BaseC**: Cheng, Caverlee & Lee
  (CIKM'10) "You are where you tweet": per-city word distributions over
  automatically selected *local words*, with neighbourhood smoothing.
- :mod:`repro.baselines.home_explainer` -- **Base** of Sec. 5.3: explain
  every following relationship with the two users' home locations.
- :mod:`repro.baselines.udi` -- **BaseUDI**: the authors' earlier
  unified single-location network+content model (citation [11]),
  isolating the multiple-locations contribution from the unification
  contribution.
- :mod:`repro.baselines.naive` -- population-prior and neighbour-vote
  references (the collective-classification strawmen of Sec. 2).
"""

from repro.baselines.backstrom import BackstromBaseline
from repro.baselines.cheng import ChengBaseline
from repro.baselines.home_explainer import HomeLocationExplainer
from repro.baselines.naive import MajorityNeighborBaseline, PopulationPriorBaseline
from repro.baselines.udi import UnifiedInfluenceBaseline

__all__ = [
    "BackstromBaseline",
    "ChengBaseline",
    "HomeLocationExplainer",
    "MajorityNeighborBaseline",
    "PopulationPriorBaseline",
    "UnifiedInfluenceBaseline",
]
