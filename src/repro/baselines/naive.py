"""Naive references: population prior and neighbour majority vote.

Sec. 2 argues that vanilla collective classification (neighbour
voting) fails here because it ignores distances between location
labels and assumes one label per node.  These two tiny baselines make
that argument measurable: the benches show them trailing BaseU, which
in turn trails MLP.
"""

from __future__ import annotations

import numpy as np

from repro.data.model import Dataset
from repro.evaluation.methods import MethodPrediction


class PopulationPriorBaseline:
    """Predict the most frequently observed location for everyone."""

    name = "PopPrior"

    def predict(self, dataset: Dataset) -> MethodPrediction:
        """Rank everyone by the globally most observed locations."""
        observed = list(dataset.observed_locations.values())
        if observed:
            counts = np.bincount(observed, minlength=len(dataset.gazetteer))
        else:
            counts = dataset.gazetteer.populations
        order = np.lexsort((np.arange(len(counts)), -counts))
        global_ranking = [int(c) for c in order if counts[c] > 0] or [
            int(order[0])
        ]
        ranked = []
        for uid in range(dataset.n_users):
            own = dataset.observed_locations.get(uid)
            ranked.append([own] if own is not None else list(global_ranking[:10]))
        return MethodPrediction(method_name=self.name, ranked_locations=ranked)


class MajorityNeighborBaseline:
    """The voting-based relational classifier of Macskassy & Provost.

    A user's location is the most common observed location among their
    neighbours, ignoring distances entirely -- the Sec. 2 example of
    what goes wrong (a friend in Los Angeles and one in Santa Monica
    do not reinforce each other).
    """

    name = "NeighborVote"

    def __init__(self, n_rounds: int = 3):
        self.n_rounds = n_rounds

    def predict(self, dataset: Dataset) -> MethodPrediction:
        """Vote each user's home from neighbours' labels, iterated."""
        located: dict[int, int] = dict(dataset.observed_locations)
        ranked: list[list[int]] = [[] for _ in range(dataset.n_users)]
        for uid, loc in located.items():
            ranked[uid] = [loc]
        for _round in range(self.n_rounds):
            updates: dict[int, list[int]] = {}
            for uid in range(dataset.n_users):
                if dataset.users[uid].is_labeled:
                    continue
                votes: dict[int, int] = {}
                for nb in dataset.neighbors_of[uid]:
                    loc = located.get(nb)
                    if loc is not None:
                        votes[loc] = votes.get(loc, 0) + 1
                if votes:
                    ordering = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
                    updates[uid] = [loc for loc, _ in ordering]
            if not updates:
                break
            for uid, ordering in updates.items():
                located[uid] = ordering[0]
                ranked[uid] = ordering
        fallback = PopulationPriorBaseline().predict(dataset)
        for uid in range(dataset.n_users):
            if not ranked[uid]:
                ranked[uid] = fallback.ranked_locations[uid]
        return MethodPrediction(method_name=self.name, ranked_locations=ranked)
