"""BaseU: Backstrom, Sun & Marlow (WWW 2010), "Find me if you can".

The method the paper compares against for network-based prediction:

1. learn the probability of a friendship as a function of distance from
   labeled pairs (a power-law curve, exactly our Fig. 3(a) pipeline);
2. place each unlabeled user at the candidate location maximizing the
   log-likelihood of their located neighbours' distances,
   ``argmax_l  sum_v log p(d(l, loc_v))``;
3. iterate: newly placed users join the located pool and can locate
   their own neighbours in the next round (the WWW'10 paper's iterative
   refinement).

Candidate locations are the locations of the user's located neighbours
-- the same observation that underlies MLP's candidacy vectors, and how
the original method keeps the argmax tractable.

This baseline, like the original, assumes a *single* home location per
user; its ranked output (used by the multi-location task's top-K
evaluation) is simply the per-candidate likelihood ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import MLPParams
from repro.data.model import Dataset
from repro.evaluation.methods import MethodPrediction
from repro.mathx.powerlaw import PowerLaw


@dataclass(frozen=True, slots=True)
class BackstromConfig:
    """Knobs of the BaseU reproduction."""

    #: Rounds of iterative propagation (1 = only direct neighbours).
    n_rounds: int = 3
    #: Power-law fitting fallback (alpha, beta) when labels are scarce.
    fallback_alpha: float = -0.55
    fallback_beta: float = 0.0045
    min_distance_miles: float = 1.0
    #: Cap on labeled users used for the curve fit.
    fit_max_users: int = 2000
    seed: int = 0


class BackstromBaseline:
    """BaseU -- friend-distance maximum likelihood (network only)."""

    name = "BaseU"

    def __init__(self, config: BackstromConfig | None = None):
        self.config = config or BackstromConfig()

    def predict(self, dataset: Dataset) -> MethodPrediction:
        """Locate every user; labeled users keep their registered home."""
        cfg = self.config
        law = self._fit_law(dataset)
        dmat = dataset.gazetteer.distance_matrix

        # located[u] = current best location, or -1.
        located = np.full(dataset.n_users, -1, dtype=np.int64)
        for uid, loc in dataset.observed_locations.items():
            located[uid] = loc

        ranked: list[list[int]] = [[] for _ in range(dataset.n_users)]
        for uid, loc in dataset.observed_locations.items():
            ranked[uid] = [loc]

        for _round in range(cfg.n_rounds):
            updates: dict[int, tuple[int, list[int]]] = {}
            for uid in range(dataset.n_users):
                if dataset.users[uid].is_labeled:
                    continue
                neighbour_locs = [
                    int(located[nb])
                    for nb in dataset.neighbors_of[uid]
                    if located[nb] >= 0
                ]
                if not neighbour_locs:
                    continue
                candidates = sorted(set(neighbour_locs))
                loc_array = np.array(neighbour_locs, dtype=np.int64)
                scores = np.empty(len(candidates))
                for c_idx, cand in enumerate(candidates):
                    d = dmat[cand, loc_array]
                    scores[c_idx] = float(np.sum(law.log_prob(d)))
                order = np.lexsort((np.array(candidates), -scores))
                ranking = [candidates[i] for i in order]
                updates[uid] = (ranking[0], ranking)
            if not updates:
                break
            for uid, (best, ranking) in updates.items():
                located[uid] = best
                ranked[uid] = ranking

        # Users never reached by propagation: fall back to the global
        # most common observed location (population prior of the data).
        fallback = self._fallback_location(dataset)
        for uid in range(dataset.n_users):
            if not ranked[uid]:
                ranked[uid] = [fallback]
        return MethodPrediction(method_name=self.name, ranked_locations=ranked)

    def _fit_law(self, dataset: Dataset) -> PowerLaw:
        """Fit the friendship-vs-distance curve from labeled pairs."""
        from repro.core.gibbs_em import fit_initial_power_law

        params = MLPParams(
            alpha=self.config.fallback_alpha,
            beta=self.config.fallback_beta,
            min_distance_miles=self.config.min_distance_miles,
            seed=self.config.seed,
        )
        return fit_initial_power_law(
            dataset, params, max_users=self.config.fit_max_users
        )

    @staticmethod
    def _fallback_location(dataset: Dataset) -> int:
        observed = list(dataset.observed_locations.values())
        if observed:
            counts = np.bincount(observed)
            return int(np.argmax(counts))
        return int(np.argmax(dataset.gazetteer.populations))
