"""Base of Sec. 5.3: explain every edge with the users' home locations.

"For a following relationship, it directly assigns users' home
locations as their location assignments in the relationship.  It is a
strong baseline, as users are likely to follow others based on their
home locations" -- but it cannot explain edges grounded in a user's
*other* locations, which is exactly where MLP wins.

The homes can come from any source: ground truth (the strongest
variant, used in the Fig. 8 experiment), registered labels, or another
method's predictions.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.data.model import Dataset


class HomeLocationExplainer:
    """Assign ``(home(follower), home(friend))`` to every edge."""

    name = "Base"

    def __init__(self, homes: Mapping[int, int] | Sequence[int]):
        """``homes`` maps user id -> home location id (dict or array)."""
        self._homes = homes

    def _home_of(self, user_id: int) -> int:
        if isinstance(self._homes, Mapping):
            return self._homes[user_id]
        return int(self._homes[user_id])

    def edge_assignments(self, dataset: Dataset) -> list[tuple[int, int]]:
        """Assignments parallel to ``dataset.following``."""
        return [
            (self._home_of(e.follower), self._home_of(e.friend))
            for e in dataset.following
        ]

    @classmethod
    def from_ground_truth(cls, dataset: Dataset) -> "HomeLocationExplainer":
        """The strongest variant: true homes for every user."""
        if not dataset.has_ground_truth:
            raise ValueError("ground-truth homes unavailable")
        return cls([dataset.true_home_of(u) for u in range(dataset.n_users)])
