"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``generate``  -- build a synthetic world and save it as JSON;
- ``stats``     -- print corpus statistics of a saved dataset;
- ``fit``       -- fit MLP on a saved dataset, print profile summaries;
- ``evaluate``  -- run the five-method Table 2 protocol on a dataset;
- ``reproduce`` -- regenerate every paper table/figure.

All commands are deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("generate", help="generate a synthetic world")
    p.add_argument("output", type=Path, help="output JSON path")
    p.add_argument("--users", type=int, default=1000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--labeled-fraction", type=float, default=0.8)
    p.add_argument("--mean-friends", type=float, default=10.0)
    p.add_argument("--mean-venues", type=float, default=14.0)
    p.add_argument(
        "--render-tweets", action="store_true", help="emit raw tweet text"
    )


def _add_stats(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("stats", help="print dataset statistics")
    p.add_argument("dataset", type=Path)


def _add_fit(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("fit", help="fit MLP and print profiles")
    p.add_argument("dataset", type=Path)
    p.add_argument("--iterations", type=int, default=30)
    p.add_argument("--burn-in", type=int, default=12)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--users", type=int, nargs="*", default=None,
        help="user ids to print (default: first 5 multi-location users)",
    )
    p.add_argument("--top-k", type=int, default=3)


def _add_evaluate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "evaluate", help="five-method home-prediction comparison (Table 2)"
    )
    p.add_argument("dataset", type=Path)
    p.add_argument("--iterations", type=int, default=24)
    p.add_argument("--burn-in", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--holdout", type=float, default=0.2)


def _add_reproduce(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "reproduce", help="regenerate every paper table and figure"
    )
    p.add_argument("--users", type=int, default=900)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument(
        "--output-dir", type=Path, default=None,
        help="also write each artifact to this directory",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multiple Location Profiling (VLDB 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_generate(sub)
    _add_stats(sub)
    _add_fit(sub)
    _add_evaluate(sub)
    _add_reproduce(sub)
    return parser


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.data.generator import SyntheticWorldConfig, generate_world
    from repro.data.io import save_dataset

    config = SyntheticWorldConfig(
        n_users=args.users,
        seed=args.seed,
        labeled_fraction=args.labeled_fraction,
        mean_friends=args.mean_friends,
        mean_venues=args.mean_venues,
        render_tweets=args.render_tweets,
    )
    dataset = generate_world(config)
    save_dataset(dataset, args.output)
    print(f"wrote {dataset} -> {args.output}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.data.io import load_dataset
    from repro.data.stats import compute_stats

    dataset = load_dataset(args.dataset)
    print(json.dumps(compute_stats(dataset).as_dict(), indent=2))
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    from repro.core.model import MLPModel
    from repro.core.params import MLPParams
    from repro.data.io import load_dataset

    dataset = load_dataset(args.dataset)
    params = MLPParams(
        n_iterations=args.iterations, burn_in=args.burn_in, seed=args.seed
    )
    result = MLPModel(params).fit(dataset)
    law = result.fitted_law
    print(f"fitted law: alpha={law.alpha:.3f} beta={law.beta:.5f}")

    if args.users is not None:
        user_ids = args.users
    else:
        user_ids = list(dataset.multi_location_user_ids()[:5])
    gaz = dataset.gazetteer
    for uid in user_ids:
        if not 0 <= uid < dataset.n_users:
            print(f"user {uid}: not in dataset", file=sys.stderr)
            continue
        profile = result.profile_of(uid)
        print(f"user {uid}: {profile.describe(gaz, k=args.top_k)}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core.params import MLPParams
    from repro.data.io import load_dataset
    from repro.evaluation.methods import standard_methods
    from repro.evaluation.splits import single_holdout_split
    from repro.evaluation.tasks import run_home_prediction
    from repro.experiments import report, tables

    dataset = load_dataset(args.dataset)
    params = MLPParams(
        n_iterations=args.iterations,
        burn_in=args.burn_in,
        seed=args.seed,
        track_edge_assignments=False,
    )
    split = single_holdout_split(dataset, args.holdout, seed=args.seed)
    results = run_home_prediction(
        dataset, standard_methods(params), splits=[split]
    )
    print(report.render_table2(tables.table2(dataset, results)))
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments import report
    from repro.experiments.config import default_config
    from repro.experiments.runner import ExperimentSuite

    suite = ExperimentSuite(default_config(n_users=args.users, seed=args.seed))
    artifacts = {
        "fig3a": report.render_fig3a(suite.fig3a),
        "fig3b": report.render_fig3b(suite.fig3b),
        "fig3c": report.render_fig3c(suite.fig3c),
        "table2": report.render_table2(suite.table2),
        "fig4": report.render_fig4(suite.fig4),
        "fig5": report.render_fig5(suite.fig5),
        "table3": report.render_table3(suite.table3),
        "fig6": report.render_rank_sweep(suite.fig6),
        "fig7": report.render_rank_sweep(suite.fig7),
        "table4": report.render_table4(suite.table4),
        "fig8": report.render_fig8(suite.fig8),
        "table5": report.render_table5(suite.table5),
    }
    for name, text in artifacts.items():
        print(text)
        print()
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{name}.txt").write_text(text + "\n")
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "stats": cmd_stats,
    "fit": cmd_fit,
    "evaluate": cmd_evaluate,
    "reproduce": cmd_reproduce,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
