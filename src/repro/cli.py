"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``generate``  -- build a synthetic world and save it as JSON;
- ``stats``     -- print corpus statistics of a saved dataset;
- ``fit``       -- fit MLP on a saved dataset, print profile summaries
  (``--save-artifact`` persists the fitted result as a ``.mlp.npz``
  serving artifact);
- ``evaluate``  -- run the five-method Table 2 protocol on a dataset;
- ``reproduce`` -- regenerate every paper table/figure;
- ``predict``   -- offline batch fold-in scoring against a saved
  artifact;
- ``ingest``    -- stream WorldDelta batches into an artifact's world
  (the offline twin of the server's ``POST /ingest``), optionally
  re-scoring the delta-affected users; ``--journal DIR`` makes every
  delta durable through the write-ahead journal;
- ``replay``    -- recover a journaled world (snapshot + tail replay)
  and report its generation/chained hash; ``--verify`` golden-checks
  the replayed arrays against a from-scratch recompile;
- ``compact``   -- snapshot a journaled world and truncate the journal
  behind it, bounding future recovery time;
- ``serve``     -- the JSON-over-HTTP inference server over a saved
  artifact; ``--journal DIR`` recovers the durable world on boot and
  write-ahead journals every ``POST /ingest``;
- ``info``      -- build/runtime versions (package, engines, numpy,
  artifact format), for triaging served artifacts.

All commands are deterministic given ``--seed``.  ``fit``, ``evaluate``
and ``reproduce`` accept the engine knobs shared by every inference in
this codebase: ``--engine`` selects the sweep implementation from the
registered engines (``loop``/``vectorized`` sample identical chains
with different speed/memory trades; ``partitioned`` sweeps
conflict-free color blocks set-at-a-time -- see :mod:`repro.engine`),
``--jobs N`` adds worker threads to the partitioned color sweeps, and
``--chains K`` runs K independently-seeded chains whose posteriors are
pooled and cross-checked with R-hat.

Every subcommand documents its flags in ``--help``; run
``python -m repro <command> --help`` for the full story.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ENGINE_EPILOG = """\
engine knobs:
  --engine loop         reference Python-loop Gibbs sweeps (the oracle)
  --engine vectorized   precomputed-layout sweeps; bit-identical chain,
                        ~2.5-3x faster, more memory (kernel cache)
  --engine partitioned  conflict-free color-block sweeps over the
                        user-conflict graph; statistically equivalent
                        chain (not bit-identical), fastest at scale
  --jobs N              worker threads for partitioned color sweeps
                        (results are independent of N)
  --chains K            K independent chains with deterministic seeds
                        (base, base+7919, ...); profiles average the
                        pooled posterior, explanations merge per-edge
                        tallies, and an R-hat summary is reported.
"""


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_engine_arguments(p: argparse.ArgumentParser) -> None:
    """The engine knobs shared by fit/evaluate/reproduce."""
    from repro.engine.registry import engine_names

    p.add_argument(
        "--engine",
        choices=engine_names(),
        default="loop",
        help="Gibbs sweep implementation (default: %(default)s)",
    )
    p.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker threads for partitioned color sweeps; other "
        "engines ignore it (default: %(default)s)",
    )
    p.add_argument(
        "--chains",
        type=_positive_int,
        default=1,
        metavar="K",
        help="independent chains to run and pool (default: %(default)s)",
    )


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "generate",
        help="generate a synthetic world",
        description=(
            "Generate a synthetic MLP world (users, homes, following "
            "edges, venue mentions) and save it as JSON.  The generator "
            "mirrors the paper's data assumptions: power-law distance "
            "decay for friendships, noisy celebrity follows, ambiguous "
            "venue names."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "example:\n"
            "  python -m repro generate world.json --users 2000 --seed 7\n"
        ),
    )
    p.add_argument("output", type=Path, help="output JSON path")
    p.add_argument(
        "--users", type=int, default=1000, help="number of users (default: %(default)s)"
    )
    p.add_argument("--seed", type=int, default=7, help="RNG seed (default: %(default)s)")
    p.add_argument(
        "--labeled-fraction",
        type=float,
        default=0.8,
        help="fraction of users with an observed home (default: %(default)s)",
    )
    p.add_argument(
        "--mean-friends",
        type=float,
        default=10.0,
        help="mean following edges per user (default: %(default)s)",
    )
    p.add_argument(
        "--mean-venues",
        type=float,
        default=14.0,
        help="mean venue mentions per user (default: %(default)s)",
    )
    p.add_argument(
        "--render-tweets", action="store_true", help="emit raw tweet text"
    )
    p.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="N",
        help="use the sharded columnar generator with N shards "
        "(array-native, scales to very large worlds; different RNG "
        "stream than the default object-graph generator)",
    )


def _add_stats(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "stats",
        help="print dataset statistics",
        description=(
            "Print corpus statistics (user, edge, venue and label "
            "counts; degree and distance summaries) of a saved dataset "
            "as JSON."
        ),
    )
    p.add_argument("dataset", type=Path, help="dataset JSON path")


def _add_fit(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "fit",
        help="fit MLP and print profiles",
        description=(
            "Run full MLP inference (collapsed Gibbs with Gibbs-EM "
            "power-law refits) on a saved dataset and print location "
            "profiles for selected users."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=_ENGINE_EPILOG + (
            "\nexample:\n"
            "  python -m repro fit world.json --engine vectorized --chains 4\n"
        ),
    )
    p.add_argument("dataset", type=Path, help="dataset JSON path")
    p.add_argument(
        "--iterations",
        type=int,
        default=30,
        help="total Gibbs sweeps (default: %(default)s)",
    )
    p.add_argument(
        "--burn-in",
        type=int,
        default=12,
        help="sweeps discarded before accumulation (default: %(default)s)",
    )
    p.add_argument("--seed", type=int, default=0, help="RNG seed (default: %(default)s)")
    p.add_argument(
        "--users", type=int, nargs="*", default=None,
        help="user ids to print (default: first 5 multi-location users)",
    )
    p.add_argument(
        "--top-k",
        type=int,
        default=3,
        help="profile entries to print per user (default: %(default)s)",
    )
    p.add_argument(
        "--save-artifact",
        type=Path,
        default=None,
        metavar="PATH",
        help="persist the fitted result as a serving artifact "
        "(conventionally *.mlp.npz)",
    )
    _add_engine_arguments(p)


def _add_predict(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "predict",
        help="offline batch fold-in scoring against a saved artifact",
        description=(
            "Score users against a frozen fitted posterior (a .mlp.npz "
            "artifact written by `fit --save-artifact`) without "
            "re-running Gibbs: training users by id, or new unseen "
            "users from a JSON request file."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "request file: a JSON list of user specs, each either\n"
            '  {"user_id": 7}                          (training user)\n'
            '  {"friends": [3, 17], "venues": [42],    (new user)\n'
            '   "venue_names": ["austin"], "observed_location": null}\n'
            "\nbulk mode: --input takes JSONL (one spec per line) and\n"
            "streams predictions as JSONL to --output, scored through\n"
            "the vectorized batch fold-in engine -- the way to profile\n"
            "whole populations offline.\n"
            "\nexample:\n"
            "  python -m repro predict model.mlp.npz --users 0 1 2\n"
            "  python -m repro predict model.mlp.npz --requests specs.json "
            "-o out.json\n"
            "  python -m repro predict model.mlp.npz --input specs.jsonl "
            "--output preds.jsonl\n"
        ),
    )
    p.add_argument("artifact", type=Path, help="model artifact path (.mlp.npz)")
    p.add_argument(
        "--users",
        type=int,
        nargs="*",
        default=None,
        help="training-set user ids to score",
    )
    p.add_argument(
        "--requests",
        type=Path,
        default=None,
        help="JSON file with a list of user specs",
    )
    p.add_argument(
        "--input",
        type=Path,
        default=None,
        help="JSONL file of user specs (one JSON object per line); "
        "bulk mode, mutually exclusive with --users/--requests",
    )
    p.add_argument(
        "--top-k",
        type=int,
        default=3,
        help="profile entries per prediction (default: %(default)s)",
    )
    p.add_argument(
        "--output",
        "-o",
        type=Path,
        default=None,
        help="write predictions to this file (default: stdout); JSON "
        "normally, JSONL in --input bulk mode",
    )


def _add_ingest(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "ingest",
        help="stream world deltas into a saved artifact's world offline",
        description=(
            "Apply a stream of WorldDelta batches (new users, follow "
            "edges, venue mentions, label updates) to a saved "
            "artifact's world -- the offline twin of the server's "
            "POST /ingest.  Each input line is one delta; each output "
            "line reports the new world generation and chained hash.  "
            "Optionally re-scores the delta-affected unlabeled users "
            "afterwards."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "delta JSONL line format:\n"
            '  {"new_users": [{"observed_location": 5}, {}],\n'
            '   "edges": [[0, 3], [612, 4]],\n'
            '   "tweets": [[612, 17], [3, "austin"]],\n'
            '   "labels": {"12": 3, "15": null}}\n'
            "\nexample:\n"
            "  python -m repro ingest model.mlp.npz --input deltas.jsonl\n"
            "  python -m repro ingest model.mlp.npz --input deltas.jsonl \\\n"
            "      --journal journal/ --score-output rescored.jsonl\n"
        ),
    )
    p.add_argument("artifact", type=Path, help="model artifact path (.mlp.npz)")
    p.add_argument(
        "--input",
        type=Path,
        required=True,
        help="JSONL file of delta payloads (one JSON object per line)",
    )
    p.add_argument(
        "--journal",
        type=Path,
        default=None,
        metavar="DIR",
        help="durable ingest: recover this write-ahead journal "
        "directory first, then append every delta to it before "
        "applying -- repeated invocations continue the generation "
        "chain",
    )
    p.add_argument(
        "--score-output",
        type=Path,
        default=None,
        metavar="PATH",
        help="after ingesting, re-score the delta-affected unlabeled "
        "users through the batch fold-in engine and write JSONL "
        "predictions here",
    )
    p.add_argument(
        "--top-k",
        type=int,
        default=3,
        help="profile entries per re-scored prediction (default: %(default)s)",
    )


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve",
        help="serve fold-in inference over HTTP from a saved artifact",
        description=(
            "Run the JSON-over-HTTP inference server on a saved model "
            "artifact: POST /predict-home (fold-in), POST /predict-batch "
            "(bulk population scoring), POST /profile (stored "
            "posterior), POST /explain-edge, GET /healthz, GET /artifact."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "example:\n"
            "  python -m repro serve model.mlp.npz --port 8000 &\n"
            "  curl -s localhost:8000/healthz\n"
            "  curl -s -X POST localhost:8000/predict-home \\\n"
            '       -d \'{"users": [{"user_id": 7}]}\'\n'
        ),
    )
    p.add_argument("artifact", type=Path, help="model artifact path (.mlp.npz)")
    p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    p.add_argument(
        "--port", type=int, default=8000, help="bind port (default: %(default)s)"
    )
    p.add_argument(
        "--cache-size",
        type=_positive_int,
        default=1024,
        help="LRU prediction cache capacity (default: %(default)s)",
    )
    p.add_argument(
        "--verbose", action="store_true", help="log every request"
    )
    p.add_argument(
        "--access-log",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit one structured JSON line per request (route, status, "
        "latency_ms, trace id) to FILE, or stderr when no FILE is given",
    )
    p.add_argument(
        "--journal",
        type=Path,
        default=None,
        metavar="DIR",
        help="durable ingest: recover this write-ahead journal "
        "directory on boot (snapshot + tail replay) and journal every "
        "POST /ingest before applying it",
    )
    p.add_argument(
        "--journal-fsync",
        type=_positive_int,
        default=1,
        metavar="N",
        help="fsync the journal every N appends (default: %(default)s "
        "-- every acknowledged ingest survives kill -9)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="serve through N forked predictor processes behind an "
        "asyncio front end with micro-batch coalescing; 0 (the "
        "default) keeps the single-process threaded server",
    )
    p.add_argument(
        "--coalesce-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="micro-batching window: predict requests arriving within "
        "MS milliseconds coalesce into one batch solve "
        "(default: %(default)s; only with --workers > 0)",
    )
    p.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help="world-store directory for the multi-process topology "
        "(generation-versioned mmap arenas; default: a temporary "
        "directory removed on exit)",
    )
    p.add_argument(
        "--drain-seconds",
        type=float,
        default=10.0,
        metavar="S",
        help="graceful-shutdown deadline: on SIGTERM/SIGINT, stop "
        "accepting and give in-flight requests up to S seconds "
        "(default: %(default)s)",
    )


def _add_replay(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "replay",
        help="recover a journaled world and report its identity",
        description=(
            "Open a write-ahead journal directory against an "
            "artifact's world, recover it (load the newest chaining "
            "snapshot, replay the delta tail, repair any torn/corrupt "
            "suffix) and print the recovery report as JSON: final "
            "generation, chained world hash, records replayed/dropped "
            "and bytes repaired."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "example:\n"
            "  python -m repro replay model.mlp.npz --journal journal/\n"
            "  python -m repro replay model.mlp.npz --journal journal/ "
            "--verify\n"
        ),
    )
    p.add_argument("artifact", type=Path, help="model artifact path (.mlp.npz)")
    p.add_argument(
        "--journal",
        type=Path,
        required=True,
        metavar="DIR",
        help="write-ahead journal directory to recover",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help="golden check: recompile the replayed world from its raw "
        "relationship arrays and require bit-identical derived arrays "
        "(exit 1 on mismatch)",
    )


def _add_compact(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "compact",
        help="snapshot a journaled world and truncate the journal",
        description=(
            "Recover a journal directory, checkpoint the recovered "
            "world as a versioned snapshot (.world.npz) and truncate "
            "the journal behind it -- future recoveries load the "
            "snapshot and replay only the post-compaction tail.  "
            "Prints the compaction report as JSON."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "example:\n"
            "  python -m repro compact model.mlp.npz --journal journal/\n"
        ),
    )
    p.add_argument("artifact", type=Path, help="model artifact path (.mlp.npz)")
    p.add_argument(
        "--journal",
        type=Path,
        required=True,
        metavar="DIR",
        help="write-ahead journal directory to compact",
    )


def _add_info(sub: argparse._SubParsersAction) -> None:
    sub.add_parser(
        "info",
        help="print version and runtime information as JSON",
        description=(
            "Print the package version, available Gibbs engines, numpy "
            "version and the artifact format version this build reads "
            "and writes -- the first things to check when a served "
            "artifact misbehaves."
        ),
    )


def _add_evaluate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "evaluate",
        help="five-method home-prediction comparison (Table 2)",
        description=(
            "Run the Sec. 5.1 home-prediction protocol: hide a holdout "
            "of labels, predict them with MLP, MLP_U, MLP_C and the "
            "baselines, and print the Table 2 accuracy comparison."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=_ENGINE_EPILOG,
    )
    p.add_argument("dataset", type=Path, help="dataset JSON path")
    p.add_argument(
        "--iterations",
        type=int,
        default=24,
        help="total Gibbs sweeps per fit (default: %(default)s)",
    )
    p.add_argument(
        "--burn-in",
        type=int,
        default=10,
        help="sweeps discarded before accumulation (default: %(default)s)",
    )
    p.add_argument("--seed", type=int, default=0, help="RNG seed (default: %(default)s)")
    p.add_argument(
        "--holdout",
        type=float,
        default=0.2,
        help="fraction of labels hidden for testing (default: %(default)s)",
    )
    _add_engine_arguments(p)


def _add_reproduce(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "reproduce",
        help="regenerate every paper table and figure",
        description=(
            "Regenerate the full artifact set of the paper (Tables 2-5, "
            "Figures 3-8) from one synthetic world, printing each as "
            "text and optionally writing them to a directory."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=_ENGINE_EPILOG,
    )
    p.add_argument(
        "--users", type=int, default=900, help="world size (default: %(default)s)"
    )
    p.add_argument("--seed", type=int, default=11, help="RNG seed (default: %(default)s)")
    p.add_argument(
        "--output-dir", type=Path, default=None,
        help="also write each artifact to this directory",
    )
    _add_engine_arguments(p)


def _add_metrics(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "metrics",
        help="dump (or watch) a running server's /metrics",
        description=(
            "Fetch GET /metrics from a running `repro serve` instance "
            "and print the Prometheus text exposition, optionally "
            "filtered and refreshed on an interval."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "example:\n"
            "  python -m repro metrics\n"
            "  python -m repro metrics --url http://127.0.0.1:8000 "
            "--grep http_request --watch 2\n"
        ),
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:8000",
        help="server base URL (default: %(default)s)",
    )
    p.add_argument(
        "--grep",
        default=None,
        metavar="SUBSTR",
        help="only print sample/comment lines containing SUBSTR",
    )
    p.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="refresh every SECONDS until interrupted instead of "
        "dumping once",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argparse tree (one subparser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multiple Location Profiling (VLDB 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_generate(sub)
    _add_stats(sub)
    _add_fit(sub)
    _add_evaluate(sub)
    _add_reproduce(sub)
    _add_predict(sub)
    _add_ingest(sub)
    _add_replay(sub)
    _add_compact(sub)
    _add_serve(sub)
    _add_metrics(sub)
    _add_query(sub)
    _add_info(sub)
    return parser


def _add_query(sub) -> None:
    """Register ``repro query`` (tree lives in :mod:`repro.query.cli`)."""
    from repro.query.cli import add_query_parser

    add_query_parser(sub)


def cmd_query(args: argparse.Namespace) -> int:
    """``repro query <kind>``: geo-analytics over predicted homes."""
    from repro.query.cli import cmd_query as run

    return run(args)


def cmd_info(args: argparse.Namespace) -> int:
    """``repro info``: print version and runtime information as JSON."""
    import platform

    import numpy as np

    import repro
    from repro.engine import ENGINES
    from repro.serving.artifacts import (
        ARTIFACT_VERSION,
        SUPPORTED_ARTIFACT_VERSIONS,
    )

    print(
        json.dumps(
            {
                "version": repro.__version__,
                "engines": sorted(ENGINES),
                "python": platform.python_version(),
                "numpy": np.__version__,
                "artifact_format_version": ARTIFACT_VERSION,
                "artifact_format_reads": list(SUPPORTED_ARTIFACT_VERSIONS),
            },
            indent=2,
        )
    )
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: write a synthetic world to disk."""
    from repro.data.generator import SyntheticWorldConfig, generate_world
    from repro.data.io import save_dataset

    config = SyntheticWorldConfig(
        n_users=args.users,
        seed=args.seed,
        labeled_fraction=args.labeled_fraction,
        mean_friends=args.mean_friends,
        mean_venues=args.mean_venues,
        render_tweets=args.render_tweets,
    )
    dataset = generate_world(config, shards=args.shards)
    save_dataset(dataset, args.output)
    print(f"wrote {dataset} -> {args.output}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: print dataset statistics."""
    from repro.data.io import load_dataset
    from repro.data.stats import compute_stats

    dataset = load_dataset(args.dataset)
    print(json.dumps(compute_stats(dataset).as_dict(), indent=2))
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    """``repro fit``: fit the MLP model and print profiles."""
    from repro.core.model import MLPModel
    from repro.core.params import MLPParams
    from repro.data.io import load_dataset

    dataset = load_dataset(args.dataset)
    params = MLPParams(
        n_iterations=args.iterations,
        burn_in=args.burn_in,
        seed=args.seed,
        engine=args.engine,
        n_jobs=args.jobs,
        n_chains=args.chains,
    )
    result = MLPModel(params).fit(dataset)
    law = result.fitted_law
    print(f"fitted law: alpha={law.alpha:.3f} beta={law.beta:.5f}")
    if result.posterior is not None:
        summary = ", ".join(
            f"{name}={value:.3f}"
            for name, value in result.posterior.convergence_summary().items()
        )
        print(f"chains: {args.chains}  R-hat: {summary}")

    if args.users is not None:
        user_ids = args.users
    else:
        user_ids = list(dataset.multi_location_user_ids()[:5])
    gaz = dataset.gazetteer
    for uid in user_ids:
        if not 0 <= uid < dataset.n_users:
            print(f"user {uid}: not in dataset", file=sys.stderr)
            continue
        profile = result.profile_of(uid)
        print(f"user {uid}: {profile.describe(gaz, k=args.top_k)}")
    if args.save_artifact is not None:
        from repro.serving.artifacts import save_result

        artifact_id = save_result(result, args.save_artifact)
        print(f"saved artifact -> {args.save_artifact} (id {artifact_id})")
    return 0


def _load_predictor(artifact_path, cache_size: int = 1024):
    """Shared predict/serve bootstrap: artifact -> FoldInPredictor."""
    from repro.serving.artifacts import artifact_metadata, load_result
    from repro.serving.foldin import FoldInPredictor

    meta = artifact_metadata(artifact_path)
    return FoldInPredictor(
        load_result(artifact_path),
        artifact_id=meta["artifact_id"],
        cache_size=cache_size,
    )


def _cmd_predict_bulk(args: argparse.Namespace, predictor) -> int:
    """``predict --input specs.jsonl --output preds.jsonl``: the bulk path.

    Reads one spec per line, scores in batches through the vectorized
    engine, and streams one prediction per line -- memory stays bounded
    no matter how large the population dump is.
    """
    gaz = predictor.dataset.gazetteer
    chunk = 4096
    written = 0
    try:
        # Open (and thereby validate) the input *before* touching the
        # output: a typo'd --input must not truncate an existing
        # predictions file.
        lines = args.input.open()
    except OSError as exc:
        print(f"cannot read --input: {exc}", file=sys.stderr)
        return 2
    try:
        out = args.output.open("w") if args.output is not None else sys.stdout
    except OSError as exc:
        lines.close()
        print(f"cannot write --output: {exc}", file=sys.stderr)
        return 2
    try:
        with lines:
            batch: list[dict] = []
            for line_no, line in enumerate(lines, start=1):
                if not line.strip():
                    continue
                try:
                    batch.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    print(f"bad JSONL line {line_no}: {exc}", file=sys.stderr)
                    return 2
                if len(batch) < chunk:
                    continue
                written += _write_bulk_predictions(predictor, batch, gaz, args, out)
                batch = []
            if batch:
                written += _write_bulk_predictions(predictor, batch, gaz, args, out)
    except ValueError as exc:
        print(f"bad request: {exc}", file=sys.stderr)
        return 2
    finally:
        if args.output is not None:
            out.close()
    if args.output is not None:
        print(f"wrote {written} predictions -> {args.output}")
    return 0


def _write_bulk_predictions(predictor, requests, gaz, args, out) -> int:
    from repro.serving.foldin import prediction_payload

    specs = [predictor.resolve_request(entry) for entry in requests]
    # One-shot population dumps are mostly-unique specs: caching them
    # would only churn the LRU (score_population does the same).
    predictions = predictor.predict_batch(specs, use_cache=False)
    for request, prediction in zip(requests, predictions):
        record = {
            "request": request,
            **prediction_payload(prediction, gaz, top_k=args.top_k),
        }
        out.write(json.dumps(record) + "\n")
    return len(specs)


def cmd_predict(args: argparse.Namespace) -> int:
    """``repro predict``: offline batch fold-in against an artifact."""
    from repro.serving.foldin import prediction_payload

    if args.input is not None and (
        args.users is not None or args.requests is not None
    ):
        # Knowable from the flags alone -- fail before paying the
        # artifact load.
        print(
            "--input (bulk JSONL) cannot be combined with "
            "--users/--requests",
            file=sys.stderr,
        )
        return 2
    predictor = _load_predictor(args.artifact)
    if args.input is not None:
        return _cmd_predict_bulk(args, predictor)
    requests: list[dict] = []
    if args.users is not None:
        requests.extend({"user_id": uid} for uid in args.users)
    if args.requests is not None:
        entries = json.loads(args.requests.read_text())
        if not isinstance(entries, list):
            print("--requests file must hold a JSON list", file=sys.stderr)
            return 2
        requests.extend(entries)
    if not requests:
        print("nothing to score: pass --users and/or --requests", file=sys.stderr)
        return 2
    try:
        specs = [predictor.resolve_request(entry) for entry in requests]
    except ValueError as exc:
        print(f"bad request: {exc}", file=sys.stderr)
        return 2
    gaz = predictor.dataset.gazetteer
    payload = {
        "artifact_id": predictor.artifact_id,
        "predictions": [
            {"request": request, **prediction_payload(p, gaz, top_k=args.top_k)}
            for request, p in zip(
                requests, predictor.predict_batch(specs)
            )
        ],
    }
    text = json.dumps(payload, indent=2)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"wrote {len(specs)} predictions -> {args.output}")
    else:
        print(text)
    return 0


def _rebuild_predictor(predictor, world):
    """A predictor over a journal-recovered world, same frozen tables."""
    from repro.serving.foldin import FoldInPredictor

    return FoldInPredictor(
        predictor.result,
        artifact_id=predictor.artifact_id,
        cache_size=predictor.cache.max_size,
        world=world,
    )


def _recover_journaled_predictor(predictor, journal_dir, fsync_every=1):
    """Open + recover a journal over the predictor's world.

    Returns ``(predictor, journal, report)``, the predictor swapped to
    the recovered world when the journal was ahead of the artifact.
    ``JournalError`` propagates for the caller to turn into exit code 2.
    """
    from repro.data.journal import open_journal

    world, journal, report = open_journal(
        journal_dir, predictor.world, fsync_every=fsync_every
    )
    if world is not predictor.world:
        predictor = _rebuild_predictor(predictor, world)
    return predictor, journal, report


def cmd_ingest(args: argparse.Namespace) -> int:
    """Stream deltas into an artifact's world; optionally re-score."""
    from repro.data.delta import WorldDelta
    from repro.serving.batch import score_population
    from repro.serving.foldin import prediction_payload

    predictor = _load_predictor(args.artifact)
    gaz = predictor.world.gazetteer
    journal = None
    boot_generation = 0
    if args.journal is not None:
        from repro.data.journal import JournalError, journaled_ingest

        try:
            predictor, journal, report = _recover_journaled_predictor(
                predictor, args.journal
            )
        except JournalError as exc:
            print(f"cannot open --journal: {exc}", file=sys.stderr)
            return 2
        boot_generation = predictor.world.generation
        print(json.dumps({"recovered": report}), file=sys.stderr)
    try:
        try:
            lines = args.input.open()
        except OSError as exc:
            print(f"cannot read --input: {exc}", file=sys.stderr)
            return 2
        applied = 0
        with lines:
            for line_no, line in enumerate(lines, start=1):
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                    delta = WorldDelta.from_payload(payload, gazetteer=gaz)
                    if journal is not None:
                        world = journaled_ingest(predictor, journal, delta)
                    else:
                        world = predictor.refresh(delta)
                except (
                    json.JSONDecodeError,
                    ValueError,
                    TypeError,
                    KeyError,
                ) as exc:
                    print(
                        f"bad delta on line {line_no}: {exc}", file=sys.stderr
                    )
                    return 2
                applied += 1
                record = world.delta_log[-1]
                print(
                    json.dumps(
                        {
                            "generation": world.generation,
                            "world_hash": world.content_hash,
                            "users": world.n_users,
                            "new_users": record.n_new_users,
                            "edges": record.n_edges,
                            "tweets": record.n_tweets,
                            "label_updates": record.n_label_updates,
                            "touched_users": int(record.touched_users.size),
                        }
                    )
                )
        if args.score_output is not None:
            # Always produce the requested file -- zero applied deltas
            # means zero affected users, which is an *empty* JSONL, not
            # a silently missing one.  On a journaled run the window
            # starts at the *recovered* generation -- only this
            # invocation's deltas are re-scored -- and the journal
            # answers the touched window even past DELTA_LOG_LIMIT.
            if applied:
                from repro.data.delta import StaleWindowError

                try:
                    predictions = score_population(
                        predictor.world,
                        predictor.result,
                        predictor=predictor,
                        since_generation=boot_generation,
                        journal=journal,
                    )
                except StaleWindowError as exc:
                    # A stream longer than the retained log (or a
                    # window behind the last compaction): the touched
                    # set is gone, so re-score the whole unlabeled
                    # population instead of failing after a successful
                    # ingest -- but say so, loudly: a silent fallback
                    # turns "re-scored the delta" into "re-scored the
                    # world" without anyone noticing the cost or the
                    # cause (docs/API.md, "Incremental re-scoring
                    # window").
                    print(
                        "warning: incremental re-score window lost "
                        f"({exc}); falling back to a FULL re-score of "
                        "the unlabeled population",
                        file=sys.stderr,
                    )
                    predictions = score_population(
                        predictor.world, predictor.result, predictor=predictor
                    )
            else:
                predictions = {}
            with args.score_output.open("w") as out:
                for uid in sorted(predictions):
                    record = {
                        "user_id": uid,
                        **prediction_payload(
                            predictions[uid], gaz, top_k=args.top_k
                        ),
                    }
                    out.write(json.dumps(record) + "\n")
            print(
                f"re-scored {len(predictions)} delta-affected users -> "
                f"{args.score_output}",
                file=sys.stderr,
            )
        return 0
    finally:
        if journal is not None:
            journal.close()


def cmd_replay(args: argparse.Namespace) -> int:
    """Recover a journaled world; print the report; optionally verify."""
    from repro.data.journal import JournalError, open_journal

    predictor = _load_predictor(args.artifact)
    try:
        world, journal, report = open_journal(
            args.journal, predictor.world, create=False
        )
    except JournalError as exc:
        print(f"replay failed: {exc}", file=sys.stderr)
        return 2
    journal.close()
    print(json.dumps(report))
    if args.verify:
        from repro.data.columnar import ColumnarWorld

        rebuilt = ColumnarWorld.from_edge_arrays(
            world.gazetteer,
            world.observed_location,
            world.edge_src,
            world.edge_dst,
            world.tweet_user,
            world.tweet_venue,
        )
        if rebuilt.rehash() != world.rehash():
            print(
                "verify FAILED: replayed arrays differ from a "
                "from-scratch recompile of the same relationships",
                file=sys.stderr,
            )
            return 1
        print(
            f"verify ok: generation {world.generation} is bit-identical "
            "to a from-scratch recompile",
            file=sys.stderr,
        )
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    """Recover a journaled world, snapshot it, truncate the journal."""
    from repro.data.journal import JournalError, open_journal

    predictor = _load_predictor(args.artifact)
    try:
        world, journal, _report = open_journal(
            args.journal, predictor.world, create=False
        )
    except JournalError as exc:
        print(f"compact failed: {exc}", file=sys.stderr)
        return 2
    try:
        print(json.dumps(journal.compact(world)))
    finally:
        journal.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: serve fold-in inference over HTTP."""
    from repro.serving.server import make_server

    predictor = _load_predictor(args.artifact, cache_size=args.cache_size)
    journal = None
    if args.journal is not None:
        from repro.data.journal import JournalError

        try:
            predictor, journal, report = _recover_journaled_predictor(
                predictor, args.journal, fsync_every=args.journal_fsync
            )
        except JournalError as exc:
            print(f"cannot open --journal: {exc}", file=sys.stderr)
            return 2
        print(
            f"journal {args.journal}: recovered generation "
            f"{report['generation']} ({report['world_hash']}), "
            f"replayed {report['replayed']} of {report['records']} "
            f"records"
            + (
                f" from snapshot generation "
                f"{report['snapshot_generation']}"
                if report["snapshot"] is not None
                else ""
            ),
            flush=True,
        )
    access_log = None
    access_log_fh = None
    if args.access_log is not None:
        if args.access_log == "-":
            access_log = sys.stderr
        else:
            access_log_fh = open(args.access_log, "a", encoding="utf-8")
            access_log = access_log_fh
    try:
        if args.workers > 0:
            return _serve_multiprocess(args, predictor, journal, access_log)
        server = make_server(
            predictor,
            host=args.host,
            port=args.port,
            quiet=not args.verbose,
            journal=journal,
            access_log=access_log,
        )
        host, port = server.server_address[:2]
        print(
            f"serving artifact {predictor.artifact_id} "
            f"({predictor.world.n_users} users, generation "
            f"{predictor.world.generation}) on http://{host}:{port}",
            flush=True,
        )
        _install_drain_handlers(server, args.drain_seconds)
        try:
            # Returns once a signal-handler drain calls shutdown().
            server.serve_forever()
        except KeyboardInterrupt:
            server.drain(args.drain_seconds)
        print("shut down cleanly", flush=True)
        return 0
    finally:
        if journal is not None:
            journal.close()
        if access_log_fh is not None:
            access_log_fh.close()


def _install_drain_handlers(server, drain_seconds: float) -> None:
    """SIGTERM/SIGINT -> graceful drain of the threaded server.

    ``drain()`` blocks on ``shutdown()``, which waits for the
    ``serve_forever`` loop -- the very loop a signal handler interrupts
    -- so the drain runs on its own thread while the main thread's
    ``serve_forever`` returns.
    """
    import signal
    import threading

    def handle(signum, frame):
        threading.Thread(
            target=server.drain,
            args=(drain_seconds,),
            name="repro-drain",
            daemon=True,
        ).start()

    signal.signal(signal.SIGTERM, handle)
    signal.signal(signal.SIGINT, handle)


def _serve_multiprocess(args, predictor, journal, access_log) -> int:
    """The ``--workers N`` topology: store + forked pool + async front end."""
    import asyncio
    import shutil
    import signal
    import tempfile

    from repro.serving.frontend import make_frontend
    from repro.serving.store import StoreError, WorldStore

    store_dir = args.store
    temp_store = store_dir is None
    if temp_store:
        store_dir = tempfile.mkdtemp(prefix="repro-store-")
    store = WorldStore(store_dir, predictor.world.gazetteer)
    try:
        frontend = make_frontend(
            predictor,
            store,
            args.workers,
            host=args.host,
            port=args.port,
            coalesce_ms=args.coalesce_ms,
            journal=journal,
            access_log=access_log,
            quiet=not args.verbose,
        )
    except StoreError as exc:
        print(f"cannot open --store: {exc}", file=sys.stderr)
        return 2

    async def main() -> None:
        await frontend.start()
        print(
            f"serving artifact {predictor.artifact_id} "
            f"({predictor.world.n_users} users, generation "
            f"{predictor.world.generation}) on "
            f"http://{args.host}:{frontend.port} "
            f"[{args.workers} workers, coalesce {args.coalesce_ms}ms, "
            f"store {store_dir}]",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("draining...", flush=True)
        await frontend.drain(args.drain_seconds)

    try:
        asyncio.run(main())
    finally:
        store.close()
        if temp_store:
            shutil.rmtree(store_dir, ignore_errors=True)
    print("shut down cleanly", flush=True)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """``repro metrics``: dump (or watch) a server's /metrics."""
    import time as _time
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/metrics"

    def fetch_and_print() -> int:
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                text = response.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as exc:
            print(f"cannot fetch {url}: {exc}", file=sys.stderr)
            return 1
        if args.grep is not None:
            text = "\n".join(
                line for line in text.splitlines() if args.grep in line
            )
            if text:
                text += "\n"
        print(text, end="" if text.endswith("\n") or not text else "\n")
        return 0

    if args.watch is None:
        return fetch_and_print()
    try:
        while True:
            print(f"--- {url} @ {_time.strftime('%H:%M:%S')} ---")
            fetch_and_print()
            _time.sleep(max(args.watch, 0.1))
    except KeyboardInterrupt:
        return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """``repro evaluate``: five-method home-prediction comparison."""
    from repro.core.params import MLPParams
    from repro.data.io import load_dataset
    from repro.evaluation.methods import standard_methods
    from repro.evaluation.splits import single_holdout_split
    from repro.evaluation.tasks import run_home_prediction
    from repro.experiments import report, tables

    dataset = load_dataset(args.dataset)
    params = MLPParams(
        n_iterations=args.iterations,
        burn_in=args.burn_in,
        seed=args.seed,
        track_edge_assignments=False,
        engine=args.engine,
        n_jobs=args.jobs,
        n_chains=args.chains,
    )
    split = single_holdout_split(dataset, args.holdout, seed=args.seed)
    results = run_home_prediction(
        dataset, standard_methods(params), splits=[split]
    )
    print(report.render_table2(tables.table2(dataset, results)))
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """``repro reproduce``: regenerate every paper table and figure."""
    from repro.experiments import report
    from repro.experiments.config import default_config
    from repro.experiments.runner import ExperimentSuite

    config = default_config(
        n_users=args.users,
        seed=args.seed,
        engine=args.engine,
        jobs=args.jobs,
        chains=args.chains,
    )
    suite = ExperimentSuite(config)
    artifacts = {
        "fig3a": report.render_fig3a(suite.fig3a),
        "fig3b": report.render_fig3b(suite.fig3b),
        "fig3c": report.render_fig3c(suite.fig3c),
        "table2": report.render_table2(suite.table2),
        "fig4": report.render_fig4(suite.fig4),
        "fig5": report.render_fig5(suite.fig5),
        "table3": report.render_table3(suite.table3),
        "fig6": report.render_rank_sweep(suite.fig6),
        "fig7": report.render_rank_sweep(suite.fig7),
        "table4": report.render_table4(suite.table4),
        "fig8": report.render_fig8(suite.fig8),
        "table5": report.render_table5(suite.table5),
    }
    for name, text in artifacts.items():
        print(text)
        print()
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{name}.txt").write_text(text + "\n")
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "stats": cmd_stats,
    "fit": cmd_fit,
    "evaluate": cmd_evaluate,
    "reproduce": cmd_reproduce,
    "predict": cmd_predict,
    "ingest": cmd_ingest,
    "replay": cmd_replay,
    "compact": cmd_compact,
    "serve": cmd_serve,
    "metrics": cmd_metrics,
    "query": cmd_query,
    "info": cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: parse argv and dispatch to one command."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
