"""Evaluation metrics (Sec. 5 of the paper).

- ``accuracy_at`` / ``aad_curve``: Accuracy within m miles, ACC@m, and
  the accumulative-accuracy-at-distance curves of Fig. 4.
- ``dp_at_k`` / ``dr_at_k``: distance-based precision and recall of
  Sec. 5.2 -- a predicted location counts when it is within m miles of
  *some* true location, and vice versa.
- ``explanation_accuracy``: Sec. 5.3 -- a following relationship is
  accurately explained iff *both* endpoints' assignments are within m
  miles of the true assignments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.geo.gazetteer import Gazetteer

#: The paper's default threshold: "By default, we set m to 100."
DEFAULT_MILES = 100.0


def accuracy_at(
    gazetteer: Gazetteer,
    predicted: Sequence[int],
    truth: Sequence[int],
    miles: float = DEFAULT_MILES,
) -> float:
    """ACC@m: fraction of users placed within ``miles`` of their home.

    ``predicted`` and ``truth`` are parallel location-id sequences over
    the evaluated users.
    """
    pred = np.asarray(predicted, dtype=np.int64)
    true = np.asarray(truth, dtype=np.int64)
    if pred.shape != true.shape:
        raise ValueError("predicted and truth must be parallel")
    if pred.size == 0:
        return 0.0
    dmat = gazetteer.distance_matrix
    return float(np.mean(dmat[pred, true] <= miles))


def aad_curve(
    gazetteer: Gazetteer,
    predicted: Sequence[int],
    truth: Sequence[int],
    mile_grid: Iterable[float] = tuple(range(0, 150, 10)),
) -> list[tuple[float, float]]:
    """Accumulative accuracy at distance: the Fig. 4 curves.

    Returns ``[(miles, ACC@miles), ...]`` over ``mile_grid``.
    """
    dmat = gazetteer.distance_matrix
    pred = np.asarray(predicted, dtype=np.int64)
    true = np.asarray(truth, dtype=np.int64)
    if pred.shape != true.shape:
        raise ValueError("predicted and truth must be parallel")
    if pred.size == 0:
        return [(float(m), 0.0) for m in mile_grid]
    distances = dmat[pred, true]
    return [(float(m), float(np.mean(distances <= m))) for m in mile_grid]


def _close_enough(
    gazetteer: Gazetteer, location: int, others: Sequence[int], miles: float
) -> bool:
    """The paper's c(l, L): exists l' in L with D(l, l') < m."""
    dmat = gazetteer.distance_matrix
    return bool(others) and bool(
        np.any(dmat[location, np.asarray(others, dtype=np.int64)] <= miles)
    )


def dp_of_user(
    gazetteer: Gazetteer,
    predicted: Sequence[int],
    truth: Sequence[int],
    miles: float = DEFAULT_MILES,
) -> float:
    """DP(u): fraction of predicted locations close to some true one."""
    if not predicted:
        return 0.0
    hits = sum(
        1 for loc in predicted if _close_enough(gazetteer, loc, truth, miles)
    )
    return hits / len(predicted)


def dr_of_user(
    gazetteer: Gazetteer,
    predicted: Sequence[int],
    truth: Sequence[int],
    miles: float = DEFAULT_MILES,
) -> float:
    """DR(u): fraction of true locations close to some predicted one."""
    if not truth:
        return 0.0
    hits = sum(
        1 for loc in truth if _close_enough(gazetteer, loc, predicted, miles)
    )
    return hits / len(truth)


def dp_at_k(
    gazetteer: Gazetteer,
    predicted_rankings: Sequence[Sequence[int]],
    truths: Sequence[Sequence[int]],
    k: int = 2,
    miles: float = DEFAULT_MILES,
) -> float:
    """Mean DP@K over users (Sec. 5.2; K=2 by default, as in Table 3)."""
    if len(predicted_rankings) != len(truths):
        raise ValueError("rankings and truths must be parallel")
    if not truths:
        return 0.0
    return float(
        np.mean(
            [
                dp_of_user(gazetteer, list(ranking[:k]), list(truth), miles)
                for ranking, truth in zip(predicted_rankings, truths)
            ]
        )
    )


def dr_at_k(
    gazetteer: Gazetteer,
    predicted_rankings: Sequence[Sequence[int]],
    truths: Sequence[Sequence[int]],
    k: int = 2,
    miles: float = DEFAULT_MILES,
) -> float:
    """Mean DR@K over users (Sec. 5.2)."""
    if len(predicted_rankings) != len(truths):
        raise ValueError("rankings and truths must be parallel")
    if not truths:
        return 0.0
    return float(
        np.mean(
            [
                dr_of_user(gazetteer, list(ranking[:k]), list(truth), miles)
                for ranking, truth in zip(predicted_rankings, truths)
            ]
        )
    )


def explanation_accuracy(
    gazetteer: Gazetteer,
    predicted_assignments: Sequence[tuple[int, int]],
    true_assignments: Sequence[tuple[int, int]],
    miles: float = DEFAULT_MILES,
) -> float:
    """Sec. 5.3 ACC@m over relationship explanations.

    A relationship is accurately explained iff *both* the follower's
    and the friend's assignments are within ``miles`` of the truth.
    """
    if len(predicted_assignments) != len(true_assignments):
        raise ValueError("assignment sequences must be parallel")
    if not true_assignments:
        return 0.0
    dmat = gazetteer.distance_matrix
    correct = 0
    for (px, py), (tx, ty) in zip(predicted_assignments, true_assignments):
        if dmat[px, tx] <= miles and dmat[py, ty] <= miles:
            correct += 1
    return correct / len(true_assignments)
