"""Quality metrics for geo-grouping followers (Sec. 5.3 application).

The paper motivates relationship explanation with the ability to group
a user's followers into geo groups ("Carol is in Lucy's Austin
group").  On generator worlds the true grouping is known: each
location-based incoming edge carries the profiled user's true
assignment ``y``.  This module scores a predicted grouping against it
with purity and pairwise F1 (the standard clustering-agreement pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.data.model import Dataset
from repro.geo.gazetteer import Gazetteer


def true_geo_groups(
    dataset: Dataset, user_id: int, radius_miles: float = 100.0
) -> dict[int, list[int]]:
    """Ground-truth follower grouping by the true edge assignment.

    Followers whose edge is noise (no assignment) are omitted -- the
    paper's labeling did the same ("we only kept the following
    relationships in which users' location assignments could be clearly
    identified").  Assignment locations within ``radius_miles`` of an
    existing group merge into it.
    """
    gaz = dataset.gazetteer
    groups: dict[int, list[int]] = {}
    for edge in dataset.following:
        if edge.friend != user_id or edge.true_y is None:
            continue
        target = _merge_target(gaz, groups, edge.true_y, radius_miles)
        groups.setdefault(target, []).append(edge.follower)
    return groups


def _merge_target(
    gaz: Gazetteer,
    groups: dict[int, list[int]],
    location: int,
    radius_miles: float,
) -> int:
    for existing in groups:
        if gaz.distance(existing, location) <= radius_miles:
            return existing
    return location


@dataclass(frozen=True, slots=True)
class GroupingScore:
    """Agreement between predicted and true follower groupings."""

    purity: float
    pairwise_precision: float
    pairwise_recall: float
    n_followers: int

    @property
    def pairwise_f1(self) -> float:
        """Harmonic mean of pairwise precision and recall."""
        p, r = self.pairwise_precision, self.pairwise_recall
        return 0.0 if p + r == 0 else 2 * p * r / (p + r)


def score_grouping(
    predicted: dict[int, list[int]], truth: dict[int, list[int]]
) -> GroupingScore:
    """Score a predicted grouping against the true one.

    Only followers present in *both* groupings are compared (predicted
    groupings may include noise-edge followers the truth omits).
    """
    true_of = {f: g for g, members in truth.items() for f in members}
    pred_of = {f: g for g, members in predicted.items() for f in members}
    shared = sorted(set(true_of) & set(pred_of))
    if not shared:
        raise ValueError("no followers shared between groupings")

    # Purity: for each predicted group, the fraction in its majority
    # true group, weighted by group size.
    total_majority = 0
    for members in predicted.values():
        kept = [f for f in members if f in true_of]
        if not kept:
            continue
        counts: dict[int, int] = {}
        for f in kept:
            counts[true_of[f]] = counts.get(true_of[f], 0) + 1
        total_majority += max(counts.values())
    purity = total_majority / len(shared)

    # Pairwise precision/recall over follower pairs.
    same_pred = same_true = both = 0
    for a, b in combinations(shared, 2):
        p_same = pred_of[a] == pred_of[b]
        t_same = true_of[a] == true_of[b]
        same_pred += p_same
        same_true += t_same
        both += p_same and t_same
    precision = both / same_pred if same_pred else 1.0
    recall = both / same_true if same_true else 1.0
    return GroupingScore(
        purity=purity,
        pairwise_precision=precision,
        pairwise_recall=recall,
        n_followers=len(shared),
    )


def mean_grouping_score(
    dataset: Dataset,
    predicted_groups: dict[int, dict[int, list[int]]],
    radius_miles: float = 100.0,
    min_followers: int = 3,
) -> GroupingScore:
    """Average grouping quality over a set of profiled users.

    ``predicted_groups`` maps user id -> that user's predicted grouping
    (e.g. from :meth:`MLPResult.geo_groups`).  Users with fewer than
    ``min_followers`` comparable followers are skipped.
    """
    purities, precisions, recalls, total = [], [], [], 0
    for uid, predicted in predicted_groups.items():
        truth = true_geo_groups(dataset, uid, radius_miles)
        shared = set(
            f for members in truth.values() for f in members
        ) & set(f for members in predicted.values() for f in members)
        if len(shared) < min_followers:
            continue
        score = score_grouping(predicted, truth)
        purities.append(score.purity)
        precisions.append(score.pairwise_precision)
        recalls.append(score.pairwise_recall)
        total += score.n_followers
    if not purities:
        raise ValueError("no users with enough comparable followers")
    n = len(purities)
    return GroupingScore(
        purity=sum(purities) / n,
        pairwise_precision=sum(precisions) / n,
        pairwise_recall=sum(recalls) / n,
        n_followers=total,
    )
