"""Statistical significance of method comparisons.

The paper reports point estimates; a reproduction should also say
whether "A beats B" survives resampling.  Two standard tools over
paired per-user outcomes:

- :func:`paired_bootstrap` -- bootstrap the user set, report the
  probability that method A's ACC@m exceeds method B's and a
  confidence interval of the gap;
- :func:`mcnemar_test` -- the exact-ish McNemar test over the
  discordant pairs (A right / B wrong vs A wrong / B right).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geo.gazetteer import Gazetteer


def _hits(
    gazetteer: Gazetteer,
    predictions: np.ndarray,
    truths: np.ndarray,
    miles: float,
) -> np.ndarray:
    return gazetteer.distance_matrix[predictions, truths] <= miles


@dataclass(frozen=True, slots=True)
class BootstrapComparison:
    """Result of a paired bootstrap over users."""

    method_a: str
    method_b: str
    accuracy_a: float
    accuracy_b: float
    mean_gap: float
    ci_low: float
    ci_high: float
    #: Fraction of bootstrap resamples where A strictly beats B.
    p_a_beats_b: float
    n_resamples: int

    @property
    def significant_at_95(self) -> bool:
        """True when the 95% CI of the gap excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0


def paired_bootstrap(
    gazetteer: Gazetteer,
    predictions_a,
    predictions_b,
    truths,
    name_a: str = "A",
    name_b: str = "B",
    miles: float = 100.0,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapComparison:
    """Paired bootstrap of ACC@m over the shared evaluation users."""
    pred_a = np.asarray(predictions_a, dtype=np.int64)
    pred_b = np.asarray(predictions_b, dtype=np.int64)
    truth = np.asarray(truths, dtype=np.int64)
    if not (pred_a.shape == pred_b.shape == truth.shape) or truth.ndim != 1:
        raise ValueError("predictions and truths must be parallel 1-D arrays")
    if truth.size == 0:
        raise ValueError("empty evaluation set")
    hits_a = _hits(gazetteer, pred_a, truth, miles).astype(np.float64)
    hits_b = _hits(gazetteer, pred_b, truth, miles).astype(np.float64)
    n = truth.size
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, n, size=(n_resamples, n))
    gaps = hits_a[idx].mean(axis=1) - hits_b[idx].mean(axis=1)
    return BootstrapComparison(
        method_a=name_a,
        method_b=name_b,
        accuracy_a=float(hits_a.mean()),
        accuracy_b=float(hits_b.mean()),
        mean_gap=float(gaps.mean()),
        ci_low=float(np.quantile(gaps, 0.025)),
        ci_high=float(np.quantile(gaps, 0.975)),
        p_a_beats_b=float((gaps > 0).mean()),
        n_resamples=n_resamples,
    )


@dataclass(frozen=True, slots=True)
class McNemarResult:
    """Discordant-pair test over paired correctness outcomes."""

    a_right_b_wrong: int
    a_wrong_b_right: int
    statistic: float
    p_value: float


def mcnemar_test(
    gazetteer: Gazetteer,
    predictions_a,
    predictions_b,
    truths,
    miles: float = 100.0,
) -> McNemarResult:
    """McNemar test (with continuity correction; exact binomial for
    small discordant counts) of "A and B have equal error rates"."""
    pred_a = np.asarray(predictions_a, dtype=np.int64)
    pred_b = np.asarray(predictions_b, dtype=np.int64)
    truth = np.asarray(truths, dtype=np.int64)
    if not (pred_a.shape == pred_b.shape == truth.shape) or truth.ndim != 1:
        raise ValueError("predictions and truths must be parallel 1-D arrays")
    hits_a = _hits(gazetteer, pred_a, truth, miles)
    hits_b = _hits(gazetteer, pred_b, truth, miles)
    n10 = int(np.sum(hits_a & ~hits_b))
    n01 = int(np.sum(~hits_a & hits_b))
    n_disc = n10 + n01
    if n_disc == 0:
        return McNemarResult(0, 0, statistic=0.0, p_value=1.0)
    if n_disc < 25:
        # Exact binomial two-sided p-value.
        k = min(n10, n01)
        p = sum(
            math.comb(n_disc, i) for i in range(0, k + 1)
        ) * 0.5**n_disc * 2.0
        p = min(1.0, p)
        return McNemarResult(n10, n01, statistic=float("nan"), p_value=p)
    stat = (abs(n10 - n01) - 1.0) ** 2 / n_disc
    # Chi-square with 1 dof survival function via erfc.
    p = math.erfc(math.sqrt(stat / 2.0))
    return McNemarResult(n10, n01, statistic=stat, p_value=p)
