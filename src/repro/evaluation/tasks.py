"""Task runners for the paper's three evaluations (Sec. 5.1-5.3).

Protocols:

- **Home location prediction** (Sec. 5.1): k-fold cross validation
  over labeled users; per fold the test users' labels are hidden, each
  method predicts, ACC@m / AAD pool over folds.
- **Multiple location discovery** (Sec. 5.2): the cohort is the users
  whose ground truth has 2+ locations (the paper's manually-labeled 585
  users; our generator knows them exactly).  Their labels are hidden so
  discovery is genuine, methods run once, DP@K / DR@K are averaged over
  the cohort.
- **Relationship explanation** (Sec. 5.3): ground truth is the latent
  assignment pair of every location-based (non-noise) following edge
  (the paper's manually-labeled 4,426 edges).  MLP's modal sampled
  assignments compete against the home-location Base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.data.model import Dataset
from repro.evaluation.methods import LocationMethod
from repro.evaluation.metrics import (
    DEFAULT_MILES,
    aad_curve,
    accuracy_at,
    dp_at_k,
    dr_at_k,
    explanation_accuracy,
)
from repro.evaluation.splits import LabelSplit, k_fold_label_splits

_DEFAULT_GRID = tuple(range(0, 150, 10))


# ---------------------------------------------------------------------------
# Task 1: home location prediction
# ---------------------------------------------------------------------------


@dataclass
class HomePredictionResult:
    """Per-method home-prediction outcomes pooled over folds."""

    method_name: str
    #: Pooled (prediction, truth) pairs over all folds' test users.
    predictions: list[int] = field(default_factory=list)
    truths: list[int] = field(default_factory=list)

    def accuracy_at(self, dataset: Dataset, miles: float = DEFAULT_MILES) -> float:
        """ACC@miles over the pooled predictions."""
        return accuracy_at(dataset.gazetteer, self.predictions, self.truths, miles)

    def aad(self, dataset: Dataset, grid: Iterable[float] = _DEFAULT_GRID):
        """Average-additional-distance curve over the mile grid."""
        return aad_curve(dataset.gazetteer, self.predictions, self.truths, grid)


def run_home_prediction(
    dataset: Dataset,
    methods: Sequence[LocationMethod],
    n_folds: int = 5,
    seed: int = 0,
    splits: Sequence[LabelSplit] | None = None,
) -> dict[str, HomePredictionResult]:
    """Run the Sec. 5.1 protocol; returns {method name -> result}.

    ``splits`` can be supplied to reuse folds across callers (the
    benchmark harness shares them between Table 2 and Fig. 4).
    """
    if splits is None:
        splits = k_fold_label_splits(dataset, n_folds=n_folds, seed=seed)
    results = {m.name: HomePredictionResult(method_name=m.name) for m in methods}
    for split in splits:
        for method in methods:
            prediction = method.predict(split.train_dataset)
            result = results[method.name]
            for uid, truth in zip(split.test_user_ids, split.test_truth):
                result.predictions.append(prediction.home_of(uid))
                result.truths.append(truth)
    return results


# ---------------------------------------------------------------------------
# Task 2: multiple location discovery
# ---------------------------------------------------------------------------


@dataclass
class MultiLocationResult:
    """Per-method DP/DR over the multi-location cohort."""

    method_name: str
    cohort: tuple[int, ...]
    rankings: list[list[int]]
    truths: list[list[int]]

    def dp(self, dataset: Dataset, k: int = 2, miles: float = DEFAULT_MILES) -> float:
        """DP@k: discovered precision at rank k."""
        return dp_at_k(dataset.gazetteer, self.rankings, self.truths, k, miles)

    def dr(self, dataset: Dataset, k: int = 2, miles: float = DEFAULT_MILES) -> float:
        """DR@k: discovered recall at rank k."""
        return dr_at_k(dataset.gazetteer, self.rankings, self.truths, k, miles)


def run_multi_location_discovery(
    dataset: Dataset,
    methods: Sequence[LocationMethod],
    max_cohort: int | None = None,
    seed: int = 0,
) -> dict[str, MultiLocationResult]:
    """Run the Sec. 5.2 protocol; returns {method name -> result}.

    The cohort's labels are hidden from every method, so rank-1 as well
    as deeper ranks measure genuine discovery.
    """
    if not dataset.has_ground_truth:
        raise ValueError("multi-location discovery needs generator ground truth")
    cohort = list(dataset.multi_location_user_ids())
    if not cohort:
        raise ValueError("dataset has no multi-location users")
    if max_cohort is not None and len(cohort) > max_cohort:
        rng = np.random.default_rng(seed)
        cohort = sorted(
            int(u) for u in rng.choice(cohort, size=max_cohort, replace=False)
        )
    train = dataset.with_labels_hidden(cohort)
    truths = [list(dataset.users[uid].true_locations) for uid in cohort]
    results: dict[str, MultiLocationResult] = {}
    for method in methods:
        prediction = method.predict(train)
        rankings = [list(prediction.ranked_locations[uid]) for uid in cohort]
        results[method.name] = MultiLocationResult(
            method_name=method.name,
            cohort=tuple(cohort),
            rankings=rankings,
            truths=truths,
        )
    return results


# ---------------------------------------------------------------------------
# Task 3: relationship explanation
# ---------------------------------------------------------------------------


@dataclass
class ExplanationTaskResult:
    """Per-method explanation assignments over the evaluable edges."""

    method_name: str
    edge_indices: tuple[int, ...]
    predicted: list[tuple[int, int]]
    truth: list[tuple[int, int]]

    def accuracy_at(self, dataset: Dataset, miles: float = DEFAULT_MILES) -> float:
        """Explanation accuracy at the mile threshold."""
        return explanation_accuracy(
            dataset.gazetteer, self.predicted, self.truth, miles
        )

    def accuracy_curve(
        self, dataset: Dataset, mile_grid: Iterable[float] = (25, 50, 75, 100)
    ) -> list[tuple[float, float]]:
        """(miles, accuracy) pairs over the grid."""
        return [
            (float(m), self.accuracy_at(dataset, m)) for m in mile_grid
        ]


def evaluable_edges(dataset: Dataset) -> list[int]:
    """Indices of following edges with ground-truth assignments.

    These are the location-based (non-noise) edges -- the analogue of
    the paper's 4,426 manually-labeled relationships (their labeling
    kept only edges whose assignments were clearly identifiable).
    """
    return [
        s
        for s, e in enumerate(dataset.following)
        if e.true_x is not None and e.true_y is not None
    ]


def run_explanation_task(
    dataset: Dataset,
    methods_with_assignments: Sequence[tuple[str, Sequence[tuple[int, int]]]],
) -> dict[str, ExplanationTaskResult]:
    """Evaluate per-edge assignments against generator ground truth.

    ``methods_with_assignments`` supplies, per method, assignments
    parallel to ``dataset.following`` (e.g. from
    ``MethodPrediction.edge_assignments`` or the home-location Base).
    """
    edges = evaluable_edges(dataset)
    if not edges:
        raise ValueError("dataset has no edges with ground-truth assignments")
    truth = [
        (dataset.following[s].true_x, dataset.following[s].true_y) for s in edges
    ]
    results: dict[str, ExplanationTaskResult] = {}
    for name, assignments in methods_with_assignments:
        if len(assignments) != dataset.n_following:
            raise ValueError(
                f"{name}: assignments must parallel dataset.following "
                f"({len(assignments)} != {dataset.n_following})"
            )
        predicted = [assignments[s] for s in edges]
        results[name] = ExplanationTaskResult(
            method_name=name,
            edge_indices=tuple(edges),
            predicted=predicted,
            truth=truth,
        )
    return results
