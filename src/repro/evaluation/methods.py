"""The method interface shared by MLP and the baselines.

Every method consumes a :class:`~repro.data.model.Dataset` (whose
*visible* labels define the training supervision) and returns a
:class:`MethodPrediction`: per user, a ranked list of location ids
(best first).  Task runners slice that ranking: rank 1 for home
prediction, top-K for multi-location discovery.

Methods that also explain following relationships (MLP, and the
home-location Base of Sec. 5.3) attach per-edge ``(x, y)`` assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.model import Dataset


@dataclass
class MethodPrediction:
    """Output of one method on one dataset."""

    method_name: str
    #: Per user id: candidate locations ranked best-first (never empty).
    ranked_locations: list[list[int]]
    #: Optional per-following-edge assignments (x, y); parallel to
    #: ``dataset.following`` when present.
    edge_assignments: list[tuple[int, int]] | None = None
    #: Optional extra payload for reporting (e.g. the MLPResult).
    detail: object = None

    def home_of(self, user_id: int) -> int:
        """The rank-1 prediction (home location)."""
        ranking = self.ranked_locations[user_id]
        if not ranking:
            raise ValueError(f"user {user_id} has an empty ranking")
        return ranking[0]

    def top_k_of(self, user_id: int, k: int) -> list[int]:
        """The top-``k`` predictions (multi-location profile)."""
        return self.ranked_locations[user_id][:k]


@runtime_checkable
class LocationMethod(Protocol):
    """Anything that can profile a dataset's users."""

    name: str

    def predict(self, dataset: Dataset) -> MethodPrediction:
        """Profile every user; return ranked locations per user."""
        ...


class MLPMethod:
    """Adapter: run :class:`MLPModel` under the method interface.

    ``name`` defaults to "MLP"; the MLP_U / MLP_C presets pass their
    own names so reports match the paper's method labels.
    """

    def __init__(self, params: MLPParams | None = None, name: str = "MLP"):
        self.params = params or MLPParams()
        self.name = name

    def predict(self, dataset: Dataset) -> MethodPrediction:
        """Fit the MLP on the dataset and adapt its result."""
        result = MLPModel(self.params).fit(dataset)
        ranked = [
            [loc for loc, _ in result.profiles[uid].entries]
            for uid in range(dataset.n_users)
        ]
        edge_assignments = (
            [(e.x, e.y) for e in result.explanations]
            if result.explanations
            else None
        )
        return MethodPrediction(
            method_name=self.name,
            ranked_locations=ranked,
            edge_assignments=edge_assignments,
            detail=result,
        )


def standard_methods(
    mlp_params: MLPParams | None = None,
) -> list[LocationMethod]:
    """The evaluation's five methods in the paper's order (Sec. 5).

    BaseU, BaseC, MLP_U, MLP_C, MLP -- all sharing the MLP scheduling
    parameters where applicable, so comparisons are apples-to-apples.
    """
    from repro.baselines.backstrom import BackstromBaseline
    from repro.baselines.cheng import ChengBaseline
    from repro.core.model import mlp_c_params, mlp_u_params

    base = mlp_params or MLPParams()
    return [
        BackstromBaseline(),
        ChengBaseline(),
        MLPMethod(mlp_u_params(base), name="MLP_U"),
        MLPMethod(mlp_c_params(base), name="MLP_C"),
        MLPMethod(base, name="MLP"),
    ]
