"""Cross-validation label splits (Sec. 5.1's five-fold protocol).

The paper's folds hide *labels*, not users: 80% of the labeled users
keep their registered locations as supervision, the remaining 20%
become the test users (their labels are hidden from every method and
their registered/true location is the ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.model import Dataset


@dataclass(frozen=True, slots=True)
class LabelSplit:
    """One fold: the dataset with test labels hidden, and who is tested."""

    fold: int
    train_dataset: Dataset
    test_user_ids: tuple[int, ...]
    #: Ground-truth home of each test user (their hidden label).
    test_truth: tuple[int, ...]


def k_fold_label_splits(
    dataset: Dataset, n_folds: int = 5, seed: int = 0
) -> list[LabelSplit]:
    """Partition labeled users into ``n_folds`` test folds.

    Every labeled user lands in exactly one test fold; within a fold,
    those users' labels are hidden from the training dataset.  Ground
    truth is the (hidden) registered location.
    """
    if n_folds < 2:
        raise ValueError("need at least two folds")
    labeled = np.array(dataset.labeled_user_ids, dtype=np.int64)
    if labeled.size < n_folds:
        raise ValueError(
            f"cannot build {n_folds} folds from {labeled.size} labeled users"
        )
    rng = np.random.default_rng(seed)
    permuted = rng.permutation(labeled)
    folds = np.array_split(permuted, n_folds)
    observed = dataset.observed_locations
    splits = []
    for fold_idx, test_ids in enumerate(folds):
        test_list = [int(u) for u in np.sort(test_ids)]
        splits.append(
            LabelSplit(
                fold=fold_idx,
                train_dataset=dataset.with_labels_hidden(test_list),
                test_user_ids=tuple(test_list),
                test_truth=tuple(observed[u] for u in test_list),
            )
        )
    return splits


def single_holdout_split(
    dataset: Dataset, test_fraction: float = 0.2, seed: int = 0
) -> LabelSplit:
    """One 80/20 split -- the cheap variant used by quick benchmarks."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    labeled = np.array(dataset.labeled_user_ids, dtype=np.int64)
    if labeled.size < 2:
        raise ValueError("need at least two labeled users")
    rng = np.random.default_rng(seed)
    permuted = rng.permutation(labeled)
    n_test = max(1, int(round(test_fraction * labeled.size)))
    test_ids = sorted(int(u) for u in permuted[:n_test])
    observed = dataset.observed_locations
    return LabelSplit(
        fold=0,
        train_dataset=dataset.with_labels_hidden(test_ids),
        test_user_ids=tuple(test_ids),
        test_truth=tuple(observed[u] for u in test_ids),
    )
