"""Evaluation harness: metrics, splits, method adapters, task runners.

Implements the paper's three tasks (Sec. 5):

1. **home location prediction** -- ACC@m and accumulative-accuracy-at-
   distance curves (Table 2, Fig. 4);
2. **multiple location discovery** -- distance-based precision/recall
   DP@K / DR@K over multi-location users (Table 3, Fig. 6-7);
3. **relationship explanation** -- per-edge assignment accuracy at
   distance thresholds (Fig. 8, Table 5).
"""

from repro.evaluation.metrics import (
    aad_curve,
    accuracy_at,
    dp_at_k,
    dr_at_k,
    explanation_accuracy,
)
from repro.evaluation.methods import (
    LocationMethod,
    MethodPrediction,
    MLPMethod,
)
from repro.evaluation.splits import k_fold_label_splits
from repro.evaluation.tasks import (
    ExplanationTaskResult,
    HomePredictionResult,
    MultiLocationResult,
    run_explanation_task,
    run_home_prediction,
    run_multi_location_discovery,
)

__all__ = [
    "ExplanationTaskResult",
    "HomePredictionResult",
    "LocationMethod",
    "MLPMethod",
    "MethodPrediction",
    "MultiLocationResult",
    "aad_curve",
    "accuracy_at",
    "dp_at_k",
    "dr_at_k",
    "explanation_accuracy",
    "k_fold_label_splits",
    "run_explanation_task",
    "run_home_prediction",
    "run_multi_location_discovery",
]
