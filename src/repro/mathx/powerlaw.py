"""The power-law family ``P(x) = beta * x**alpha`` and its fitting.

Sec. 4.1 of the paper models the probability of a following
relationship at distance ``d`` as ``beta * d**alpha`` and fits
``alpha = -0.55``, ``beta = 0.0045`` on Twitter by least squares in
log-log space ("power laws are straight lines when plotted in the
log-log scale").  The same fit is re-run inside the Gibbs-EM M-step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class PowerLaw:
    """``P(x) = beta * x**alpha`` with a minimum-distance clamp.

    ``min_x`` guards the ``x == 0`` singularity (two users in the same
    city): the paper buckets distances at 1-mile granularity, so
    probabilities below 1 mile are flat by construction.
    """

    alpha: float
    beta: float
    min_x: float = 1.0

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta!r}")
        if self.min_x <= 0:
            raise ValueError(f"min_x must be positive, got {self.min_x!r}")

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate ``beta * max(x, min_x)**alpha``."""
        clamped = np.maximum(np.asarray(x, dtype=np.float64), self.min_x)
        result = self.beta * clamped**self.alpha
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(result)
        return result

    def log_prob(self, x: float | np.ndarray) -> float | np.ndarray:
        """``log(beta) + alpha * log(max(x, min_x))`` without underflow."""
        clamped = np.maximum(np.asarray(x, dtype=np.float64), self.min_x)
        result = np.log(self.beta) + self.alpha * np.log(clamped)
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(result)
        return result

    def distance_kernel(self, x: float | np.ndarray) -> float | np.ndarray:
        """``max(x, min_x)**alpha`` -- the beta-free kernel of Eq. 7-8.

        Inside the Gibbs conditionals beta is a constant factor and is
        dropped; only the distance dependence matters.
        """
        clamped = np.maximum(np.asarray(x, dtype=np.float64), self.min_x)
        result = clamped**self.alpha
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(result)
        return result


#: The parameters the paper reports for Twitter (Sec. 4.1).
PAPER_TWITTER_POWERLAW = PowerLaw(alpha=-0.55, beta=0.0045)

#: The exponent Backstrom et al. observed on Facebook, for comparison.
FACEBOOK_ALPHA = -1.0


def fit_power_law(
    x: np.ndarray,
    p: np.ndarray,
    weights: np.ndarray | None = None,
    min_x: float = 1.0,
) -> PowerLaw:
    """Least-squares fit of ``p = beta * x**alpha`` in log-log space.

    Parameters
    ----------
    x:
        Sample points (distances); must be positive.
    p:
        Observed probabilities at ``x``; zero entries are dropped
        (they have no log image and correspond to empty buckets).
    weights:
        Optional per-point weights (e.g. bucket pair counts), applied
        to the squared residuals in log space.
    min_x:
        Clamp carried into the resulting :class:`PowerLaw`.
    """
    x = np.asarray(x, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    if x.shape != p.shape or x.ndim != 1:
        raise ValueError("x and p must be parallel 1-D arrays")
    mask = (x > 0) & (p > 0)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != x.shape:
            raise ValueError("weights must parallel x")
        mask &= weights > 0
    if int(mask.sum()) < 2:
        raise ValueError(
            "need at least two strictly positive (x, p) points to fit"
        )
    lx = np.log(x[mask])
    lp = np.log(p[mask])
    w = weights[mask] if weights is not None else np.ones_like(lx)
    # Weighted least squares for lp = log(beta) + alpha * lx.
    wsum = w.sum()
    mean_x = (w * lx).sum() / wsum
    mean_p = (w * lp).sum() / wsum
    var_x = (w * (lx - mean_x) ** 2).sum()
    if var_x <= 0:
        raise ValueError("x values are degenerate (single distinct point)")
    cov = (w * (lx - mean_x) * (lp - mean_p)).sum()
    alpha = cov / var_x
    log_beta = mean_p - alpha * mean_x
    return PowerLaw(alpha=float(alpha), beta=float(np.exp(log_beta)), min_x=min_x)


def r_squared_loglog(law: PowerLaw, x: np.ndarray, p: np.ndarray) -> float:
    """Coefficient of determination of a fit, in log-log space.

    Used by tests and the Fig. 3(a) experiment to assert that the
    empirical following curve really is power-law shaped.
    """
    x = np.asarray(x, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    mask = (x > 0) & (p > 0)
    lp = np.log(p[mask])
    pred = law.log_prob(x[mask])
    ss_res = float(((lp - pred) ** 2).sum())
    ss_tot = float(((lp - lp.mean()) ** 2).sum())
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot
