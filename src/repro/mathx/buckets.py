"""Distance bucketing: the Fig. 3(a) measurement pipeline.

The paper computes the empirical following probability at distance d by
bucketing all labeled-user pairs into 1-mile intervals and taking, per
bucket, (number of pairs with a following relationship) / (total number
of pairs).  This module implements that pipeline over arbitrary pair
samples; the power-law fit then runs on the resulting curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class DistanceBuckets:
    """Per-bucket pair counts and edge counts over distance intervals.

    ``edges[i]`` pairs with ``totals[i]`` pairs fell into the bucket
    whose representative distance is ``centers[i]``.  Buckets with no
    pairs are omitted, so arrays are parallel and dense.
    """

    centers: np.ndarray
    totals: np.ndarray
    edges: np.ndarray
    bucket_miles: float

    @property
    def probabilities(self) -> np.ndarray:
        """Empirical edge probability per bucket."""
        return self.edges / self.totals

    def nonzero(self) -> "DistanceBuckets":
        """Restrict to buckets with at least one edge (log-fittable)."""
        mask = self.edges > 0
        return DistanceBuckets(
            centers=self.centers[mask],
            totals=self.totals[mask],
            edges=self.edges[mask],
            bucket_miles=self.bucket_miles,
        )

    def __len__(self) -> int:
        return len(self.centers)


def bucket_following_pairs(
    distances: np.ndarray,
    has_edge: np.ndarray,
    bucket_miles: float = 1.0,
    max_miles: float | None = None,
) -> DistanceBuckets:
    """Bucket (distance, has_edge) pair observations into intervals.

    Parameters
    ----------
    distances:
        Pair distances in miles.
    has_edge:
        Parallel boolean/0-1 array: does the pair have a following
        relationship?
    bucket_miles:
        Interval width; the paper uses 1 mile.
    max_miles:
        Pairs beyond this distance are dropped (``None`` keeps all).

    The representative distance of bucket ``k`` (covering
    ``[k*w, (k+1)*w)``) is its midpoint, except the first bucket which
    uses ``max(w/2, w)`` -- for 1-mile buckets that is 1 mile, matching
    the paper's clamp of zero-distance pairs.
    """
    distances = np.asarray(distances, dtype=np.float64)
    has_edge = np.asarray(has_edge).astype(bool)
    if distances.shape != has_edge.shape or distances.ndim != 1:
        raise ValueError("distances and has_edge must be parallel 1-D arrays")
    if bucket_miles <= 0:
        raise ValueError("bucket_miles must be positive")
    if max_miles is not None:
        keep = distances <= max_miles
        distances = distances[keep]
        has_edge = has_edge[keep]
    if distances.size == 0:
        return DistanceBuckets(
            centers=np.empty(0),
            totals=np.empty(0),
            edges=np.empty(0),
            bucket_miles=bucket_miles,
        )
    idx = np.floor(distances / bucket_miles).astype(np.int64)
    uniq, inverse = np.unique(idx, return_inverse=True)
    totals = np.bincount(inverse).astype(np.float64)
    edges = np.bincount(inverse, weights=has_edge.astype(np.float64))
    centers = (uniq + 0.5) * bucket_miles
    # Clamp the zero bucket's representative up to bucket width so the
    # log-log fit never sees sub-clamp distances.
    centers = np.maximum(centers, bucket_miles)
    return DistanceBuckets(
        centers=centers,
        totals=totals,
        edges=edges,
        bucket_miles=bucket_miles,
    )


def log_spaced_bucket_following_pairs(
    distances: np.ndarray,
    has_edge: np.ndarray,
    n_buckets: int = 40,
    min_miles: float = 1.0,
    max_miles: float = 3000.0,
) -> DistanceBuckets:
    """Like :func:`bucket_following_pairs` but with log-spaced buckets.

    At the synthetic-data scale, uniform 1-mile buckets beyond a few
    hundred miles are nearly empty; log-spaced buckets give every decade
    of distance similar statistical weight, which stabilizes the
    Gibbs-EM refit of (alpha, beta).
    """
    distances = np.asarray(distances, dtype=np.float64)
    has_edge = np.asarray(has_edge).astype(bool)
    if distances.shape != has_edge.shape or distances.ndim != 1:
        raise ValueError("distances and has_edge must be parallel 1-D arrays")
    if n_buckets < 2:
        raise ValueError("need at least two buckets")
    clamped = np.clip(distances, min_miles, max_miles)
    bounds = np.logspace(
        np.log10(min_miles), np.log10(max_miles), n_buckets + 1
    )
    idx = np.clip(np.searchsorted(bounds, clamped, side="right") - 1, 0, n_buckets - 1)
    totals = np.bincount(idx, minlength=n_buckets).astype(np.float64)
    edges = np.bincount(
        idx, weights=has_edge.astype(np.float64), minlength=n_buckets
    )
    centers = np.sqrt(bounds[:-1] * bounds[1:])  # geometric midpoints
    mask = totals > 0
    return DistanceBuckets(
        centers=centers[mask],
        totals=totals[mask],
        edges=edges[mask],
        bucket_miles=float("nan"),
    )
