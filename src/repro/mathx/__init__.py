"""Math substrate: power laws, histogram buckets, sampling helpers.

- :mod:`repro.mathx.powerlaw` -- the ``P(x) = beta * x**alpha`` family at
  the heart of the location-based following model (Eq. 1), with log-log
  least-squares fitting as used for Fig. 3(a) and the Gibbs-EM M-step.
- :mod:`repro.mathx.buckets` -- the 1-mile distance bucketing pipeline
  that converts labeled-user pairs into the empirical following-vs-
  distance curve.
- :mod:`repro.mathx.distributions` -- categorical/Dirichlet/Bernoulli
  helpers shared by the sampler and the synthetic generator.
"""

from repro.mathx.buckets import DistanceBuckets, bucket_following_pairs
from repro.mathx.distributions import (
    log_normalize,
    sample_categorical,
    sample_dirichlet,
)
from repro.mathx.powerlaw import PowerLaw, fit_power_law

__all__ = [
    "DistanceBuckets",
    "PowerLaw",
    "bucket_following_pairs",
    "fit_power_law",
    "log_normalize",
    "sample_categorical",
    "sample_dirichlet",
]
