"""Distribution helpers shared by the sampler and the generator.

Kept deliberately small: seeded ``numpy.random.Generator`` everywhere,
categorical sampling from unnormalized weights (the inner loop of the
Gibbs sampler), Dirichlet draws for synthetic profiles, and log-space
normalization utilities.
"""

from __future__ import annotations

import numpy as np


def sample_categorical(
    rng: np.random.Generator, weights: np.ndarray
) -> int:
    """Draw an index proportional to ``weights`` (unnormalized, >= 0).

    Raises ``ValueError`` when the weights are all zero, negative, or
    non-finite -- silent renormalization of garbage has caused enough
    sampler bugs to be worth the check.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if not np.all(np.isfinite(w)) or np.any(w < 0):
        raise ValueError("weights must be finite and non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights sum to zero; nothing to sample")
    # Inverse-CDF sampling; cumsum is the fastest route at this size.
    u = rng.random() * total
    return int(np.searchsorted(np.cumsum(w), u, side="right").clip(0, w.size - 1))


def sample_categorical_logits(
    rng: np.random.Generator, logits: np.ndarray
) -> int:
    """Draw an index proportional to ``exp(logits)``, stably."""
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 1 or logits.size == 0:
        raise ValueError("logits must be a non-empty 1-D array")
    shifted = logits - logits.max()
    return sample_categorical(rng, np.exp(shifted))


def sample_dirichlet(
    rng: np.random.Generator, alpha: np.ndarray
) -> np.ndarray:
    """Dirichlet draw that tolerates very small concentration values.

    numpy's gamma-based Dirichlet can return exact zeros (and then
    0/0 -> nan) for alpha << 1; we floor the result at a tiny epsilon
    and renormalize, which is the standard fix.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    if np.any(alpha <= 0):
        raise ValueError("Dirichlet parameters must be positive")
    draw = rng.dirichlet(alpha)
    draw = np.maximum(draw, 1e-300)
    return draw / draw.sum()


def log_normalize(log_weights: np.ndarray) -> np.ndarray:
    """Normalize log-space weights into a probability vector."""
    log_weights = np.asarray(log_weights, dtype=np.float64)
    shifted = log_weights - log_weights.max()
    w = np.exp(shifted)
    return w / w.sum()


def entropy(p: np.ndarray) -> float:
    """Shannon entropy (nats) of a probability vector, 0log0 = 0."""
    p = np.asarray(p, dtype=np.float64)
    nz = p[p > 0]
    return float(-(nz * np.log(nz)).sum())


def top_k_indices(p: np.ndarray, k: int) -> list[int]:
    """Indices of the ``k`` largest entries, ties broken by low index."""
    p = np.asarray(p, dtype=np.float64)
    if k <= 0:
        return []
    k = min(k, p.size)
    # argsort of (-p, index) gives deterministic tie-breaking.
    order = np.lexsort((np.arange(p.size), -p))
    return [int(i) for i in order[:k]]
