"""Serving wrapper over the prediction index: routes, payloads, refresh.

One :class:`QueryService` per served predictor owns the
:class:`~repro.query.index.PredictionIndex` lifecycle (lazy first
build, generation-checked incremental refresh, the **loud** full-rebuild
fallback when the incremental window is gone) and renders the four
``GET /query/*`` responses.  Both serving topologies -- the threaded
:mod:`repro.serving.server` and the multi-process
:mod:`repro.serving.frontend` -- dispatch into the same
:meth:`QueryService.answer`, which is what makes "byte-identical across
topologies" a structural property here, exactly like the shared POST
payload builders in :mod:`repro.serving.server`.

Every response carries ``generation`` (the world generation the index
reflects; transports mirror it into the ``X-World-Generation`` header)
so clients can detect a stale read against a known ingest position.

Query-string parsing is strict: unknown or repeated parameters are a
400, not silently ignored -- a typo'd ``min_confidnce=`` must not
quietly widen a confidence-filtered answer.
"""

from __future__ import annotations

import threading
import time
import warnings

import numpy as np

from typing import TYPE_CHECKING

from repro.data.delta import StaleWindowError
from repro.geo.index import SpatialGridIndex
from repro.obs import metrics as obs_metrics
from repro.query.index import DEFAULT_TOP_K, PredictionIndex

if TYPE_CHECKING:  # hint only: repro.serving imports this package
    from repro.serving.foldin import FoldInPredictor

#: The four query routes; the serving route tables extend themselves
#: from this tuple so the transports and the docs test share one source.
QUERY_ROUTES = (
    "/query/radius",
    "/query/top-cities",
    "/query/venue-residents",
    "/query/aggregate",
)

#: Metric label per route (bounded cardinality, like HTTP route labels).
_ROUTE_KINDS = {
    "/query/radius": "radius",
    "/query/top-cities": "top_cities",
    "/query/venue-residents": "venue_residents",
    "/query/aggregate": "aggregate",
}

#: Hard cap on ``limit=``: the per-user rows are a preview, not a bulk
#: export (use ``repro ingest --score-output`` for dumps).
MAX_LIMIT = 1000

#: Default number of per-user rows in radius/venue responses.
DEFAULT_LIMIT = 50

_REG = obs_metrics.get_registry()
QUERY_REQUESTS = _REG.counter(
    "repro_query_requests_total",
    "Query-layer requests answered, by query kind",
    labelnames=("kind",),
)
QUERY_SECONDS = _REG.histogram(
    "repro_query_seconds",
    "Wall time to answer one query (index refresh excluded)",
    labelnames=("kind",),
)
QUERY_REFRESHES = _REG.counter(
    "repro_query_index_refreshes_total",
    "Prediction-index (re)builds, by kind: initial, incremental, or "
    "full_fallback (incremental window lost -- see docs/API.md)",
    labelnames=("kind",),
)
QUERY_REFRESH_SECONDS = _REG.histogram(
    "repro_query_index_refresh_seconds",
    "Wall time of prediction-index builds and refreshes",
    labelnames=("kind",),
)
QUERY_INDEXED_USERS = _REG.gauge(
    "repro_query_indexed_users",
    "Users currently projected in the prediction index",
)
QUERY_INDEX_GENERATION = _REG.gauge(
    "repro_query_index_generation",
    "World generation the prediction index currently reflects",
)


def split_query_path(path: str) -> tuple[str, str]:
    """Split a request path into ``(route, query_string)``."""
    route, _, query = path.partition("?")
    return route, query


def parse_params(query: str, allowed: tuple[str, ...]) -> dict[str, str]:
    """Decode a query string into a dict, strictly.

    Unknown keys and repeated keys raise ``ValueError`` (the transports
    map it to a 400) so filters cannot be silently dropped.
    """
    from urllib.parse import parse_qsl

    params: dict[str, str] = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        if key not in allowed:
            raise ValueError(
                f"unknown query parameter {key!r}; "
                f"expected one of {', '.join(sorted(allowed))}"
            )
        if key in params:
            raise ValueError(f"duplicate query parameter {key!r}")
        params[key] = value
    return params


def _float_param(
    params: dict[str, str],
    name: str,
    default: float,
    lo: float,
    hi: float,
) -> float:
    """One bounds-checked float parameter."""
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value


def _int_param(
    params: dict[str, str], name: str, default: int, lo: int, hi: int
) -> int:
    """One bounds-checked integer parameter."""
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value


def _resolve_center(params: dict[str, str], gazetteer):
    """``(lat, lon, Location | None)`` of a radius query's center.

    Accepts explicit coordinates (``lat=&lon=``) or a city -- either
    ``city=Austin&state=TX``, the combined ``city=Austin,%20TX``, or a
    bare unambiguous name.  Ambiguous bare names are a 400 listing the
    candidate states rather than a silent most-populous guess.
    """
    if "city" in params:
        if "lat" in params or "lon" in params:
            raise ValueError("pass either lat=/lon= or city=, not both")
        city = params["city"]
        state = params.get("state")
        if state is None and "," in city:
            city, state = (part.strip() for part in city.split(",", 1))
        if state is not None:
            location = gazetteer.lookup_city_state(city, state)
            if location is None:
                raise ValueError(f"unknown city {city!r}, {state!r}")
            return location.lat, location.lon, location
        matches = gazetteer.lookup_name(city)
        if not matches:
            raise ValueError(f"unknown city {city!r}")
        if len(matches) > 1:
            states = ", ".join(loc.state for loc in matches)
            raise ValueError(
                f"city {city!r} is ambiguous ({states}); "
                "add state= to disambiguate"
            )
        location = matches[0]
        return location.lat, location.lon, location
    if "lat" not in params or "lon" not in params:
        raise ValueError("radius query needs lat= and lon= (or city=)")
    lat = _float_param(params, "lat", 0.0, -90.0, 90.0)
    lon = _float_param(params, "lon", 0.0, -180.0, 180.0)
    return lat, lon, None


def _user_rows(index: PredictionIndex, positions: np.ndarray, gazetteer):
    """Per-user JSON rows for a sorted slice of index positions."""
    rows = []
    for pos in positions:
        home = int(index.homes[pos])
        rows.append(
            {
                "user_id": int(index.user_ids[pos]),
                "home": home if home >= 0 else None,
                "home_name": (
                    gazetteer.by_id(home).name if home >= 0 else None
                ),
                "confidence": float(index.confidences[pos]),
            }
        )
    return rows


def _location_rows(index, location_ids, counts, gazetteer):
    """Per-location JSON rows (only locations with residents)."""
    return [
        {
            "location": int(loc),
            "name": gazetteer.by_id(int(loc)).name,
            "predicted_residents": int(count),
        }
        for loc, count in zip(location_ids, counts)
        if count > 0
    ]


class QueryService:
    """Owns one prediction index and answers the ``/query/*`` routes.

    Thread-safe: a single lock serializes index builds/refreshes and
    queries (queries are array scans -- microseconds next to the
    fold-in scoring a refresh may trigger).  The index is built lazily
    on the first query, so serving startup stays fast and processes
    that never query never score the population.
    """

    def __init__(
        self,
        predictor: FoldInPredictor,
        journal=None,
        k: int = DEFAULT_TOP_K,
        cell_miles: float = 50.0,
    ):
        self.predictor = predictor
        self.journal = journal
        self.k = k
        self._cell_miles = cell_miles
        self._lock = threading.Lock()
        self._index: PredictionIndex | None = None
        self._spatial: SpatialGridIndex | None = None
        #: Loud-fallback count: full rebuilds forced by a lost
        #: incremental window (also a metric; kept here so tests and
        #: ``stats()`` need no registry scrape).
        self.stale_window_fallbacks = 0

    # -- index lifecycle ---------------------------------------------------

    def _spatial_index(self) -> SpatialGridIndex:
        if self._spatial is None:
            self._spatial = SpatialGridIndex.from_gazetteer(
                self.predictor.dataset.gazetteer, cell_miles=self._cell_miles
            )
        return self._spatial

    def _rebuild(self, kind: str) -> PredictionIndex:
        t0 = time.perf_counter()
        index = PredictionIndex.build(self.predictor, k=self.k)
        QUERY_REFRESH_SECONDS.labels(kind=kind).observe(
            time.perf_counter() - t0
        )
        QUERY_REFRESHES.labels(kind=kind).inc()
        return index

    def current_index(self) -> PredictionIndex:
        """The index at the predictor's current generation.

        Builds on first use, refreshes incrementally when ingest moved
        the world forward, and falls back to a full rebuild -- loudly:
        a ``RuntimeWarning``, the ``full_fallback`` refresh metric, and
        :attr:`stale_window_fallbacks` -- when the incremental window
        is no longer retained (docs/API.md, "Incremental re-scoring
        window").
        """
        with self._lock:
            if self._index is None:
                self._index = self._rebuild("initial")
            elif self._index.generation != self.predictor.world.generation:
                try:
                    t0 = time.perf_counter()
                    self._index = self._index.refreshed(
                        self.predictor, journal=self.journal
                    )
                    QUERY_REFRESH_SECONDS.labels(kind="incremental").observe(
                        time.perf_counter() - t0
                    )
                    QUERY_REFRESHES.labels(kind="incremental").inc()
                except StaleWindowError as exc:
                    self.stale_window_fallbacks += 1
                    warnings.warn(
                        "query index refresh window lost "
                        f"({exc}); rebuilding the full prediction index",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    self._index = self._rebuild("full_fallback")
            QUERY_INDEXED_USERS.set(float(len(self._index)))
            QUERY_INDEX_GENERATION.set(float(self._index.generation))
            return self._index

    # -- dispatch ----------------------------------------------------------

    def answer(self, route: str, query: str) -> dict:
        """Answer one ``/query/*`` route; ``ValueError`` means a 400.

        The single entry point both transports call with the split
        request path -- identical inputs produce identical payloads, so
        the serialized bodies match byte for byte across topologies.
        """
        kind = _ROUTE_KINDS.get(route)
        if kind is None:
            raise ValueError(f"unknown query route {route!r}")
        builder = getattr(self, "_" + kind)
        index = self.current_index()
        t0 = time.perf_counter()
        try:
            payload = builder(index, query)
        finally:
            QUERY_SECONDS.labels(kind=kind).observe(time.perf_counter() - t0)
        QUERY_REQUESTS.labels(kind=kind).inc()
        return payload

    def _base(self, index: PredictionIndex) -> dict:
        return {
            "artifact_id": index.artifact_id,
            "generation": index.generation,
        }

    # -- the four routes ---------------------------------------------------

    def _radius(self, index: PredictionIndex, query: str) -> dict:
        """``GET /query/radius``: predicted residents near a point/city."""
        gazetteer = self.predictor.dataset.gazetteer
        params = parse_params(
            query,
            ("lat", "lon", "city", "state", "radius", "min_confidence",
             "limit"),
        )
        if "radius" not in params:
            raise ValueError("radius (miles) is required")
        radius = _float_param(params, "radius", 0.0, 0.0, 25000.0)
        min_confidence = _float_param(params, "min_confidence", 0.0, 0.0, 1.0)
        limit = _int_param(params, "limit", DEFAULT_LIMIT, 0, MAX_LIMIT)
        lat, lon, center = _resolve_center(params, gazetteer)
        locations = self._spatial_index().query_radius(lat, lon, radius)
        counts = index.city_counts(min_confidence)
        positions = np.sort(index.residents_of(locations, min_confidence))
        total = int(positions.size)
        return {
            **self._base(index),
            "center": {
                "lat": lat,
                "lon": lon,
                "location": (
                    center.location_id if center is not None else None
                ),
                "name": center.name if center is not None else None,
            },
            "radius_miles": radius,
            "min_confidence": min_confidence,
            "locations": _location_rows(
                index, locations, counts[locations], gazetteer
            ),
            "total": total,
            "users": _user_rows(index, positions[:limit], gazetteer),
            "truncated": total > limit,
        }

    def _top_cities(self, index: PredictionIndex, query: str) -> dict:
        """``GET /query/top-cities``: cities by predicted population."""
        gazetteer = self.predictor.dataset.gazetteer
        params = parse_params(query, ("k", "min_confidence"))
        k = _int_param(params, "k", 10, 1, int(index.home_indptr.size - 1))
        min_confidence = _float_param(params, "min_confidence", 0.0, 0.0, 1.0)
        chosen, counts = index.top_cities(k, min_confidence)
        return {
            **self._base(index),
            "k": k,
            "min_confidence": min_confidence,
            "matching_users": int(
                index.city_counts(min_confidence).sum()
            ),
            "cities": [
                {
                    "location": int(loc),
                    "name": gazetteer.by_id(int(loc)).name,
                    "predicted_residents": int(count),
                }
                for loc, count in zip(chosen, counts)
            ],
        }

    def _venue_residents(self, index: PredictionIndex, query: str) -> dict:
        """``GET /query/venue-residents``: the venue's predicted locals.

        A venue *name* is ambiguous by design (the paper's premise), so
        the answer spans every location sharing the name, each reported
        separately.
        """
        gazetteer = self.predictor.dataset.gazetteer
        params = parse_params(
            query, ("venue", "venue_id", "min_confidence", "limit")
        )
        if ("venue" in params) == ("venue_id" in params):
            raise ValueError("pass exactly one of venue= or venue_id=")
        if "venue_id" in params:
            venue_id = _int_param(
                params, "venue_id", 0, 0,
                len(gazetteer.venue_vocabulary) - 1,
            )
            venue = gazetteer.venue_vocabulary[venue_id]
        else:
            from repro.geo.gazetteer import normalize_place_name

            venue = normalize_place_name(params["venue"])
            if venue not in gazetteer.venue_index:
                raise ValueError(f"unknown venue {params['venue']!r}")
            venue_id = gazetteer.venue_index[venue]
        min_confidence = _float_param(params, "min_confidence", 0.0, 0.0, 1.0)
        limit = _int_param(params, "limit", DEFAULT_LIMIT, 0, MAX_LIMIT)
        locations = sorted(
            loc.location_id for loc in gazetteer.lookup_name(venue)
        )
        counts = index.city_counts(min_confidence)
        positions = np.sort(index.residents_of(locations, min_confidence))
        total = int(positions.size)
        return {
            **self._base(index),
            "venue": venue,
            "venue_id": venue_id,
            "min_confidence": min_confidence,
            "locations": _location_rows(
                index, locations, counts[locations], gazetteer
            ),
            "total": total,
            "users": _user_rows(index, positions[:limit], gazetteer),
            "truncated": total > limit,
        }

    def _aggregate(self, index: PredictionIndex, query: str) -> dict:
        """``GET /query/aggregate``: group-level population aggregates."""
        gazetteer = self.predictor.dataset.gazetteer
        params = parse_params(query, ("by", "min_confidence"))
        by = params.get("by", "state")
        if by not in ("state", "city"):
            raise ValueError(f"by must be 'state' or 'city', got {by!r}")
        min_confidence = _float_param(params, "min_confidence", 0.0, 0.0, 1.0)
        mask = index.homes >= 0
        if min_confidence > 0.0:
            mask = mask & (index.confidences >= min_confidence)
        homes = index.homes[mask]
        conf = index.confidences[mask]
        if by == "city":
            labels = [loc.name for loc in gazetteer]
            group_of_location = np.arange(len(gazetteer), dtype=np.int64)
        else:
            states = sorted({loc.state for loc in gazetteer})
            state_code = {state: i for i, state in enumerate(states)}
            labels = states
            group_of_location = np.fromiter(
                (state_code[loc.state] for loc in gazetteer),
                dtype=np.int64,
                count=len(gazetteer),
            )
        groups = group_of_location[homes]
        counts = np.bincount(groups, minlength=len(labels))
        conf_sums = np.bincount(
            groups, weights=conf, minlength=len(labels)
        )
        nonzero = np.flatnonzero(counts)
        order = np.lexsort((nonzero, -counts[nonzero]))
        return {
            **self._base(index),
            "by": by,
            "min_confidence": min_confidence,
            "groups": [
                {
                    "group": labels[int(g)],
                    "predicted_residents": int(counts[g]),
                    "mean_confidence": round(
                        float(conf_sums[g] / counts[g]), 6
                    ),
                }
                for g in nonzero[order]
            ],
            "summary": index.stats(min_confidence),
        }
