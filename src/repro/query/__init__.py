"""Geo-analytics queries over population scores (the prediction index).

The inverse of per-user serving: instead of "where does user *u*
live?", this package answers "who do we predict lives *there*?".

- :mod:`repro.query.index` -- :class:`~repro.query.index
  .PredictionIndex`, the generation-stamped columnar projection of
  ``score_population`` output with an inverted home -> users CSR,
  incrementally maintained from ``since_generation=`` re-scores;
- :mod:`repro.query.service` -- :class:`~repro.query.service
  .QueryService`, the serving wrapper both HTTP topologies dispatch
  ``GET /query/*`` into, plus the strict query-string parsing and the
  loud stale-window fallback;
- :mod:`repro.query.cli` -- the ``repro query <subcommand>`` command
  (offline against an artifact, or ``--url`` against a live server).

docs/API.md documents the four routes; docs/ARCHITECTURE.md the index
design and the refresh == rebuild bit-identity contract.
"""

from repro.query.index import PredictionIndex
from repro.query.service import QUERY_ROUTES, QueryService

__all__ = ["PredictionIndex", "QueryService", "QUERY_ROUTES"]
