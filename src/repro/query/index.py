"""The prediction index: a columnar projection of ``score_population``.

``score_population`` answers "where does user *u* probably live?" for
every unlabeled user at once; this module answers the *inverse*
questions -- "who do we predict lives near Austin?", "which cities
gained predicted residents?", "who are the predicted residents behind
venue 'princeton'?" -- without re-running a single fold-in solve.

:class:`PredictionIndex` projects the ``{user_id: FoldInPrediction}``
map into five parallel columnar arrays (user ids sorted ascending,
predicted home, confidence = posterior mass on that home, and a CSR of
top-k alternate ``(location, probability)`` pairs) plus one **inverted
CSR** mapping location id -> positions of the users predicted to live
there.  Radius queries then compose with the uniform spatial grid
(:class:`repro.geo.index.SpatialGridIndex`): grid -> location ids ->
inverted CSR -> users, no per-user distance math.

The index is **generation-stamped** and incrementally maintained:
:meth:`PredictionIndex.refreshed` re-scores only the users touched by
ingest generations after the stamp (``score_population(
since_generation=...)``), drops touched users that became labeled, and
merges the fresh rows over the retained ones.  Because the batch
fold-in engine is bit-identical regardless of batch composition and
untouched users' evidence is unchanged by construction of the touched
set, a refreshed index equals a from-scratch rebuild at the same
generation **bit for bit** (asserted by ``tests/test_query_index.py``
and ``benchmarks/bench_query.py``).

A refresh window that reaches past the retained delta log raises
:class:`repro.data.delta.StaleWindowError`; the serving wrapper
(:mod:`repro.query.service`) is the layer that decides to fall back to
a full rebuild, loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.data.columnar import build_csr

if TYPE_CHECKING:  # import at call time: serving imports this package
    from repro.serving.foldin import FoldInPredictor, FoldInPrediction

#: Default number of alternate locations projected per user; matches
#: the serving payloads' ``top_k`` default.
DEFAULT_TOP_K = 3


def _ragged_gather(
    starts: np.ndarray, counts: np.ndarray, order: np.ndarray
) -> np.ndarray:
    """Flat element indices of rows ``order`` in a ragged array.

    ``starts``/``counts`` describe rows of a flat buffer; the result
    indexes that buffer so row ``order[0]``'s elements come first, then
    ``order[1]``'s, and so on -- the vectorized permutation step of the
    refresh merge.
    """
    c = counts[order]
    offsets = np.zeros(c.size + 1, dtype=np.int64)
    np.cumsum(c, out=offsets[1:])
    total = int(offsets[-1])
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets[:-1], c)
        + np.repeat(starts[order], c)
    )


@dataclass(frozen=True, slots=True)
class PredictionIndex:
    """Columnar projection of population scores, inverted by home.

    All arrays are parallel over the indexed users (sorted ascending by
    user id).  ``homes`` uses ``-1`` for a user whose profile is empty
    (no predicted home); such users never appear in the inverted CSR.
    """

    #: Sorted unique ids of every indexed (unlabeled, scored) user.
    user_ids: np.ndarray
    #: Predicted home location id per user, ``-1`` for none.
    homes: np.ndarray
    #: Posterior mass on the predicted home, ``0.0`` for none.
    confidences: np.ndarray
    #: CSR over users of the top-k ``(location, probability)`` pairs,
    #: descending probability (the profile order).
    topk_indptr: np.ndarray
    topk_locs: np.ndarray
    topk_probs: np.ndarray
    #: Inverted CSR: location id -> *positions* (row numbers into the
    #: parallel arrays above) of users predicted to live there,
    #: ascending user id within each location.
    home_indptr: np.ndarray
    home_pos: np.ndarray
    #: World generation the projection reflects.
    generation: int
    #: Identity of the artifact whose posterior produced the scores.
    artifact_id: str
    #: Alternates projected per user.
    k: int

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        predictor: FoldInPredictor,
        k: int = DEFAULT_TOP_K,
    ) -> "PredictionIndex":
        """Score the full unlabeled population and project it.

        The expensive path (one ``score_population`` sweep); steady
        state should go through :meth:`refreshed` instead.
        """
        from repro.serving.batch import score_population

        world = predictor.world
        scores = score_population(
            world, predictor.result, predictor=predictor
        )
        return cls.from_scores(
            scores,
            k=k,
            n_locations=world.n_locations,
            generation=world.generation,
            artifact_id=predictor.artifact_id,
        )

    @classmethod
    def from_scores(
        cls,
        scores: dict[int, FoldInPrediction],
        k: int,
        n_locations: int,
        generation: int,
        artifact_id: str,
    ) -> "PredictionIndex":
        """Project a ``{user_id: prediction}`` map into columnar form."""
        n = len(scores)
        uids = np.fromiter(scores.keys(), dtype=np.int64, count=n)
        order = np.argsort(uids, kind="stable")
        uids = uids[order]
        homes = np.full(n, -1, dtype=np.int64)
        confidences = np.zeros(n, dtype=np.float64)
        counts = np.zeros(n, dtype=np.int64)
        flat_locs: list[int] = []
        flat_probs: list[float] = []
        predictions = list(scores.values())
        for row, src in enumerate(order):
            prediction = predictions[src]
            entries = prediction.top_entries(k)
            if entries:
                homes[row] = entries[0][0]
                confidences[row] = entries[0][1]
            counts[row] = len(entries)
            for loc, prob in entries:
                flat_locs.append(loc)
                flat_probs.append(prob)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls._assemble(
            uids,
            homes,
            confidences,
            indptr,
            np.asarray(flat_locs, dtype=np.int64),
            np.asarray(flat_probs, dtype=np.float64),
            n_locations=n_locations,
            generation=generation,
            artifact_id=artifact_id,
            k=k,
        )

    @classmethod
    def _assemble(
        cls,
        user_ids: np.ndarray,
        homes: np.ndarray,
        confidences: np.ndarray,
        topk_indptr: np.ndarray,
        topk_locs: np.ndarray,
        topk_probs: np.ndarray,
        n_locations: int,
        generation: int,
        artifact_id: str,
        k: int,
    ) -> "PredictionIndex":
        """Derive the inverted home CSR and freeze the index."""
        with_home = np.flatnonzero(homes >= 0)
        home_indptr, home_pos = build_csr(
            homes[with_home], with_home, n_locations
        )
        return cls(
            user_ids=user_ids,
            homes=homes,
            confidences=confidences,
            topk_indptr=topk_indptr,
            topk_locs=topk_locs,
            topk_probs=topk_probs,
            home_indptr=home_indptr,
            home_pos=home_pos,
            generation=int(generation),
            artifact_id=artifact_id,
            k=int(k),
        )

    # -- incremental maintenance -------------------------------------------

    def refreshed(
        self, predictor: FoldInPredictor, journal=None
    ) -> "PredictionIndex":
        """A new index advanced to the predictor's current generation.

        Re-scores only the delta-affected slice
        (``score_population(since_generation=self.generation)``), drops
        affected users that are no longer unlabeled, and keeps every
        untouched row verbatim -- bit-identical to a from-scratch
        :meth:`build` at the same generation.

        Raises :class:`repro.data.delta.StaleWindowError` when the
        window since ``self.generation`` is no longer retained (in
        memory past ``DELTA_LOG_LIMIT``, or behind the journal's last
        compaction); the caller owns the loud full-rebuild fallback.
        Raises ``ValueError`` when the predictor's world is *behind*
        the index (a stale predictor cannot refresh a newer index).
        """
        world = predictor.world
        generation = world.generation
        if generation == self.generation:
            return self
        if generation < self.generation:
            raise ValueError(
                f"world generation {generation} is behind the index "
                f"({self.generation}); refresh needs the newer world"
            )
        from repro.serving.batch import score_population

        if journal is not None:
            affected = journal.touched_since(self.generation)
        else:
            from repro.data.delta import touched_since

            affected = touched_since(world, self.generation)
        scores = score_population(
            world,
            predictor.result,
            predictor=predictor,
            since_generation=self.generation,
            journal=journal,
        )
        fresh = self.from_scores(
            scores,
            k=self.k,
            n_locations=int(self.home_indptr.size - 1),
            generation=generation,
            artifact_id=self.artifact_id,
        )
        # Affected users are replaced wholesale: a fresh row when they
        # are still unlabeled, removal when a label update retired them
        # from the scored population.
        keep = ~np.isin(self.user_ids, affected, assume_unique=True)
        old_counts = np.diff(self.topk_indptr)
        merged_uids = np.concatenate([self.user_ids[keep], fresh.user_ids])
        merged_homes = np.concatenate([self.homes[keep], fresh.homes])
        merged_conf = np.concatenate(
            [self.confidences[keep], fresh.confidences]
        )
        flat_keep = np.repeat(keep, old_counts)
        merged_counts = np.concatenate(
            [old_counts[keep], np.diff(fresh.topk_indptr)]
        )
        merged_locs = np.concatenate(
            [self.topk_locs[flat_keep], fresh.topk_locs]
        )
        merged_probs = np.concatenate(
            [self.topk_probs[flat_keep], fresh.topk_probs]
        )
        order = np.argsort(merged_uids, kind="stable")
        starts = np.zeros(merged_counts.size + 1, dtype=np.int64)
        np.cumsum(merged_counts, out=starts[1:])
        sel = _ragged_gather(starts[:-1], merged_counts, order)
        sorted_counts = merged_counts[order]
        indptr = np.zeros(order.size + 1, dtype=np.int64)
        np.cumsum(sorted_counts, out=indptr[1:])
        return self._assemble(
            merged_uids[order],
            merged_homes[order],
            merged_conf[order],
            indptr,
            merged_locs[sel],
            merged_probs[sel],
            n_locations=int(self.home_indptr.size - 1),
            generation=generation,
            artifact_id=self.artifact_id,
            k=self.k,
        )

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return int(self.user_ids.size)

    def residents_of(
        self, locations, min_confidence: float = 0.0
    ) -> np.ndarray:
        """Row positions of users predicted to live in ``locations``.

        Positions index the parallel columnar arrays; rows are returned
        grouped by the (given) location order, ascending user id within
        each location, filtered by the confidence floor.
        """
        locs = np.asarray(locations, dtype=np.int64)
        parts = [
            self.home_pos[self.home_indptr[loc] : self.home_indptr[loc + 1]]
            for loc in locs
        ]
        pos = (
            np.concatenate(parts)
            if parts
            else np.empty(0, dtype=np.int64)
        )
        if min_confidence > 0.0 and pos.size:
            pos = pos[self.confidences[pos] >= min_confidence]
        return pos

    def city_counts(self, min_confidence: float = 0.0) -> np.ndarray:
        """Predicted residents per location id (confidence-filtered)."""
        n_locations = int(self.home_indptr.size - 1)
        mask = self.homes >= 0
        if min_confidence > 0.0:
            mask &= self.confidences >= min_confidence
        return np.bincount(self.homes[mask], minlength=n_locations)

    def top_cities(
        self, k: int, min_confidence: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(location_ids, counts)`` of the ``k`` most predicted cities.

        Ordered by descending count, ties broken by ascending location
        id; locations with zero predicted residents never appear.
        """
        counts = self.city_counts(min_confidence)
        nonzero = np.flatnonzero(counts)
        order = np.lexsort((nonzero, -counts[nonzero]))[:k]
        chosen = nonzero[order]
        return chosen, counts[chosen]

    def stats(self, min_confidence: float = 0.0) -> dict:
        """Summary block shared by ``/query/aggregate`` and the CLI."""
        mask = self.homes >= 0
        if min_confidence > 0.0:
            mask &= self.confidences >= min_confidence
        conf = self.confidences[mask]
        return {
            "indexed_users": int(self.user_ids.size),
            "with_home": int(np.count_nonzero(self.homes >= 0)),
            "matching": int(np.count_nonzero(mask)),
            "cities": int(np.count_nonzero(self.city_counts(min_confidence))),
            "mean_confidence": (
                round(float(conf.mean()), 6) if conf.size else None
            ),
        }

    # -- identity ----------------------------------------------------------

    def same_projection(self, other: "PredictionIndex") -> bool:
        """Bit-for-bit array equality (the refresh == rebuild contract)."""
        return (
            self.generation == other.generation
            and self.artifact_id == other.artifact_id
            and self.k == other.k
            and all(
                np.array_equal(getattr(self, name), getattr(other, name))
                for name in (
                    "user_ids",
                    "homes",
                    "confidences",
                    "topk_indptr",
                    "topk_locs",
                    "topk_probs",
                    "home_indptr",
                    "home_pos",
                )
            )
        )
