"""``repro query``: the geo-analytics query layer from the command line.

Four subcommands mirror the four ``GET /query/*`` routes (docs/API.md):

- ``repro query radius      --artifact m.mlp.npz --city "Austin, TX" --radius 100``
- ``repro query top-cities  --artifact m.mlp.npz -k 10``
- ``repro query venue-residents --artifact m.mlp.npz --venue princeton``
- ``repro query aggregate   --artifact m.mlp.npz --by state``

Offline mode (``--artifact``, optionally ``--journal`` to reflect
journaled ingest) builds the prediction index in-process and prints the
same JSON payload the HTTP routes serve.  ``--url`` mode instead issues
the corresponding GET against a running server -- handy for poking a
live deployment without loading the artifact locally -- and prints the
response body verbatim, so both modes are diffable against each other.
"""

from __future__ import annotations

import argparse
import json
import sys
from urllib.parse import urlencode


def add_query_parser(subparsers) -> None:
    """Register the ``query`` subcommand tree on the root CLI parser."""
    parser = subparsers.add_parser(
        "query",
        help="geo-analytics queries over predicted homes",
        description=(
            "Query the prediction index: radius lookups, top cities by "
            "predicted population, venue residents, and aggregates. "
            "Runs offline against an artifact or remotely via --url."
        ),
    )
    kinds = parser.add_subparsers(dest="query_command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        source = sub.add_mutually_exclusive_group(required=True)
        source.add_argument(
            "--artifact", type=str, default=None,
            help="score offline against this .mlp.npz artifact",
        )
        source.add_argument(
            "--url", type=str, default=None,
            help="query a running server (e.g. http://localhost:8000)",
        )
        sub.add_argument(
            "--journal", type=str, default=None,
            help="with --artifact: recover this delta journal first",
        )
        sub.add_argument(
            "--min-confidence", type=float, default=None,
            help="only count predictions with at least this posterior "
            "mass on the home",
        )

    radius = kinds.add_parser(
        "radius", help="predicted residents within a radius of a point/city"
    )
    common(radius)
    radius.add_argument("--radius", type=float, required=True,
                        help="radius in miles")
    radius.add_argument("--lat", type=float, default=None)
    radius.add_argument("--lon", type=float, default=None)
    radius.add_argument("--city", type=str, default=None,
                        help='center city, e.g. "Austin, TX"')
    radius.add_argument("--state", type=str, default=None)
    radius.add_argument("--limit", type=int, default=None,
                        help="max per-user rows in the answer")

    top = kinds.add_parser(
        "top-cities", help="cities ranked by predicted population"
    )
    common(top)
    top.add_argument("-k", type=int, default=None, help="cities to return")

    venue = kinds.add_parser(
        "venue-residents",
        help="predicted residents of the locations behind a venue name",
    )
    common(venue)
    venue.add_argument("--venue", type=str, default=None,
                       help="venue name, e.g. princeton")
    venue.add_argument("--venue-id", type=int, default=None,
                       help="dense venue id instead of a name")
    venue.add_argument("--limit", type=int, default=None)

    aggregate = kinds.add_parser(
        "aggregate", help="group-level aggregates of predicted homes"
    )
    common(aggregate)
    aggregate.add_argument("--by", type=str, default=None,
                           choices=("state", "city"))


def _request_of(args: argparse.Namespace) -> tuple[str, str]:
    """Map parsed CLI arguments to ``(route, query_string)``."""
    params: dict[str, str] = {}

    def put(key: str, value) -> None:
        if value is not None:
            params[key] = str(value)

    put("min_confidence", args.min_confidence)
    if args.query_command == "radius":
        route = "/query/radius"
        put("radius", args.radius)
        put("lat", args.lat)
        put("lon", args.lon)
        put("city", args.city)
        put("state", args.state)
        put("limit", args.limit)
    elif args.query_command == "top-cities":
        route = "/query/top-cities"
        put("k", args.k)
    elif args.query_command == "venue-residents":
        route = "/query/venue-residents"
        put("venue", args.venue)
        put("venue_id", args.venue_id)
        put("limit", args.limit)
    else:
        route = "/query/aggregate"
        put("by", args.by)
    return route, urlencode(params)


def _query_remote(url: str, route: str, query: str) -> int:
    """GET the route from a live server; print the body verbatim."""
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    target = url.rstrip("/") + route + ("?" + query if query else "")
    try:
        with urlopen(target, timeout=60) as response:
            print(response.read().decode("utf-8"))
            return 0
    except HTTPError as exc:
        print(exc.read().decode("utf-8", "replace"), file=sys.stderr)
        print(f"query failed: HTTP {exc.code} from {target}",
              file=sys.stderr)
        return 1
    except URLError as exc:
        print(f"cannot reach {target}: {exc}", file=sys.stderr)
        return 2


def cmd_query(args: argparse.Namespace) -> int:
    """Entry point wired into ``repro.cli`` for ``repro query ...``."""
    route, query = _request_of(args)
    if args.url is not None:
        return _query_remote(args.url, route, query)
    # Offline: load the artifact (recovering the journal when given)
    # and answer through the same QueryService the servers use.
    from repro.cli import _load_predictor, _recover_journaled_predictor
    from repro.query.service import QueryService

    predictor = _load_predictor(args.artifact)
    journal = None
    try:
        if args.journal is not None:
            from repro.data.journal import JournalError

            try:
                predictor, journal, _report = _recover_journaled_predictor(
                    predictor, args.journal
                )
            except JournalError as exc:
                print(f"cannot open --journal: {exc}", file=sys.stderr)
                return 2
        service = QueryService(predictor, journal=journal)
        try:
            payload = service.answer(route, query)
        except ValueError as exc:
            print(f"bad query: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(payload, indent=2))
        return 0
    finally:
        if journal is not None:
            journal.close()
