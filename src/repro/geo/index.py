"""A uniform lat/lon grid index for radius and nearest queries.

The evaluation metrics (DP/DR "close enough" tests) and the baselines
(Cheng et al.'s neighborhood smoothing) repeatedly ask "which candidate
locations lie within m miles of here?".  A dense distance matrix answers
that for gazetteer locations, but arbitrary query points (e.g. venue
coordinates, synthetic user homes) need a spatial index.  A simple
uniform grid over degrees is ample at this scale and has no
dependencies.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.geo.coords import haversine_miles

#: Rough miles per degree of latitude; used only to size grid cells.
_MILES_PER_DEG_LAT = 69.0


class SpatialGridIndex:
    """Bucket points into a uniform lat/lon grid for fast radius queries.

    Parameters
    ----------
    lats, lons:
        Parallel coordinate arrays; the index stores integer ids
        ``0..n-1`` referring to positions in these arrays.
    cell_miles:
        Approximate grid cell edge length in miles.  Radius queries
        scan ``ceil(radius / cell)`` rings of neighbouring cells.
    """

    def __init__(
        self,
        lats: Sequence[float],
        lons: Sequence[float],
        cell_miles: float = 50.0,
    ):
        if len(lats) != len(lons):
            raise ValueError("lats and lons must have equal length")
        if cell_miles <= 0:
            raise ValueError("cell_miles must be positive")
        self._lats = np.asarray(lats, dtype=np.float64)
        self._lons = np.asarray(lons, dtype=np.float64)
        self._cell_deg = cell_miles / _MILES_PER_DEG_LAT
        self._cells: dict[tuple[int, int], list[int]] = {}
        for i in range(len(self._lats)):
            self._cells.setdefault(
                self._cell_of(self._lats[i], self._lons[i]), []
            ).append(i)

    @classmethod
    def from_gazetteer(
        cls, gazetteer, cell_miles: float = 50.0
    ) -> "SpatialGridIndex":
        """Index every gazetteer location; ids are location ids.

        The grid the prediction index (:mod:`repro.query.index`) joins
        against: ``query_radius`` answers in location ids, which the
        index's inverted home -> users CSR then expands to predicted
        residents.
        """
        return cls(gazetteer.lats, gazetteer.lons, cell_miles=cell_miles)

    def __len__(self) -> int:
        return len(self._lats)

    def _cell_of(self, lat: float, lon: float) -> tuple[int, int]:
        return (
            int(math.floor(lat / self._cell_deg)),
            int(math.floor(lon / self._cell_deg)),
        )

    def _candidate_ids(
        self, lat: float, lon: float, radius_miles: float
    ) -> Iterable[int]:
        """Ids in all grid cells that could contain points in range."""
        # Longitude degrees shrink with latitude; widen the ring to be safe.
        lat_rings = int(math.ceil(radius_miles / (_MILES_PER_DEG_LAT * self._cell_deg))) + 1
        cos_lat = max(0.2, math.cos(math.radians(lat)))
        lon_rings = int(math.ceil(lat_rings / cos_lat)) + 1
        ci, cj = self._cell_of(lat, lon)
        for di in range(-lat_rings, lat_rings + 1):
            for dj in range(-lon_rings, lon_rings + 1):
                yield from self._cells.get((ci + di, cj + dj), ())

    def query_radius(
        self, lat: float, lon: float, radius_miles: float
    ) -> list[int]:
        """Ids of all indexed points within ``radius_miles`` of (lat, lon)."""
        if radius_miles < 0:
            raise ValueError("radius_miles must be non-negative")
        hits = []
        for i in self._candidate_ids(lat, lon, radius_miles):
            if (
                haversine_miles(lat, lon, self._lats[i], self._lons[i])
                <= radius_miles
            ):
                hits.append(i)
        return sorted(hits)

    def nearest(self, lat: float, lon: float) -> int:
        """Id of the indexed point nearest to (lat, lon).

        Expands the search radius geometrically until a hit is found, then
        verifies against every candidate in the final ring, so the result
        is exact.
        """
        radius = _MILES_PER_DEG_LAT * self._cell_deg
        while True:
            best_id, best_d = -1, float("inf")
            for i in self._candidate_ids(lat, lon, radius):
                d = haversine_miles(lat, lon, self._lats[i], self._lons[i])
                if d < best_d:
                    best_id, best_d = i, d
            if best_id >= 0 and best_d <= radius:
                return best_id
            radius *= 2.0
            if radius > 4.0 * math.pi * 3959.0:  # searched the whole globe
                if best_id >= 0:
                    return best_id
                raise ValueError("index is empty")
