"""Gazetteer: the candidate-location universe ``L`` and venue names ``V``.

The paper's model consumes two artifacts that a gazetteer provides:

- the candidate locations ``L`` (city-level, each with coordinates so
  distances between locations are defined), and
- the venue vocabulary ``V`` (venue *names*, which may be ambiguous:
  one name can refer to many locations -- "Princeton" names 19 towns).

:class:`Gazetteer` owns both and offers the lookups every other
subsystem needs: id -> record, normalized name -> candidate records,
``(city, state)`` -> record, pairwise distances over ``L`` (cached as a
dense matrix, since |L| is a few hundred to a few thousand), and
nearest-location queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.geo.coords import haversine_miles, pairwise_distance_matrix


def normalize_place_name(name: str) -> str:
    """Canonical form for venue/city names: casefold, collapse spaces.

    Punctuation commonly found in city names (periods in "St. Louis",
    hyphens in "Winston-Salem") is stripped so that tweet text tokens
    match gazetteer entries.
    """
    cleaned = name.casefold().replace(".", "").replace("-", " ")
    return " ".join(cleaned.split())


@dataclass(frozen=True, slots=True)
class Location:
    """A candidate city-level location (one row of the gazetteer)."""

    location_id: int
    city: str
    state: str
    lat: float
    lon: float
    population: int = 0

    @property
    def name(self) -> str:
        """Human-readable ``"City, ST"`` label used in reports."""
        return f"{self.city}, {self.state}"

    @property
    def venue_name(self) -> str:
        """The (possibly ambiguous) venue name this city contributes."""
        return normalize_place_name(self.city)

    def distance_to(self, other: "Location") -> float:
        """Great-circle distance to another location, in miles."""
        return haversine_miles(self.lat, self.lon, other.lat, other.lon)


class Gazetteer:
    """Candidate locations ``L`` plus the venue vocabulary ``V``.

    The gazetteer is immutable after construction.  Location ids must be
    the dense range ``0..len-1`` (the samplers index arrays by them).
    """

    def __init__(self, locations: Sequence[Location]):
        if not locations:
            raise ValueError("a gazetteer needs at least one location")
        ids = [loc.location_id for loc in locations]
        if sorted(ids) != list(range(len(locations))):
            raise ValueError(
                "location ids must be a dense 0..n-1 range "
                f"(got {min(ids)}..{max(ids)} over {len(ids)} entries)"
            )
        self._locations: tuple[Location, ...] = tuple(
            sorted(locations, key=lambda loc: loc.location_id)
        )
        self._by_name: dict[str, tuple[Location, ...]] = {}
        by_name_acc: dict[str, list[Location]] = {}
        self._by_city_state: dict[tuple[str, str], Location] = {}
        for loc in self._locations:
            by_name_acc.setdefault(loc.venue_name, []).append(loc)
            key = (loc.venue_name, loc.state.upper())
            if key in self._by_city_state:
                raise ValueError(f"duplicate gazetteer entry: {loc.name}")
            self._by_city_state[key] = loc
        self._by_name = {
            name: tuple(sorted(locs, key=lambda l: -l.population))
            for name, locs in by_name_acc.items()
        }

    # -- basic container protocol ------------------------------------

    def __len__(self) -> int:
        return len(self._locations)

    def __iter__(self) -> Iterator[Location]:
        return iter(self._locations)

    def __getitem__(self, location_id: int) -> Location:
        return self._locations[location_id]

    # -- lookups -------------------------------------------------------

    @property
    def locations(self) -> tuple[Location, ...]:
        """All locations ordered by id."""
        return self._locations

    def by_id(self, location_id: int) -> Location:
        """Return the location with the given id (raises IndexError)."""
        if not 0 <= location_id < len(self._locations):
            raise IndexError(f"no location with id {location_id}")
        return self._locations[location_id]

    def lookup_name(self, name: str) -> tuple[Location, ...]:
        """All locations whose city name matches ``name``.

        The result is ordered by descending population (most salient
        referent first) and is empty when the name is unknown.  This is
        where venue-name ambiguity lives: ``lookup_name("princeton")``
        returns several towns.
        """
        return self._by_name.get(normalize_place_name(name), ())

    def lookup_city_state(self, city: str, state: str) -> Location | None:
        """Resolve an unambiguous ``(city, state)`` pair, or ``None``."""
        return self._by_city_state.get(
            (normalize_place_name(city), state.upper())
        )

    def is_ambiguous(self, name: str) -> bool:
        """True when ``name`` refers to more than one location."""
        return len(self.lookup_name(name)) > 1

    # -- venue vocabulary ----------------------------------------------

    @cached_property
    def venue_vocabulary(self) -> tuple[str, ...]:
        """The venue names ``V``, sorted, deduplicated.

        Distinct cities sharing a name contribute a *single* venue: the
        model treats venue names as categorical labels precisely because
        they are ambiguous (Sec. 3 of the paper).
        """
        return tuple(sorted(self._by_name))

    @cached_property
    def venue_index(self) -> dict[str, int]:
        """Map venue name -> dense venue id (inverse of the vocabulary)."""
        return {name: i for i, name in enumerate(self.venue_vocabulary)}

    def venue_id_of_location(self, location_id: int) -> int:
        """The venue id of a location's own city name."""
        return self.venue_index[self.by_id(location_id).venue_name]

    # -- geometry --------------------------------------------------------

    @cached_property
    def lats(self) -> np.ndarray:
        """Latitudes of all locations, indexed by location id."""
        return np.array([loc.lat for loc in self._locations])

    @cached_property
    def lons(self) -> np.ndarray:
        """Longitudes of all locations, indexed by location id."""
        return np.array([loc.lon for loc in self._locations])

    @cached_property
    def populations(self) -> np.ndarray:
        """Populations of all locations, indexed by location id."""
        return np.array(
            [loc.population for loc in self._locations], dtype=np.float64
        )

    @cached_property
    def distance_matrix(self) -> np.ndarray:
        """Dense ``(|L|, |L|)`` matrix of pairwise distances in miles.

        Computed lazily once; every model component (FL sampling, DP/DR
        metrics, candidate expansion) reads distances from here.
        """
        return pairwise_distance_matrix(self.lats, self.lons)

    def distance(self, id_a: int, id_b: int) -> float:
        """Distance in miles between two locations by id."""
        return float(self.distance_matrix[id_a, id_b])

    def nearest(self, lat: float, lon: float) -> Location:
        """The location closest to an arbitrary coordinate."""
        from repro.geo.coords import haversine_miles_vec

        dists = haversine_miles_vec(lat, lon, self.lats, self.lons)
        return self._locations[int(np.argmin(dists))]

    def within_radius(self, location_id: int, radius_miles: float) -> list[int]:
        """Ids of locations within ``radius_miles`` of ``location_id``.

        Includes ``location_id`` itself (distance zero).
        """
        row = self.distance_matrix[location_id]
        return [int(i) for i in np.flatnonzero(row <= radius_miles)]

    def subset(self, location_ids: Iterable[int]) -> "Gazetteer":
        """A new gazetteer over a subset of locations, ids re-densified.

        Useful for scale-reduction in tests; the mapping old->new id is
        the sorted order of ``location_ids``.
        """
        chosen = sorted(set(location_ids))
        locations = [
            Location(
                location_id=new_id,
                city=self._locations[old_id].city,
                state=self._locations[old_id].state,
                lat=self._locations[old_id].lat,
                lon=self._locations[old_id].lon,
                population=self._locations[old_id].population,
            )
            for new_id, old_id in enumerate(chosen)
        ]
        return Gazetteer(locations)
