"""Geographic substrate: coordinates, gazetteer, and spatial indexing.

The paper profiles *city-level* locations drawn from a U.S. gazetteer
(Census 2000 in the original).  This package provides:

- :mod:`repro.geo.coords` -- great-circle distance in miles, the unit the
  paper reports every threshold in (ACC@100, 1-mile buckets, ...).
- :mod:`repro.geo.us_cities` -- an embedded gazetteer of real U.S. cities
  (name, state, coordinates, population) including deliberately ambiguous
  names such as Princeton and Springfield.
- :mod:`repro.geo.gazetteer` -- the :class:`Gazetteer` lookup structure
  mapping names to candidate locations and ids to records.
- :mod:`repro.geo.index` -- a uniform lat/lon grid index for radius and
  nearest-neighbour queries used by evaluation metrics and baselines.
"""

from repro.geo.coords import (
    EARTH_RADIUS_MILES,
    GeoPoint,
    equirectangular_miles,
    haversine_miles,
    pairwise_distance_matrix,
)
from repro.geo.gazetteer import Gazetteer, Location
from repro.geo.index import SpatialGridIndex
from repro.geo.us_cities import (
    US_CITIES,
    builtin_gazetteer,
    synthetic_gazetteer,
)

__all__ = [
    "EARTH_RADIUS_MILES",
    "GeoPoint",
    "Gazetteer",
    "Location",
    "SpatialGridIndex",
    "US_CITIES",
    "builtin_gazetteer",
    "equirectangular_miles",
    "haversine_miles",
    "pairwise_distance_matrix",
    "synthetic_gazetteer",
]
