"""Coordinate primitives and great-circle distances in miles.

Every distance in the paper (the power-law fit of Fig. 3(a), ACC@m,
DP/DR closeness, the 1-mile histogram buckets) is expressed in miles, so
miles are the native unit throughout this code base.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Mean Earth radius in miles (IUGG mean radius 6371.0088 km).
EARTH_RADIUS_MILES = 3958.7613


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A latitude/longitude pair in decimal degrees.

    Latitude must lie in [-90, 90] and longitude in [-180, 180].
    Instances are immutable and hashable so they can key caches.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat!r}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon!r}")

    def distance_to(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in miles."""
        return haversine_miles(self.lat, self.lon, other.lat, other.lon)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(lat, lon)``."""
        return (self.lat, self.lon)


def haversine_miles(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two points, in miles.

    Uses the haversine formula, which is numerically stable for the
    small distances that dominate this workload (same-metro pairs).
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_MILES * math.asin(min(1.0, math.sqrt(a)))


def equirectangular_miles(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Fast approximate distance in miles (equirectangular projection).

    Within-CONUS error is well under 1% for pairs closer than ~500 miles,
    which makes it a good candidate-pruning distance.  Exact metrics use
    :func:`haversine_miles`.
    """
    x = math.radians(lon2 - lon1) * math.cos(math.radians((lat1 + lat2) / 2.0))
    y = math.radians(lat2 - lat1)
    return EARTH_RADIUS_MILES * math.hypot(x, y)


def haversine_miles_vec(
    lat1: np.ndarray | float,
    lon1: np.ndarray | float,
    lat2: np.ndarray | float,
    lon2: np.ndarray | float,
) -> np.ndarray:
    """Vectorized haversine distance in miles over numpy arrays."""
    phi1 = np.radians(np.asarray(lat1, dtype=np.float64))
    phi2 = np.radians(np.asarray(lat2, dtype=np.float64))
    dphi = phi2 - phi1
    dlam = np.radians(np.asarray(lon2, dtype=np.float64)) - np.radians(
        np.asarray(lon1, dtype=np.float64)
    )
    a = (
        np.sin(dphi / 2.0) ** 2
        + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    )
    a = np.clip(a, 0.0, 1.0)
    return 2.0 * EARTH_RADIUS_MILES * np.arcsin(np.sqrt(a))


def pairwise_distance_matrix(
    lats: np.ndarray, lons: np.ndarray
) -> np.ndarray:
    """All-pairs haversine distance matrix in miles.

    ``lats`` and ``lons`` are parallel 1-D arrays of length ``n``; the
    result is an ``(n, n)`` symmetric matrix with a zero diagonal.  The
    core sampler caches this matrix over the *candidate locations* (a few
    hundred cities), never over users, so memory stays modest.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    if lats.shape != lons.shape or lats.ndim != 1:
        raise ValueError("lats and lons must be parallel 1-D arrays")
    return haversine_miles_vec(
        lats[:, None], lons[:, None], lats[None, :], lons[None, :]
    )
