"""Engine selection: map ``MLPParams.engine`` names to sampler classes.

Callers (the Gibbs-EM driver, the chain pool, the CLI) construct
samplers through :func:`make_sampler` so that the engine choice is a
parameter, not an import.  ``ENGINES`` is the registry; both entries
sample the *same* chain -- the golden tests assert bit-identical
states -- and differ only in speed and memory footprint.
"""

from __future__ import annotations

from repro.core.gibbs import GibbsSampler
from repro.core.params import MLPParams
from repro.core.priors import UserPriors
from repro.data.columnar import ColumnarWorld
from repro.data.model import Dataset
from repro.engine.vectorized import VectorizedGibbsSampler

#: Engine name -> sampler class.  ``loop`` is the reference
#: implementation (the oracle); ``vectorized`` trades memory for speed.
ENGINES: dict[str, type[GibbsSampler]] = {
    "loop": GibbsSampler,
    "vectorized": VectorizedGibbsSampler,
}


def make_sampler(
    dataset: Dataset | ColumnarWorld,
    params: MLPParams,
    priors: UserPriors | None = None,
    alpha: float | None = None,
    beta: float | None = None,
) -> GibbsSampler:
    """Construct the sampler selected by ``params.engine``.

    Arguments mirror :class:`~repro.core.gibbs.GibbsSampler` (either a
    dataset or an already-compiled world is accepted); the engine name
    is validated by :class:`~repro.core.params.MLPParams`, so an
    unknown name can only reach this point through a bypassed
    constructor -- fail loudly in that case too.
    """
    try:
        cls = ENGINES[params.engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {params.engine!r}; "
            f"expected one of {sorted(ENGINES)}"
        ) from None
    return cls(dataset, params, priors=priors, alpha=alpha, beta=beta)
