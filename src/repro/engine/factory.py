"""Engine selection: map ``MLPParams.engine`` names to sampler classes.

Callers (the Gibbs-EM driver, the chain pool, the CLI) construct
samplers through :func:`make_sampler` so that the engine choice is a
parameter, not an import.  The name table itself lives in
:mod:`repro.engine.registry` (the import-light single source of truth
shared with params validation and the CLI); ``ENGINES`` here is that
table resolved to classes.  ``loop`` and ``vectorized`` sample the
*same* chain -- the golden tests assert bit-identical states --
``partitioned`` relaxes bit-identity for conflict-free parallel block
sweeps and is validated statistically (plus a 1-color golden fallback).
"""

from __future__ import annotations

from repro.core.gibbs import GibbsSampler
from repro.core.params import MLPParams
from repro.core.priors import UserPriors
from repro.data.columnar import ColumnarWorld
from repro.data.model import Dataset
from repro.engine.registry import engine_names, resolve_engine

#: Engine name -> sampler class, resolved from the registry.
ENGINES: dict[str, type[GibbsSampler]] = {
    name: resolve_engine(name) for name in engine_names()
}


def make_sampler(
    dataset: Dataset | ColumnarWorld,
    params: MLPParams,
    priors: UserPriors | None = None,
    alpha: float | None = None,
    beta: float | None = None,
) -> GibbsSampler:
    """Construct the sampler selected by ``params.engine``.

    Arguments mirror :class:`~repro.core.gibbs.GibbsSampler` (either a
    dataset or an already-compiled world is accepted); the engine name
    is validated by :class:`~repro.core.params.MLPParams`, so an
    unknown name can only reach this point through a bypassed
    constructor -- fail loudly in that case too.
    """
    try:
        cls = ENGINES[params.engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {params.engine!r}; "
            f"expected one of {sorted(ENGINES)}"
        ) from None
    return cls(dataset, params, priors=priors, alpha=alpha, beta=beta)
