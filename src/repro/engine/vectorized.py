"""The vectorized Gibbs engine: same chain, precomputed data layout.

A collapsed Gibbs sweep is inherently sequential -- every edge's
conditional depends on the counts left behind by the previous edge, and
the synthetic corpora (like real crawls) list edges grouped by user, so
consecutive edges almost always share an endpoint.  What *can* be
removed from the inner loop is everything that does not depend on the
evolving counts:

- **distance kernels**: the Eq. 1 factor ``beta * d(x, y)**alpha`` over
  an edge's candidate pair grid is constant until the law changes.  The
  loop engine rebuilds it (gather + clamp + pow) for every edge in
  every sweep; this engine evaluates the law once over the full
  distance matrix and caches one ``(|cand_i|, |cand_j|)`` table per
  edge, rebuilding only when :meth:`set_following_law` swaps the law.
- **collapsed-profile arena**: the Eq. 7-9 weight vectors
  ``phi[u, candidates[u]] + gamma[u]`` for *all* users live packed in
  one contiguous arena, refreshed per sweep with a single gather + add
  and then patched scalar-wise as assignments move.  Each patch
  recomputes its cell as ``(count +- 1) + gamma`` -- the exact
  expression the loop engine evaluates -- so the arena stays
  bit-identical to a fresh computation.  Per-edge weight lookups are
  then plain views: no gather, no add, no allocation in the hot loop.
  The arena *skeleton* (slot offsets, gather indices, flat gamma) is
  the shared :meth:`~repro.core.priors.UserPriors.packed` layout,
  built once per priors instance and reused by every chain of a pool
  instead of being reconstructed per fit.
- **tracked assignment positions**: each edge remembers the arena slot
  of its current assignment, so count updates are index arithmetic
  (the inverse-CDF draw index *is* the slot offset) instead of
  location-id lookups.
- **flat tweeting arena**: the collapsed TL counts and their row sums
  share one flat buffer (see
  :meth:`~repro.core.tweeting.CollapsedTweetingModel.repack_flat`), so
  the Eq. 9 numerator and denominator arrive in a single ``take`` with
  per-edge precomputed flat indices.
- **scratch reuse**: joint tables and cumulative sums are views into
  preallocated scratch buffers; per-sweep, user-side counts flow back
  into ``phi`` through one vectorized scatter.

Every arithmetic step mirrors the loop engine op for op (IEEE-754
multiplication is commutative bit-for-bit, elementwise ufuncs are
deterministic, and the RNG is consumed in the identical order), so a
fixed seed yields **bit-identical** states across engines -- the golden
tests assert exactly that.  The price is memory: the kernel cache is
``sum_s |cand_i| * |cand_j|`` doubles (tens of MB at benchmark scale),
which is the documented time-space trade against the loop engine.
"""

from __future__ import annotations

import numpy as np

from repro.core.gibbs import NO_ASSIGNMENT, GibbsSampler


class VectorizedGibbsSampler(GibbsSampler):
    """Drop-in :class:`GibbsSampler` with precomputed sweep layouts.

    Construction, initialization, scheduling and estimation are all
    inherited; only the two sweep kernels are replaced.  The layout is
    built lazily on the first sweep (and the kernel cache refreshed
    whenever the following law changes), so Gibbs-EM refits keep
    working unmodified.

    One contract is stricter than the loop engine's: assignment arrays
    (``state.x`` etc.) must not be mutated externally between sweeps --
    the engine tracks their arena positions incrementally.  Counts may
    be read freely; they are consistent with the assignments whenever
    no sweep is mid-flight.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._layout_ready = False
        self._kernel_law = None
        self._positions_dirty = True
        # Repack the tweeting counts into one flat arena so numerator
        # (counts) and denominator (row totals) reads share one take.
        self._tl_arena = self.tweeting_model.repack_flat()

    def initialize(self) -> None:
        """Reset sampler state; marks cached positions dirty."""
        super().initialize()
        self._positions_dirty = True

    # -- layout ----------------------------------------------------------

    def _build_layout(self) -> None:
        """Static per-edge geometry: views, indices, scratch buffers.

        The arena skeleton (slot offsets, gather indices, flat gamma)
        is the shared :meth:`~repro.core.priors.UserPriors.packed`
        layout: built once per priors instance and reused by every
        chain of a pool instead of being reconstructed per fit.
        """
        priors = self.priors
        cands = priors.candidates
        gamma_sum = priors.gamma_sum
        n_users = self.world.n_users
        n_loc = self.state.user_counts.phi.shape[1]
        n_ven = self.world.n_venues
        self._n_loc = n_loc
        self._n_ven = n_ven
        self._phi_flat = self.state.user_counts.phi.reshape(-1)

        # Collapsed-profile arena: phi[u, candidates[u]] + gamma[u],
        # packed per user.  _raw_counts mirrors the un-smoothed counts
        # as Python floats so patches can recompute cells exactly.
        pack = priors.packed()
        self._arena_offsets = pack.offsets
        self._cand_arena = np.empty(pack.total_slots, dtype=np.float64)
        self._arena_src = pack.flat_candidates + n_loc * pack.slot_user
        self._gamma_flat = pack.flat_gamma
        self._gamma_vals = pack.gamma_list
        self._raw_counts: list[float] = []
        offsets = pack.offsets.tolist()
        arena_views = [
            self._cand_arena[offsets[u]:offsets[u + 1]]
            for u in range(n_users)
        ]

        cmax = max((c.size for c in cands), default=0)
        pair_max = 0
        for i, j in zip(self._followers, self._friends):
            pair_max = max(pair_max, cands[int(i)].size * cands[int(j)].size)
        joint_buf = np.empty(pair_max)
        w_buf = np.empty(max(cmax, 1))
        nd_buf = np.empty(2 * max(cmax, 1))

        self._f_edges = []
        for s in range(len(self._followers)):
            i = int(self._followers[s])
            j = int(self._friends[s])
            ni = cands[i].size
            nj = cands[j].size
            npair = ni * nj
            self._f_edges.append((
                i,
                j,
                arena_views[i].reshape(ni, 1),
                arena_views[j],
                joint_buf[:npair].reshape(ni, nj),
                joint_buf[:npair],
                joint_buf[:npair].searchsorted,
                joint_buf[:npair].item,
                float(gamma_sum[i]),
                float(gamma_sum[j]),
                offsets[i],
                offsets[j],
                cands[i].tolist(),
                cands[j].tolist(),
                nj,
                npair,
            ))

        dvec_by_size: dict[int, np.ndarray] = {}
        delta = self.tweeting_model.delta
        delta_sum = delta * n_ven
        tl_total_base = n_loc * n_ven  # totals live after phi in the arena
        rho_t = self.params.rho_t
        tr_probs = self.random_tweeting.venue_probabilities
        self._t_edges = []
        for k in range(len(self._tw_users)):
            i = int(self._tw_users[k])
            v = int(self._tw_venues[k])
            ci = cands[i]
            n = ci.size
            if n not in dvec_by_size:
                dvec = np.empty(2 * n)
                dvec[:n] = delta
                dvec[n:] = delta_sum
                dvec_by_size[n] = dvec
            tl_idx = np.concatenate([ci * n_ven + v, tl_total_base + ci])
            self._t_edges.append((
                i,
                v,
                arena_views[i],
                w_buf[:n],
                nd_buf[:2 * n],
                nd_buf[:n],
                nd_buf[n:2 * n],
                dvec_by_size[n],
                tl_idx,
                w_buf[:n].searchsorted,
                w_buf[:n].item,
                float(gamma_sum[i]),
                rho_t * float(tr_probs[v]),
                offsets[i],
                ci.tolist(),
                n,
            ))
        # Arena slot of each edge's current assignment (valid whenever
        # the corresponding selector is on the location branch).
        self._x_pos = [0] * len(self._f_edges)
        self._y_pos = [0] * len(self._f_edges)
        self._z_pos = [0] * len(self._t_edges)
        self._layout_ready = True

    def _build_kernels(self) -> None:
        """Per-edge Eq. 1 tables for the current law (law-dependent)."""
        law = self.following_model.law
        # Elementwise ufuncs make law(dmat)[ix] bit-identical to
        # law(dmat[ix]), so one full-matrix evaluation feeds every edge.
        law_matrix = law(self.following_model.distance_matrix)
        cands = self.priors.candidates
        self._f_kernels = [
            law_matrix[cands[int(i)][:, None], cands[int(j)][None, :]]
            for i, j in zip(self._followers, self._friends)
        ]
        self._kernel_law = law

    def _ensure_layout(self) -> None:
        if not self._layout_ready:
            self._build_layout()
        if self._kernel_law is not self.following_model.law:
            self._build_kernels()
        if self._positions_dirty:
            self._rebuild_positions()

    def _rebuild_positions(self) -> None:
        """Map current assignments to arena slots (post-initialize).

        Candidate arrays are sorted and assignments are always drawn
        from them, so the slot is ``offset + searchsorted`` -- no
        per-user position dictionaries needed.
        """
        state = self.state
        cands = self.priors.candidates
        offsets = self._arena_offsets
        searchsorted = np.searchsorted
        for s, (mu, x, y) in enumerate(
            zip(state.mu.tolist(), state.x.tolist(), state.y.tolist())
        ):
            if mu == 0:
                i = int(self._followers[s])
                j = int(self._friends[s])
                self._x_pos[s] = int(offsets[i]) + int(searchsorted(cands[i], x))
                self._y_pos[s] = int(offsets[j]) + int(searchsorted(cands[j], y))
        for k, (nu, z) in enumerate(
            zip(state.nu.tolist(), state.z.tolist())
        ):
            if nu == 0:
                u = int(self._tw_users[k])
                self._z_pos[k] = int(offsets[u]) + int(searchsorted(cands[u], z))
        self._positions_dirty = False

    def _refresh_arena(self) -> None:
        """Re-gather counts and re-smooth: arena = phi[gather] + gamma."""
        arena = self._cand_arena
        np.take(self._phi_flat, self._arena_src, out=arena)
        self._raw_counts = arena.tolist()
        np.add(arena, self._gamma_flat, out=arena)

    def _flush_phi(self) -> None:
        """Scatter the raw counts back into phi (one write per sweep).

        Assignments are always drawn from candidate sets, so every
        nonzero phi cell has an arena slot; cells outside every
        candidate set stay zero forever.  Patching cells scalar-wise
        during the sweep and scattering once is therefore equivalent to
        the loop engine's per-edge phi writes.
        """
        self._phi_flat[self._arena_src] = np.asarray(self._raw_counts)

    # -- sweeps ----------------------------------------------------------

    def _sweep_following(self) -> int:
        self._ensure_layout()
        self._refresh_arena()
        params = self.params
        rng_random = self.rng.random
        state = self.state
        arena = self._cand_arena
        raw = self._raw_counts
        gvals = self._gamma_vals
        x_pos = self._x_pos
        y_pos = self._y_pos
        totals = state.user_counts.totals
        totals_l = totals.tolist()
        mu_l = state.mu.tolist()
        x_l = state.x.tolist()
        y_l = state.y.tolist()
        p_noise = params.rho_f * self.random_following.probability()
        one_minus_rho = 1.0 - params.rho_f
        kernels = self._f_kernels
        old_mu_arr = state.mu.copy()
        old_x_arr = state.x.copy()
        old_y_arr = state.y.copy()
        np_multiply = np.multiply
        add_reduce = np.add.reduce
        accumulate = np.add.accumulate
        isfinite = np.isfinite

        for s, (i, j, wi_col, wj, joint, jflat,
                cum_search, cum_item, gsi, gsj, off_i, off_j, cil, cjl,
                nj, npair) in enumerate(self._f_edges):
            if mu_l[s] == 0:
                p = x_pos[s]
                count = raw[p] - 1.0
                raw[p] = count
                arena[p] = count + gvals[p]
                totals_l[i] -= 1.0
                p = y_pos[s]
                count = raw[p] - 1.0
                raw[p] = count
                arena[p] = count + gvals[p]
                totals_l[j] -= 1.0

            np_multiply(kernels[s], wj, out=joint)
            np_multiply(joint, wi_col, out=joint)
            joint_sum = float(add_reduce(jflat))

            denom = (totals_l[i] + gsi) * (totals_l[j] + gsj)
            p_location = one_minus_rho * joint_sum / denom

            if rng_random() * (p_noise + p_location) < p_noise:
                mu, new_x, new_y = 1, NO_ASSIGNMENT, NO_ASSIGNMENT
            else:
                mu = 0
                accumulate(jflat, out=jflat)
                total = cum_item(npair - 1)
                if total <= 0.0 or not isfinite(total):
                    raise RuntimeError(
                        "degenerate sampling weights in Gibbs sweep"
                    )
                u = rng_random() * total
                flat = int(cum_search(u, side="right"))
                if flat >= npair:
                    flat = npair - 1
                xi_idx = flat // nj
                yj_idx = flat - xi_idx * nj
                new_x = cil[xi_idx]
                new_y = cjl[yj_idx]
                p = off_i + xi_idx
                x_pos[s] = p
                count = raw[p] + 1.0
                raw[p] = count
                arena[p] = count + gvals[p]
                totals_l[i] += 1.0
                p = off_j + yj_idx
                y_pos[s] = p
                count = raw[p] + 1.0
                raw[p] = count
                arena[p] = count + gvals[p]
                totals_l[j] += 1.0

            mu_l[s] = mu
            x_l[s] = new_x
            y_l[s] = new_y

        self._flush_phi()
        totals[:] = totals_l
        state.mu[:] = mu_l
        state.x[:] = x_l
        state.y[:] = y_l
        return int(
            np.count_nonzero(state.mu != old_mu_arr)
            + np.count_nonzero(state.x != old_x_arr)
            + np.count_nonzero(state.y != old_y_arr)
        )

    def _sweep_tweeting(self) -> int:
        self._ensure_layout()
        self._refresh_arena()
        params = self.params
        rng_random = self.rng.random
        state = self.state
        arena = self._cand_arena
        raw = self._raw_counts
        gvals = self._gamma_vals
        z_pos = self._z_pos
        totals = state.user_counts.totals
        totals_l = totals.tolist()
        nu_l = state.nu.tolist()
        z_l = state.z.tolist()
        tl_arena = self._tl_arena
        tl_take = tl_arena.take
        n_ven = self._n_ven
        tl_total_base = self._n_loc * n_ven
        one_minus_rho = 1.0 - params.rho_t
        old_nu_arr = state.nu.copy()
        old_z_arr = state.z.copy()
        np_add = np.add
        np_divide = np.divide
        np_multiply = np.multiply
        add_reduce = np.add.reduce
        accumulate = np.add.accumulate
        isfinite = np.isfinite

        for k, (i, v, wi, w, nd, nd_num, nd_den, dvec, tl_idx,
                cum_search, cum_item, gsi, p_noise, off_i, cil, n
                ) in enumerate(self._t_edges):
            if nu_l[k] == 0:
                old_z = z_l[k]
                p = z_pos[k]
                count = raw[p] - 1.0
                raw[p] = count
                arena[p] = count + gvals[p]
                totals_l[i] -= 1.0
                cell = tl_arena[old_z * n_ven + v] - 1.0
                tl_arena[old_z * n_ven + v] = cell
                tl_arena[tl_total_base + old_z] -= 1.0
                if cell < -1e-9:
                    raise RuntimeError(
                        "tweeting count went negative -- "
                        "increment/decrement mismatch"
                    )

            tl_take(tl_idx, out=nd)
            np_add(nd, dvec, out=nd)
            np_divide(nd_num, nd_den, out=nd_num)
            np_multiply(wi, nd_num, out=w)
            weight_sum = float(add_reduce(w))

            p_location = one_minus_rho * weight_sum / (totals_l[i] + gsi)

            if rng_random() * (p_noise + p_location) < p_noise:
                nu, new_z = 1, NO_ASSIGNMENT
            else:
                nu = 0
                accumulate(w, out=w)
                total = cum_item(n - 1)
                if total <= 0.0 or not isfinite(total):
                    raise RuntimeError(
                        "degenerate sampling weights in Gibbs sweep"
                    )
                u = rng_random() * total
                flat = int(cum_search(u, side="right"))
                if flat >= n:
                    flat = n - 1
                new_z = cil[flat]
                p = off_i + flat
                z_pos[k] = p
                count = raw[p] + 1.0
                raw[p] = count
                arena[p] = count + gvals[p]
                totals_l[i] += 1.0
                tl_arena[new_z * n_ven + v] += 1.0
                tl_arena[tl_total_base + new_z] += 1.0

            nu_l[k] = nu
            z_l[k] = new_z

        self._flush_phi()
        totals[:] = totals_l
        state.nu[:] = nu_l
        state.z[:] = z_l
        return int(
            np.count_nonzero(state.nu != old_nu_arr)
            + np.count_nonzero(state.z != old_z_arr)
        )
