"""The inference engine subsystem: fast samplers and multi-chain runs.

The :mod:`repro.core` package defines *what* the collapsed Gibbs
sampler computes; this package is about *how fast* and *how many at
once*:

- :mod:`repro.engine.vectorized` -- a drop-in
  :class:`~repro.core.gibbs.GibbsSampler` subclass whose sweeps replay
  the exact same chain (bit-identical states under a fixed seed) while
  assembling every per-edge weight table from precomputed candidate
  layouts and batched NumPy kernels;
- :mod:`repro.engine.partition` + :mod:`repro.engine.partitioned` --
  greedy coloring of the user-conflict graph and the sampler that
  sweeps each conflict-free color as one batched kernel (optionally
  across ``n_jobs`` threads).  Not bit-identical to the oracle chain
  (except in the 1-color fallback, which delegates to the vectorized
  sweeps); validated statistically instead;
- :mod:`repro.engine.registry` -- the import-light engine name table
  shared by params validation, the CLI and the factory;
- :mod:`repro.engine.factory` -- engine selection by name
  (``MLPParams.engine``), so callers never hard-code a sampler class;
- :mod:`repro.engine.pool` -- :class:`ChainPool`, which runs K
  independent chains (optionally across processes), pools their
  posteriors and reports R-hat style cross-chain convergence.

The plain loop sampler stays the oracle: ``tests/test_engine_vectorized.py``
asserts bit-identical sweeps between the exact engines, and
``tests/test_engine_partitioned.py`` pins the partitioned engine to
them statistically.
"""

from repro.engine.factory import ENGINES, make_sampler
from repro.engine.partition import UserPartition, check_proper, color_users
from repro.engine.partitioned import PartitionedGibbsSampler
from repro.engine.pool import ChainPool, ChainResult, PooledPosterior
from repro.engine.registry import engine_names, resolve_engine
from repro.engine.vectorized import VectorizedGibbsSampler

__all__ = [
    "ENGINES",
    "make_sampler",
    "engine_names",
    "resolve_engine",
    "ChainPool",
    "ChainResult",
    "PooledPosterior",
    "VectorizedGibbsSampler",
    "PartitionedGibbsSampler",
    "UserPartition",
    "color_users",
    "check_proper",
]
