"""The inference engine subsystem: fast samplers and multi-chain runs.

The :mod:`repro.core` package defines *what* the collapsed Gibbs
sampler computes; this package is about *how fast* and *how many at
once*:

- :mod:`repro.engine.vectorized` -- a drop-in
  :class:`~repro.core.gibbs.GibbsSampler` subclass whose sweeps replay
  the exact same chain (bit-identical states under a fixed seed) while
  assembling every per-edge weight table from precomputed candidate
  layouts and batched NumPy kernels;
- :mod:`repro.engine.factory` -- engine selection by name
  (``MLPParams.engine``), so callers never hard-code a sampler class;
- :mod:`repro.engine.pool` -- :class:`ChainPool`, which runs K
  independent chains (optionally across processes), pools their
  posteriors and reports R-hat style cross-chain convergence.

The plain loop sampler stays the oracle: ``tests/test_engine_vectorized.py``
asserts bit-identical sweeps between the two engines.
"""

from repro.engine.factory import ENGINES, make_sampler
from repro.engine.pool import ChainPool, ChainResult, PooledPosterior
from repro.engine.vectorized import VectorizedGibbsSampler

__all__ = [
    "ENGINES",
    "make_sampler",
    "ChainPool",
    "ChainResult",
    "PooledPosterior",
    "VectorizedGibbsSampler",
]
