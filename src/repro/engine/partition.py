"""Conflict-graph coloring: conflict-free user blocks for parallel sweeps.

The collapsed Gibbs conditionals couple users through shared counts:
a following edge ``(i, j)`` reads and writes the profile counts
``phi[i]`` *and* ``phi[j]``, so two users that share a following edge
cannot have their relationship blocks swept concurrently without a
read-write race on fresh state.  This module colors that user-conflict
graph -- vertices are users, an (undirected, deduplicated) edge links
the endpoints of every following relationship -- so that no two
adjacent users share a color.  The partitioned engine
(:mod:`repro.engine.partitioned`) then sweeps one color at a time:
within a color, every user's own ``phi`` row is touched only by that
user's own block, which is what makes the per-color batch kernels
well-defined over state frozen at color start.

Two couplings are deliberately *not* colored away (they would make the
conflict graph near-complete and serialize the sweep):

- **shared friends**: two same-color users may follow the same third
  user ``j``; their edges both update ``phi[j]``.  Updates to ``j`` are
  deferred to the color barrier and applied in deterministic edge
  order, so same-color edges read ``phi[j]`` as of color start.
- **candidate-location (TL) interactions**: tweeting edges of users
  whose candidate sets overlap read and write the same venue-count
  rows.  Popular candidate locations would link most tweeting users
  into one clique, so the TL arena is likewise snapshot-read per color
  and merged at the barrier.

Both relaxations are the standard approximate-collapsed-sampling move
(AD-LDA family); the statistical-equivalence tests quantify their
effect.  A world with *no* conflicts at all (no following edges, e.g.
the MLP_C ablation) colors to a single block and the partitioned
engine falls back to the exact chain -- the golden cross-check.

Coloring is greedy in Welsh-Powell order (descending degree, user id
as the tie-break): deterministic, linear in edges, and on power-law
follow graphs lands within a small factor of the degeneracy bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.columnar import build_unique_csr


@dataclass(frozen=True, slots=True)
class UserPartition:
    """A proper coloring of the user-conflict graph.

    ``colors[u]`` is user ``u``'s color in ``[0, n_colors)``; users
    sharing a conflict edge never share a color.  ``conflict_edges``
    counts the (deduplicated, undirected) conflict-graph edges and
    ``build_seconds`` the one-time coloring cost -- both journaled by
    the scaling bench and exported through the partition metrics.
    """

    colors: np.ndarray
    n_colors: int
    conflict_edges: int
    build_seconds: float

    @property
    def n_users(self) -> int:
        """Users covered by the coloring."""
        return int(self.colors.size)

    def block_sizes(self) -> np.ndarray:
        """Number of users per color."""
        return np.bincount(self.colors, minlength=self.n_colors)

    def stats(self) -> dict:
        """Summary numbers for logs, benches and metrics."""
        sizes = self.block_sizes()
        return {
            "n_users": self.n_users,
            "n_colors": self.n_colors,
            "conflict_edges": self.conflict_edges,
            "largest_block": int(sizes.max()) if sizes.size else 0,
            "smallest_block": int(sizes.min()) if sizes.size else 0,
            "build_seconds": self.build_seconds,
        }


def conflict_adjacency(
    n_users: int, edge_src: np.ndarray, edge_dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Undirected, deduplicated adjacency CSR of the conflict graph.

    Mirrors the compiled world's ``nbr`` table but is built from the
    *sampler's* edge arenas, so ablations (``use_following=False``)
    see their actual conflict structure, not the world's full graph.
    Self-pairs are dropped: a user trivially "conflicts" with itself
    and would otherwise make any proper coloring impossible.
    """
    keep = edge_src != edge_dst
    src = edge_src[keep]
    dst = edge_dst[keep]
    both_src = np.concatenate([src, dst])
    both_dst = np.concatenate([dst, src])
    return build_unique_csr(both_src, both_dst, n_users)


def color_users(
    n_users: int, edge_src: np.ndarray, edge_dst: np.ndarray
) -> UserPartition:
    """Greedy Welsh-Powell coloring of the user-conflict graph.

    Deterministic for a given edge set.  Users are colored in
    descending-degree order (stable in user id), each taking the
    smallest color absent from its already-colored neighbors; isolated
    users all land in color 0.  Runs once per sampler construction --
    linear in conflict edges, a few seconds at the million-user scale
    (journaled as ``build_seconds``).
    """
    start = time.perf_counter()
    indptr, indices = conflict_adjacency(n_users, edge_src, edge_dst)
    degrees = np.diff(indptr)
    # Stable sort on negated degree = descending degree, user id ties.
    order = np.argsort(-degrees, kind="stable")
    colors = np.full(n_users, -1, dtype=np.int32)
    # Scratch "color used by a neighbor" marks, grown on demand.
    used = np.zeros(int(degrees.max()) + 2 if n_users else 1, dtype=bool)
    indptr_l = indptr.tolist()
    n_colors = 0
    for u in order.tolist():
        lo, hi = indptr_l[u], indptr_l[u + 1]
        if lo == hi:
            colors[u] = 0
            n_colors = max(n_colors, 1)
            continue
        nbr_colors = colors[indices[lo:hi]]
        nbr_colors = nbr_colors[nbr_colors >= 0]
        used[nbr_colors] = True
        color = 0
        while used[color]:
            color += 1
        used[nbr_colors] = False
        colors[u] = color
        if color + 1 > n_colors:
            n_colors = color + 1
    return UserPartition(
        colors=colors,
        n_colors=max(n_colors, 1),
        conflict_edges=int(indices.size) // 2,
        build_seconds=time.perf_counter() - start,
    )


def check_proper(
    partition: UserPartition, edge_src: np.ndarray, edge_dst: np.ndarray
) -> bool:
    """True iff no conflict edge joins two same-colored users."""
    keep = edge_src != edge_dst
    c = partition.colors
    return bool(np.all(c[edge_src[keep]] != c[edge_dst[keep]]))
