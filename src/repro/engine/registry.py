"""The engine name registry: one source of truth, import-light.

Three places need the list of Gibbs engines -- ``MLPParams`` validation
(:mod:`repro.core.params`), the CLI ``--engine`` choices and the
factory that maps names to classes (:mod:`repro.engine.factory`).  The
first two must not import sampler implementations (params sits *below*
the engine package in the layering; the CLI builds its parser before
any heavy import), so the registry stores dotted paths and resolves
classes lazily.  Registering an engine here is the single step that
makes it reachable everywhere: validation, ``--engine`` completion,
``repro info`` and :func:`repro.engine.factory.make_sampler` all read
this table.
"""

from __future__ import annotations

from importlib import import_module

#: Engine name -> (module path, class name).  ``loop`` is the reference
#: implementation (the oracle); ``vectorized`` replays the identical
#: chain from precomputed layouts; ``partitioned`` relaxes bit-identity
#: for conflict-free parallel block sweeps (statistically equivalent,
#: see docs/PERFORMANCE.md "Partitioned sweeps").
ENGINE_PATHS: dict[str, tuple[str, str]] = {
    "loop": ("repro.core.gibbs", "GibbsSampler"),
    "vectorized": ("repro.engine.vectorized", "VectorizedGibbsSampler"),
    "partitioned": ("repro.engine.partitioned", "PartitionedGibbsSampler"),
}


def engine_names() -> tuple[str, ...]:
    """All registered engine names, sorted (stable for CLI/help/info)."""
    return tuple(sorted(ENGINE_PATHS))


def resolve_engine(name: str) -> type:
    """Import and return the sampler class registered under ``name``."""
    try:
        module_path, class_name = ENGINE_PATHS[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {list(engine_names())}"
        ) from None
    return getattr(import_module(module_path), class_name)
