"""The partitioned Gibbs engine: conflict-free parallel block sweeps.

The loop and vectorized engines honor a bit-identity chain contract --
every edge's conditional sees the counts left behind by the previous
edge -- which caps them at per-edge speed (docs/PERFORMANCE.md: ~3x
single-core is the structural ceiling).  This engine trades that
contract for set-at-a-time execution:

1. the user-conflict graph is greedy-colored once per fit
   (:mod:`repro.engine.partition`): users sharing a following edge
   never share a color;
2. a sweep processes colors sequentially.  Within one color, *every*
   relationship conditional is a function of state frozen at color
   start (a proper coloring guarantees no same-color user's own
   ``phi`` row is written by another same-color user's block), so the
   whole color collapses into flat segment kernels;
3. count updates are deferred to the color barrier and applied in
   deterministic edge order.  Shared-friend ``phi`` rows and the
   venue-count (TL) arena are therefore read as of color start -- the
   two documented relaxations of exactness (see
   :mod:`repro.engine.partition`);
4. with ``MLPParams.n_jobs > 1`` each color's edge range is split into
   contiguous chunks swept by a thread pool.  The large-array NumPy
   kernels release the GIL, chunk boundaries never split a segment,
   and all writes happen at the barrier, so results are **independent
   of n_jobs** -- parallelism changes wall time, never the chain.

The following sweep never materializes the |cand_i| x |cand_j|
candidate-pair arena the vectorized engine walks edge by edge.  The
Eq. 5 location mass factors::

    sum_xy wi[x] * wj[y] * L[x, y]  =  sum_x wi[x] * (L @ wj)[x]

so a single BLAS GEMM ``H = W @ L`` (``W`` = dense candidate-weight
rows, ``L`` = the symmetric power-law kernel over the gazetteer) turns
the per-edge pair sum into an O(|cand_i|) dot product.  ``H`` rows are
cached per *user* across colors and sweeps; a dirty-row set tracks
which ``phi`` rows changed at any barrier, and each color re-GEMMs
only its friends' stale rows, so GEMM work scales with state churn
rather than with edges-times-colors.  The "-1" own-contribution
exclusion folds in exactly: subtracting this edge's assignment from
``wj`` shifts ``(L @ wj)[x]`` by ``-L[x, y_old]``, a rank-one
correction applied per stale edge.  The joint ``(x, y)`` draw then
proceeds in two exact stages -- ``x`` from its marginal
``wi[x] * t[x]``, ``y`` from the conditional ``L[x, cand_j] * wj`` --
which realizes the same joint distribution as the pairwise inverse-CDF
draw while consuming three pool uniforms per relationship (selector,
x, y) instead of two.

Randomness is drawn as one flat pool per sweep phase (three uniforms
per following relationship, two per tweeting one, consumed by edge
id), so the chain is deterministic given ``seed`` regardless of color
count, chunking or thread scheduling.  The chain it realizes is
*statistically* equivalent to the exact engines -- R-hat,
posterior-summary and predicted-home agreement tests quantify the
approximation -- but not bit-identical, with one exception: a world
whose conflict graph is edgeless (e.g. the MLP_C ablation: no
following edges) colors to a single block, and the engine then runs
the inherited exact vectorized sweeps unchanged.  That golden
cross-check anchors the relaxed engine to the oracle at small scale.

Index arenas use ``int32`` wherever the addressed range allows
(candidate-copy slots, ``phi``/``H`` cells): those arenas are the
dominant static allocation at scale and halving their width is part of
the dtype audit that lets 500k-user fits stay in memory.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.gibbs import NO_ASSIGNMENT
from repro.engine.partition import UserPartition, color_users
from repro.engine.vectorized import VectorizedGibbsSampler
from repro.obs.hooks import partition_observer


def _indptr(lengths: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums: segment lengths -> CSR-style offsets."""
    out = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=out[1:])
    return out


def _ragged_arange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(start, start + length)`` per segment."""
    indptr = _indptr(lengths)
    total = int(indptr[-1])
    out = np.arange(total, dtype=np.int64)
    out -= np.repeat(indptr[:-1], lengths)
    out += np.repeat(starts, lengths)
    return out


def _balanced_bounds(weights: np.ndarray, parts: int) -> list[tuple[int, int]]:
    """Split ``range(len(weights))`` into <= ``parts`` contiguous runs
    of roughly equal total weight (never splitting an element)."""
    n = weights.size
    if n == 0:
        return []
    parts = max(1, min(parts, n))
    cum = np.cumsum(weights, dtype=np.float64)
    targets = cum[-1] * (np.arange(1, parts) / parts)
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.unique(np.concatenate(([0], cuts, [n])))
    return list(zip(bounds[:-1].tolist(), bounds[1:].tolist()))


class _FollowBlock:
    """Static geometry of one (color, chunk) run of following edges."""

    __slots__ = (
        "eids", "i", "j", "gamma_sum_i", "gamma_sum_j", "ni", "nj",
        "wi_indptr", "wj_indptr", "src_i", "src_j",
        "phi_src_i", "phi_src_j", "h_src",
    )


class _TweetBlock:
    """Static geometry of one (color, chunk) run of tweeting edges."""

    __slots__ = (
        "kids", "i", "gamma_sum", "indptr", "phi_src", "gamma",
        "cand", "tl_num", "tl_den", "p_noise",
    )


class PartitionedGibbsSampler(VectorizedGibbsSampler):
    """Color-parallel :class:`~repro.core.gibbs.GibbsSampler` drop-in.

    Construction, initialization, scheduling and estimation are
    inherited; the two sweep kernels batch whole conflict-free colors.
    When the conflict graph is edgeless (one color) the engine
    delegates to the inherited exact vectorized sweeps, reproducing the
    oracle chain bit-for-bit.  The externally visible state contract
    matches the vectorized engine: counts and assignments are coherent
    between sweeps; assignment arrays must not be mutated externally.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._n_jobs = max(1, int(getattr(self.params, "n_jobs", 1)))
        self._part: UserPartition | None = None
        self._part_layout_ready = False
        self._part_kernel_law = None
        self._ppos_dirty = True
        self._pexecutor = None
        self._h_all: np.ndarray | None = None

    # -- partition ------------------------------------------------------

    @property
    def partition(self) -> UserPartition:
        """The user coloring (built lazily, once per sampler)."""
        if self._part is None:
            self._part = color_users(
                self.world.n_users, self._followers, self._friends
            )
        return self._part

    @property
    def delegates_to_exact(self) -> bool:
        """True when the 1-color fallback runs the exact chain."""
        return self.partition.n_colors == 1

    def initialize(self) -> None:
        """Reset sampler state; marks packed positions dirty."""
        super().initialize()
        self._ppos_dirty = True
        if self._h_all is not None:
            self._h_dirty[:] = True

    def close(self) -> None:
        """Release worker threads (idempotent; also runs on GC)."""
        if self._pexecutor is not None:
            self._pexecutor.shutdown(wait=False)
            self._pexecutor = None

    def __del__(self):  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    @property
    def _pool(self):
        if self._pexecutor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pexecutor = ThreadPoolExecutor(
                max_workers=self._n_jobs, thread_name_prefix="gibbs-part"
            )
        return self._pexecutor

    # -- layout ---------------------------------------------------------

    def _ensure_partition_layout(self) -> None:
        if not self._part_layout_ready:
            self._build_partition_layout()
        if self._part_kernel_law is not self.following_model.law:
            self._build_partition_kernels()
        if self._ppos_dirty:
            self._rebuild_partition_positions()

    def _build_partition_layout(self) -> None:
        """Per-(color, chunk) static index arenas for both sweep phases."""
        if len(self._followers) and bool(
            np.any(self._followers == self._friends)
        ):
            # The per-edge weight copies assume the two endpoints are
            # distinct users (the generators never emit self-follows,
            # but from_edge_arrays worlds could).
            raise ValueError(
                "engine=partitioned does not support self-follow edges; "
                "use engine=vectorized for such worlds"
            )
        part = self.partition
        pack = self.priors.packed()
        self._poffsets = pack.offsets
        self._pcounts = np.diff(pack.offsets)
        self._pflat_cand = pack.flat_candidates
        self._pflat_gamma = pack.flat_gamma
        self._pn_loc = self.state.user_counts.phi.shape[1]
        self._pn_ven = self.world.n_venues
        self._pphi_flat = self.state.user_counts.phi.reshape(-1)
        # Candidate-slot / phi-cell / H-cell indices fit int32 for any
        # world below ~4B cells; fall back to int64 past that.
        self._pidx_t = (
            np.int32
            if max(
                self._pflat_cand.size,
                self.world.n_users * self._pn_loc,
            ) < 2**31
            else np.int64
        )
        self._x_idx = np.full(len(self._followers), -1, dtype=np.int32)
        self._y_idx = np.full(len(self._followers), -1, dtype=np.int32)
        self._z_idx = np.full(len(self._tw_users), -1, dtype=np.int32)

        colors = part.colors
        if len(self._followers):
            # The per-user H = W @ L cache behind the GEMM follow sweep,
            # plus the stale-row set driving incremental refresh.
            self._h_all = np.zeros(
                (self.world.n_users, self._pn_loc), dtype=np.float64
            )
            self._h_flat = self._h_all.reshape(-1)
            self._h_dirty = np.ones(self.world.n_users, dtype=bool)
            ecolor = colors[self._followers]
            self._f_color_friends = [
                np.unique(self._friends[ecolor == c])
                for c in range(part.n_colors)
            ]
        else:
            self._f_color_friends = [
                np.empty(0, dtype=np.int64) for _ in range(part.n_colors)
            ]
        self._f_color_blocks = self._grouped_blocks(
            colors, self._followers, part.n_colors,
            self._pcounts[self._followers] + self._pcounts[self._friends]
            if len(self._followers) else np.empty(0, dtype=np.int64),
            self._build_follow_block,
        )
        self._t_color_blocks = self._grouped_blocks(
            colors, self._tw_users, part.n_colors,
            self._pcounts[self._tw_users]
            if len(self._tw_users) else np.empty(0, dtype=np.int64),
            self._build_tweet_block,
        )
        self._part_layout_ready = True

    def _grouped_blocks(self, colors, owners, n_colors, work, build):
        """Group edges by owner color, chunk each color by ``work``."""
        per_color: list[list] = [[] for _ in range(n_colors)]
        if len(owners) == 0:
            return per_color
        ecolor = colors[owners]
        order = np.argsort(ecolor, kind="stable")
        bounds = np.searchsorted(
            ecolor[order], np.arange(n_colors + 1), side="left"
        )
        for c in range(n_colors):
            eids = order[bounds[c]:bounds[c + 1]]
            if eids.size == 0:
                continue
            for lo, hi in _balanced_bounds(work[eids], self._n_jobs):
                per_color[c].append(build(eids[lo:hi]))
        return per_color

    def _build_follow_block(self, eids: np.ndarray) -> _FollowBlock:
        offsets, counts = self._poffsets, self._pcounts
        n_loc = self._pn_loc
        idx_t = self._pidx_t
        b = _FollowBlock()
        b.eids = eids
        i = self._followers[eids]
        j = self._friends[eids]
        b.i, b.j = i, j
        b.gamma_sum_i = self.priors.gamma_sum[i]
        b.gamma_sum_j = self.priors.gamma_sum[j]
        ni, nj = counts[i], counts[j]
        b.ni, b.nj = ni, nj
        b.wi_indptr = _indptr(ni)
        b.wj_indptr = _indptr(nj)
        src_i = _ragged_arange(offsets[i], ni)
        src_j = _ragged_arange(offsets[j], nj)
        cand_i = self._pflat_cand[src_i]
        cand_j = self._pflat_cand[src_j]
        b.src_i = src_i.astype(idx_t)
        b.src_j = src_j.astype(idx_t)
        b.phi_src_i = (np.repeat(i, ni) * n_loc + cand_i).astype(idx_t)
        b.phi_src_j = (np.repeat(j, nj) * n_loc + cand_j).astype(idx_t)
        b.h_src = (np.repeat(j, ni) * n_loc + cand_i).astype(idx_t)
        return b

    def _build_tweet_block(self, kids: np.ndarray) -> _TweetBlock:
        offsets, counts = self._poffsets, self._pcounts
        n_loc, n_ven = self._pn_loc, self._pn_ven
        b = _TweetBlock()
        b.kids = kids
        i = self._tw_users[kids]
        v = self._tw_venues[kids]
        b.i = i
        b.gamma_sum = self.priors.gamma_sum[i]
        n = counts[i]
        b.indptr = _indptr(n)
        src = _ragged_arange(offsets[i], n)
        b.cand = self._pflat_cand[src]
        b.gamma = self._pflat_gamma[src]
        b.phi_src = np.repeat(i, n) * n_loc + b.cand
        v_rep = np.repeat(v, n)
        b.tl_num = b.cand * n_ven + v_rep
        b.tl_den = n_loc * n_ven + b.cand
        b.p_noise = self.params.rho_t * (
            self.random_tweeting.venue_probabilities[v]
        )
        return b

    def _build_partition_kernels(self) -> None:
        """Refresh the dense Eq. 1 kernel for the current law."""
        law = self.following_model.law
        self._plaw_matrix = np.ascontiguousarray(
            law(self.following_model.distance_matrix), dtype=np.float64
        )
        self._plaw_flat = self._plaw_matrix.reshape(-1)
        if self._h_all is not None:
            self._h_dirty[:] = True
        self._part_kernel_law = law

    def _rebuild_partition_positions(self) -> None:
        """Candidate-list index of every live assignment (post-init)."""
        cands = self.priors.candidates
        state = self.state
        searchsorted = np.searchsorted
        followers = self._followers.tolist()
        friends = self._friends.tolist()
        for s, (mu, x, y) in enumerate(
            zip(state.mu.tolist(), state.x.tolist(), state.y.tolist())
        ):
            if mu == 0:
                self._x_idx[s] = searchsorted(cands[followers[s]], x)
                self._y_idx[s] = searchsorted(cands[friends[s]], y)
        tw_users = self._tw_users.tolist()
        for k, (nu, z) in enumerate(zip(state.nu.tolist(), state.z.tolist())):
            if nu == 0:
                self._z_idx[k] = searchsorted(cands[tw_users[k]], z)
        self._ppos_dirty = False

    # -- H cache --------------------------------------------------------

    def _refresh_h(self, users: np.ndarray) -> None:
        """Re-GEMM the stale rows of ``H = W @ L`` among ``users``.

        Runs at color start, so the refreshed rows capture exactly the
        frozen-color ``phi`` state every same-color conditional reads.
        """
        rows = users[self._h_dirty[users]]
        if rows.size == 0:
            return
        n_loc = self._pn_loc
        cnt = self._pcounts[rows]
        src = _ragged_arange(self._poffsets[rows], cnt)
        cand = self._pflat_cand[src]
        w = np.zeros((rows.size, n_loc), dtype=np.float64)
        w[np.repeat(np.arange(rows.size), cnt), cand] = (
            self._pphi_flat[np.repeat(rows, cnt) * n_loc + cand]
            + self._pflat_gamma[src]
        )
        self._h_all[rows] = w @ self._plaw_matrix
        self._h_dirty[rows] = False

    # -- block kernels --------------------------------------------------

    def _follow_block_draw(self, b: _FollowBlock, u, p_noise, one_minus_rho):
        """Draw new (mu, x, y) for one block against frozen color state."""
        t0 = time.perf_counter()
        phi_flat = self._pphi_flat
        flat_cand = self._pflat_cand
        flat_gamma = self._pflat_gamma
        law_flat = self._plaw_flat
        totals = self.state.user_counts.totals
        state = self.state
        n_loc = self._pn_loc
        n_edges = b.eids.size

        wi = phi_flat[b.phi_src_i] + flat_gamma[b.src_i]
        t = self._h_flat[b.h_src]
        mu0 = state.mu[b.eids] == 0
        dec = np.flatnonzero(mu0)
        if dec.size:
            # Exclude each edge's own contribution ("-1"): a unit off
            # wi at the x slot, and the rank-one shift -L[x, y_old]
            # across the whole t segment (== removing one unit of wj at
            # y_old from the cached friend row).
            wi[b.wi_indptr[:-1][dec] + self._x_idx[b.eids[dec]]] -= 1.0
            slots = _ragged_arange(b.wi_indptr[:-1][dec], b.ni[dec])
            ci = flat_cand[b.src_i[slots]]
            y_rep = np.repeat(state.y[b.eids[dec]], b.ni[dec])
            t[slots] -= law_flat[ci * n_loc + y_rep]
        ti = totals[b.i] - mu0
        tj = totals[b.j] - mu0

        g = wi * t
        seg_sum = np.add.reduceat(g, b.wi_indptr[:-1])
        denom = (ti + b.gamma_sum_i) * (tj + b.gamma_sum_j)
        p_location = one_minus_rho * seg_sum / denom

        u1 = u[3 * b.eids]
        u2 = u[3 * b.eids + 1]
        u3 = u[3 * b.eids + 2]
        noise = u1 * (p_noise + p_location) < p_noise

        new_mu = np.ones(n_edges, dtype=np.int8)
        new_x = np.full(n_edges, NO_ASSIGNMENT, dtype=np.int64)
        new_y = np.full(n_edges, NO_ASSIGNMENT, dtype=np.int64)
        new_xi = np.full(n_edges, -1, dtype=np.int32)
        new_yi = np.full(n_edges, -1, dtype=np.int32)
        sel = np.flatnonzero(~noise)
        if sel.size:
            if not np.all(np.isfinite(seg_sum[sel])) or np.any(
                seg_sum[sel] <= 0.0
            ):
                raise RuntimeError("degenerate sampling weights in Gibbs sweep")
            # Stage 1: x from its marginal wi[x] * t[x] over cand_i.
            nis = b.ni[sel]
            isel = _indptr(nis)
            gsel = g[_ragged_arange(b.wi_indptr[:-1][sel], nis)]
            cum = np.cumsum(gsel)
            base = np.concatenate(([0.0], cum))[isel[:-1]]
            tot = cum[isel[1:] - 1] - base
            flat = np.searchsorted(cum, base + u2[sel] * tot, side="right")
            flat = np.minimum(flat, isel[1:] - 1)
            row = flat - isel[:-1]
            win = b.wi_indptr[:-1][sel] + row
            xs = flat_cand[b.src_i[win]]
            new_mu[sel] = 0
            new_xi[sel] = row
            new_x[sel] = xs
            # Stage 2: y | x from L[x, cand_j] * wj over cand_j.  The
            # same joint as the pairwise draw, by the chain rule.
            njs = b.nj[sel]
            jsel = _indptr(njs)
            slots_j = _ragged_arange(b.wj_indptr[:-1][sel], njs)
            src_j = b.src_j[slots_j]
            wjs = phi_flat[b.phi_src_j[slots_j]] + flat_gamma[src_j]
            seldec = np.flatnonzero(mu0[sel])
            if seldec.size:
                wjs[
                    jsel[:-1][seldec]
                    + self._y_idx[b.eids[sel[seldec]]]
                ] -= 1.0
            cj = flat_cand[src_j]
            wy = law_flat[np.repeat(xs, njs) * n_loc + cj]
            wy *= wjs
            cum2 = np.cumsum(wy)
            base2 = np.concatenate(([0.0], cum2))[jsel[:-1]]
            tot2 = cum2[jsel[1:] - 1] - base2
            flat2 = np.searchsorted(cum2, base2 + u3[sel] * tot2, side="right")
            flat2 = np.minimum(flat2, jsel[1:] - 1)
            new_yi[sel] = flat2 - jsel[:-1]
            new_y[sel] = cj[flat2]
        return time.perf_counter() - t0, (new_mu, new_x, new_y, new_xi, new_yi)

    def _apply_follow_result(self, b: _FollowBlock, result) -> None:
        """Deferred barrier merge: deterministic, main-thread only."""
        new_mu, new_x, new_y, new_xi, new_yi = result
        phi_flat = self._pphi_flat
        totals = self.state.user_counts.totals
        state = self.state
        n_loc = self._pn_loc
        eids = b.eids
        old_mu = state.mu[eids]
        old_x = state.x[eids]
        old_y = state.y[eids]
        dec = np.flatnonzero(old_mu == 0)
        if dec.size:
            np.subtract.at(phi_flat, b.i[dec] * n_loc + old_x[dec], 1.0)
            np.subtract.at(phi_flat, b.j[dec] * n_loc + old_y[dec], 1.0)
            np.subtract.at(totals, b.i[dec], 1.0)
            np.subtract.at(totals, b.j[dec], 1.0)
            self._h_dirty[b.i[dec]] = True
            self._h_dirty[b.j[dec]] = True
        inc = np.flatnonzero(new_mu == 0)
        if inc.size:
            np.add.at(phi_flat, b.i[inc] * n_loc + new_x[inc], 1.0)
            np.add.at(phi_flat, b.j[inc] * n_loc + new_y[inc], 1.0)
            np.add.at(totals, b.i[inc], 1.0)
            np.add.at(totals, b.j[inc], 1.0)
            self._h_dirty[b.i[inc]] = True
            self._h_dirty[b.j[inc]] = True
        state.mu[eids] = new_mu
        state.x[eids] = new_x
        state.y[eids] = new_y
        self._x_idx[eids] = new_xi
        self._y_idx[eids] = new_yi

    def _tweet_block_draw(self, b: _TweetBlock, u, one_minus_rho):
        """Draw new (nu, z) for one block against frozen color state."""
        t0 = time.perf_counter()
        phi_flat = self._pphi_flat
        totals = self.state.user_counts.totals
        state = self.state
        tl = self._tl_arena
        delta = self.tweeting_model.delta
        delta_sum = delta * self._pn_ven
        n_edges = b.kids.size

        wi = phi_flat[b.phi_src] + b.gamma
        num = tl[b.tl_num] + delta
        den = tl[b.tl_den] + delta_sum
        nu0 = state.nu[b.kids] == 0
        dec = np.flatnonzero(nu0)
        if dec.size:
            slots = b.indptr[:-1][dec] + self._z_idx[b.kids[dec]]
            wi[slots] -= 1.0
            num[slots] -= 1.0
            den[slots] -= 1.0
        ti = totals[b.i] - nu0

        w = wi * num
        w /= den
        seg_sum = np.add.reduceat(w, b.indptr[:-1])
        p_location = one_minus_rho * seg_sum / (ti + b.gamma_sum)

        u1 = u[2 * b.kids]
        u2 = u[2 * b.kids + 1]
        noise = u1 * (b.p_noise + p_location) < b.p_noise

        new_nu = np.ones(n_edges, dtype=np.int8)
        new_z = np.full(n_edges, NO_ASSIGNMENT, dtype=np.int64)
        new_zi = np.full(n_edges, -1, dtype=np.int32)
        sel = np.flatnonzero(~noise)
        if sel.size:
            sums = seg_sum[sel]
            if not np.all(np.isfinite(sums)) or np.any(sums <= 0.0):
                raise RuntimeError("degenerate sampling weights in Gibbs sweep")
            cum = np.cumsum(w)
            starts = b.indptr[:-1][sel]
            base = np.concatenate(([0.0], cum))[starts]
            flat = np.searchsorted(cum, base + u2[sel] * sums, side="right")
            flat = np.minimum(flat, b.indptr[1:][sel] - 1)
            zi = flat - starts
            new_nu[sel] = 0
            new_zi[sel] = zi
            new_z[sel] = b.cand[flat]
        return time.perf_counter() - t0, (new_nu, new_z, new_zi)

    def _apply_tweet_result(self, b: _TweetBlock, result) -> None:
        new_nu, new_z, new_zi = result
        phi_flat = self._pphi_flat
        totals = self.state.user_counts.totals
        state = self.state
        tl = self._tl_arena
        n_loc, n_ven = self._pn_loc, self._pn_ven
        tl_total_base = n_loc * n_ven
        kids = b.kids
        v = self._tw_venues[kids]
        old_nu = state.nu[kids]
        old_z = state.z[kids]
        dec = np.flatnonzero(old_nu == 0)
        if dec.size:
            np.subtract.at(phi_flat, b.i[dec] * n_loc + old_z[dec], 1.0)
            np.subtract.at(totals, b.i[dec], 1.0)
            np.subtract.at(tl, old_z[dec] * n_ven + v[dec], 1.0)
            np.subtract.at(tl, tl_total_base + old_z[dec], 1.0)
        inc = np.flatnonzero(new_nu == 0)
        if inc.size:
            np.add.at(phi_flat, b.i[inc] * n_loc + new_z[inc], 1.0)
            np.add.at(totals, b.i[inc], 1.0)
            np.add.at(tl, new_z[inc] * n_ven + v[inc], 1.0)
            np.add.at(tl, tl_total_base + new_z[inc], 1.0)
        if self._h_all is not None:
            if dec.size:
                self._h_dirty[b.i[dec]] = True
            if inc.size:
                self._h_dirty[b.i[inc]] = True
        state.nu[kids] = new_nu
        state.z[kids] = new_z
        self._z_idx[kids] = new_zi

    # -- color scheduling -----------------------------------------------

    def _run_color(self, blocks: Sequence, draw, apply) -> tuple[float, ...]:
        """Compute all chunks of one color (parallel when n_jobs > 1),
        then merge at the barrier in deterministic chunk order."""
        if self._n_jobs > 1 and len(blocks) > 1:
            results = list(self._pool.map(draw, blocks))
        else:
            results = [draw(b) for b in blocks]
        for b, (_seconds, payload) in zip(blocks, results):
            apply(b, payload)
        return tuple(seconds for seconds, _payload in results)

    # -- sweeps ---------------------------------------------------------

    def _sweep_following(self) -> int:
        if self.delegates_to_exact:
            return super()._sweep_following()
        self._ensure_partition_layout()
        state = self.state
        n = len(self._followers)
        if n == 0:
            return 0
        old_mu = state.mu.copy()
        old_x = state.x.copy()
        old_y = state.y.copy()
        u = self.rng.random(3 * n)
        p_noise = self.params.rho_f * self.random_following.probability()
        one_minus_rho = 1.0 - self.params.rho_f
        observer = partition_observer()
        n_colors = self.partition.n_colors
        for c, blocks in enumerate(self._f_color_blocks):
            if not blocks:
                continue
            start = time.perf_counter()
            self._refresh_h(self._f_color_friends[c])
            worker_seconds = self._run_color(
                blocks,
                lambda b: self._follow_block_draw(b, u, p_noise, one_minus_rho),
                self._apply_follow_result,
            )
            if observer is not None:
                observer(
                    "following", c, n_colors,
                    time.perf_counter() - start, worker_seconds,
                )
        return int(
            np.count_nonzero(state.mu != old_mu)
            + np.count_nonzero(state.x != old_x)
            + np.count_nonzero(state.y != old_y)
        )

    def _sweep_tweeting(self) -> int:
        if self.delegates_to_exact:
            return super()._sweep_tweeting()
        self._ensure_partition_layout()
        state = self.state
        n = len(self._tw_users)
        if n == 0:
            return 0
        old_nu = state.nu.copy()
        old_z = state.z.copy()
        u = self.rng.random(2 * n)
        one_minus_rho = 1.0 - self.params.rho_t
        observer = partition_observer()
        n_colors = self.partition.n_colors
        for c, blocks in enumerate(self._t_color_blocks):
            if not blocks:
                continue
            start = time.perf_counter()
            worker_seconds = self._run_color(
                blocks,
                lambda b: self._tweet_block_draw(b, u, one_minus_rho),
                self._apply_tweet_result,
            )
            if observer is not None:
                observer(
                    "tweeting", c, n_colors,
                    time.perf_counter() - start, worker_seconds,
                )
        return int(
            np.count_nonzero(state.nu != old_nu)
            + np.count_nonzero(state.z != old_z)
        )
