"""Multi-chain inference: K independent chains, one pooled posterior.

A single Gibbs chain gives point estimates whose quality silently
depends on mixing.  :class:`ChainPool` runs ``K`` chains of the full
inference schedule (initial power-law fit, burn-in, Gibbs-EM refits,
accumulation -- see :func:`repro.core.gibbs_em.run_inference`) with
deterministic per-chain seeds, optionally fanned out over processes,
and combines them:

- **pooled theta counts**: the post-burn-in mean count matrices are
  averaged across chains, which is exactly averaging over ``K`` times
  as many posterior draws;
- **pooled explanations**: per-edge assignment tallies are summed, so
  modal explanations draw support from every chain;
- **cross-chain convergence**: Gelman-Rubin R-hat
  (:func:`repro.core.convergence.potential_scale_reduction`) over the
  post-burn-in per-sweep statistics, the multi-chain complement of the
  paper's single-chain Fig. 5 criterion.

Chain results are trimmed to plain arrays before crossing process
boundaries; the pool never pickles a live sampler.  Per-chain seeds are
``base_seed + SEED_STRIDE * chain_index``, so chain 0 reproduces the
equivalent single-chain run bit for bit and a restarted pool reproduces
itself.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ConvergenceTrace, potential_scale_reduction
from repro.core.gibbs_em import run_inference
from repro.core.params import MLPParams
from repro.core.state import EdgeAssignmentTally
from repro.data.columnar import ColumnarWorld, compile_world
from repro.data.model import Dataset
from repro.mathx.powerlaw import PowerLaw

#: Seed spacing between chains.  A fixed odd stride keeps the mapping
#: transparent and reproducible (chain 0 *is* the single-chain run).
SEED_STRIDE = 7919

#: Per-sweep statistics R-hat can be computed over.
RHAT_STATISTICS = (
    "changed_fraction",
    "noise_following_fraction",
    "noise_tweeting_fraction",
)


def chain_seeds(base_seed: int, n_chains: int) -> list[int]:
    """The deterministic seed schedule of a pool."""
    return [base_seed + SEED_STRIDE * c for c in range(n_chains)]


@dataclass(frozen=True, slots=True)
class ChainResult:
    """One chain's contribution, trimmed for cheap pickling."""

    chain_index: int
    seed: int
    mean_theta_counts: np.ndarray
    trace: ConvergenceTrace
    law_history: tuple[PowerLaw, ...]
    edge_tally: EdgeAssignmentTally | None
    #: Final assignment arrays (mu, x, y, nu, z) -- the chain's last
    #: state, used by determinism tests and diagnostics.
    final_state: dict[str, np.ndarray]
    #: Post-burn-in mean of the venue-side counts ``phi_{l,v}`` -- the
    #: chain's frozen TL table (serving fold-in pools these).
    mean_venue_counts: np.ndarray | None = None


def _run_chain(payload) -> ChainResult:
    """Worker: run one full inference and trim the result.

    Module-level so it pickles under every multiprocessing start
    method.  ``world`` is the compiled :class:`ColumnarWorld` (compiled
    once by the pool, shared read-only by every chain -- across
    processes only the flat arrays travel, never the object graph);
    ``priors`` is the shared, seed-independent prior structure.  The
    power-law fit stays per-chain because it samples with the chain's
    seed.
    """
    world, params, priors, chain_index, seed = payload
    chain_params = params.with_overrides(seed=seed, n_chains=1)
    run = run_inference(world, chain_params, priors=priors)
    sampler = run.sampler
    state = sampler.state
    return ChainResult(
        chain_index=chain_index,
        seed=seed,
        mean_theta_counts=state.mean_theta_counts(),
        trace=run.trace,
        law_history=tuple(run.law_history),
        edge_tally=state.edge_tally,
        final_state={
            "mu": state.mu.copy(),
            "x": state.x.copy(),
            "y": state.y.copy(),
            "nu": state.nu.copy(),
            "z": state.z.copy(),
        },
        mean_venue_counts=run.mean_venue_counts(),
    )


@dataclass(frozen=True, slots=True)
class PooledPosterior:
    """Aggregated output of a :class:`ChainPool` run."""

    chains: tuple[ChainResult, ...]
    burn_in: int

    @property
    def n_chains(self) -> int:
        """Number of chains pooled."""
        return len(self.chains)

    def pooled_mean_counts(self) -> np.ndarray:
        """Cross-chain average of the mean theta count matrices."""
        stacked = np.stack([c.mean_theta_counts for c in self.chains])
        return stacked.mean(axis=0)

    def pooled_mean_venue_counts(self) -> np.ndarray | None:
        """Cross-chain average of the mean venue count matrices.

        None when any chain predates the venue accumulator (old
        artifacts round-tripped through the serving store).
        """
        tables = [c.mean_venue_counts for c in self.chains]
        if any(t is None for t in tables):
            return None
        return np.stack(tables).mean(axis=0)

    def merged_edge_tally(self) -> EdgeAssignmentTally | None:
        """Sum of every chain's per-edge tallies (None if untracked)."""
        tallies = [c.edge_tally for c in self.chains]
        if any(t is None for t in tallies):
            return None
        merged = tallies[0].copy()
        for t in tallies[1:]:
            merged.merge(t)
        return merged

    def r_hat(self, statistic: str = "noise_following_fraction") -> float:
        """R-hat over a post-burn-in per-sweep statistic.

        Returns NaN when the schedule leaves fewer than two post-burn-in
        draws per chain (legal but degenerate: the statistic is
        undefined, and a finished fit should not be discarded over it).
        """
        if statistic not in RHAT_STATISTICS:
            raise ValueError(
                f"unknown statistic {statistic!r}; "
                f"expected one of {RHAT_STATISTICS}"
            )
        series = []
        for chain in self.chains:
            values = getattr(chain.trace, statistic + "s")()
            series.append(values[self.burn_in:])
        if min(len(s) for s in series) < 2:
            return float("nan")
        return potential_scale_reduction(series)

    def convergence_summary(self) -> dict[str, float]:
        """R-hat for every tracked statistic, keyed by name."""
        return {stat: self.r_hat(stat) for stat in RHAT_STATISTICS}


class ChainPool:
    """Run K independent chains and pool their posteriors.

    Parameters
    ----------
    dataset:
        The profiling problem: a :class:`Dataset` or an
        already-compiled :class:`~repro.data.columnar.ColumnarWorld`.
        The pool compiles at most once (memoized) and shares the
        compiled world read-only across all chains -- worker processes
        receive only the flat arrays, not the object graph.
    params:
        Base hyper-parameters.  ``params.seed`` anchors the seed
        schedule, ``params.engine`` picks the sweep implementation for
        every chain, and ``params.n_chains`` is the default chain
        count.
    n_chains:
        Override for the chain count (>= 1).
    processes:
        Worker processes; 0 or 1 runs the chains serially in-process
        (the default, and what tests use for determinism checks), more
        fans out via ``multiprocessing``.  Results are independent of
        this value -- parallelism is an execution detail, never a
        semantic one.
    priors:
        Optional prebuilt :class:`~repro.core.priors.UserPriors`.
        Priors are deterministic in ``(dataset, params)`` and
        seed-independent, so the pool builds them once and shares them
        with every chain rather than rebuilding per chain.
    """

    def __init__(
        self,
        dataset: Dataset | ColumnarWorld,
        params: MLPParams,
        n_chains: int | None = None,
        processes: int = 1,
        priors=None,
    ):
        self.world = compile_world(dataset)
        # Strong ref to the input dataset (memo and backref are weak):
        # `.dataset` must keep answering with the original object graph.
        self._source_dataset = dataset if isinstance(dataset, Dataset) else None
        self.params = params
        self.priors = priors
        self.n_chains = params.n_chains if n_chains is None else n_chains
        if self.n_chains < 1:
            raise ValueError("n_chains must be >= 1")
        if processes < 0:
            raise ValueError("processes must be >= 0")
        self.processes = min(max(processes, 1), self.n_chains)

    @property
    def dataset(self) -> Dataset:
        """The object-graph view (materialized from the world if needed)."""
        if self._source_dataset is not None:
            return self._source_dataset
        return self.world.require_dataset()

    def run(self) -> PooledPosterior:
        """Execute every chain and aggregate."""
        priors = self.priors
        if priors is None:
            from repro.core.priors import build_user_priors

            priors = build_user_priors(self.world, self.params)
        payloads = [
            (self.world, self.params, priors, c, seed)
            for c, seed in enumerate(chain_seeds(self.params.seed, self.n_chains))
        ]
        if self.processes <= 1:
            results = [_run_chain(p) for p in payloads]
        else:
            with multiprocessing.get_context().Pool(self.processes) as pool:
                results = pool.map(_run_chain, payloads)
        results.sort(key=lambda r: r.chain_index)
        return PooledPosterior(
            chains=tuple(results), burn_in=self.params.burn_in
        )
