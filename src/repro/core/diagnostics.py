"""Model diagnostics: held-out likelihood, noise calibration, profiles.

The paper evaluates MLP extrinsically (prediction accuracy); a
production library also needs *intrinsic* diagnostics:

- :func:`held_out_following_log_likelihood` /
  :func:`held_out_tweeting_log_likelihood` -- average per-relationship
  log-likelihood of relationships *not* used in fitting, under the
  fitted mixture.  The canonical way to compare hyper-parameter
  settings without ground-truth labels.
- :func:`noise_detection_report` -- how well the posterior noise
  probabilities separate true noise relationships from location-based
  ones (AUC + rates), computable on generator worlds where noise
  ground truth exists.
- :func:`profile_concentration_report` -- entropy statistics of the
  estimated profiles: a healthy fit concentrates single-location users
  and keeps multi-location users multi-modal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import MLPResult
from repro.data.model import FollowingEdge, TweetingEdge
from repro.mathx.distributions import entropy


def _profile_vector(result: MLPResult, user_id: int) -> tuple[np.ndarray, np.ndarray]:
    """(locations, probabilities) arrays of a user's fitted profile."""
    entries = result.profiles[user_id].entries
    locs = np.array([l for l, _ in entries], dtype=np.int64)
    probs = np.array([p for _, p in entries], dtype=np.float64)
    return locs, probs


def following_log_likelihood(
    result: MLPResult, edges: list[FollowingEdge]
) -> float:
    """Mean log-likelihood of following edges under the fitted mixture.

    ``P(f) = rho_f * FR + (1 - rho_f) * E_{x~theta_i, y~theta_j}[
    beta * d(x,y)**alpha]`` -- the same quantity the sampler's blocked
    selector computes, evaluated at the posterior-mean profiles.
    """
    if not edges:
        raise ValueError("no edges to score")
    dataset = result.dataset
    params = result.params
    law = result.fitted_law
    dmat = dataset.gazetteer.distance_matrix
    n = dataset.n_users
    fr = dataset.n_following / float(n * n)
    total = 0.0
    for edge in edges:
        locs_i, probs_i = _profile_vector(result, edge.follower)
        locs_j, probs_j = _profile_vector(result, edge.friend)
        kernel = law(dmat[locs_i[:, None], locs_j[None, :]])
        expected = float(probs_i @ kernel @ probs_j)
        p = params.rho_f * fr + (1.0 - params.rho_f) * expected
        total += np.log(max(p, 1e-300))
    return total / len(edges)


def tweeting_log_likelihood(
    result: MLPResult, mentions: list[TweetingEdge]
) -> float:
    """Mean log-likelihood of venue mentions under the fitted mixture.

    Uses the smoothed psi estimated from the tweet-side counts of the
    *fitted* model (reconstructed from the tweet explanations) and the
    empirical TR.
    """
    if not mentions:
        raise ValueError("no mentions to score")
    dataset = result.dataset
    params = result.params
    n_venues = len(dataset.gazetteer.venue_vocabulary)
    n_loc = len(dataset.gazetteer)
    # Rebuild psi counts from the modal tweet assignments.
    counts = np.zeros((n_loc, n_venues))
    for expl in result.tweet_explanations:
        if expl.noise_probability < 0.5:
            counts[expl.z, expl.venue_id] += 1.0
    totals = counts.sum(axis=1)
    delta = params.delta
    tr = dataset.venue_mention_counts
    tr = (tr + 1.0) / (tr.sum() + tr.size)
    total = 0.0
    for mention in mentions:
        locs, probs = _profile_vector(result, mention.user)
        psi = (counts[locs, mention.venue_id] + delta) / (
            totals[locs] + delta * n_venues
        )
        expected = float(probs @ psi)
        p = params.rho_t * tr[mention.venue_id] + (1.0 - params.rho_t) * expected
        total += np.log(max(p, 1e-300))
    return total / len(mentions)


@dataclass(frozen=True, slots=True)
class NoiseDetectionReport:
    """Separation of true noise from location-based relationships."""

    auc: float
    mean_noise_posterior_on_noise: float
    mean_noise_posterior_on_clean: float
    n_noise: int
    n_clean: int


def _auc(scores_pos: np.ndarray, scores_neg: np.ndarray) -> float:
    """Mann-Whitney AUC: P(score_pos > score_neg) + 0.5 P(tie)."""
    if scores_pos.size == 0 or scores_neg.size == 0:
        raise ValueError("need both positive and negative examples")
    order = np.concatenate([scores_pos, scores_neg])
    ranks = np.empty_like(order)
    sort_idx = np.argsort(order, kind="mergesort")
    sorted_vals = order[sort_idx]
    # average ranks for ties
    avg_ranks = np.empty_like(sorted_vals)
    i = 0
    while i < len(sorted_vals):
        j = i
        while j + 1 < len(sorted_vals) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        avg_ranks[i : j + 1] = (i + j) / 2.0 + 1.0
        i = j + 1
    ranks[sort_idx] = avg_ranks
    r_pos = ranks[: scores_pos.size].sum()
    n_pos, n_neg = scores_pos.size, scores_neg.size
    return float((r_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def noise_detection_report(result: MLPResult) -> NoiseDetectionReport:
    """Score how well noise posteriors identify true noise edges.

    Requires generator ground truth (``is_noise`` flags) and tracked
    edge assignments.
    """
    dataset = result.dataset
    if not result.explanations:
        raise ValueError("fit with track_edge_assignments=True first")
    noise_scores, clean_scores = [], []
    for expl in result.explanations:
        flag = dataset.following[expl.edge_index].is_noise
        if flag is None:
            continue
        (noise_scores if flag else clean_scores).append(expl.noise_probability)
    if not noise_scores or not clean_scores:
        raise ValueError("dataset lacks noise ground truth")
    pos = np.array(noise_scores)
    neg = np.array(clean_scores)
    return NoiseDetectionReport(
        auc=_auc(pos, neg),
        mean_noise_posterior_on_noise=float(pos.mean()),
        mean_noise_posterior_on_clean=float(neg.mean()),
        n_noise=pos.size,
        n_clean=neg.size,
    )


@dataclass(frozen=True, slots=True)
class ProfileConcentrationReport:
    """Entropy statistics of fitted profiles by true location count."""

    mean_entropy_single: float
    mean_entropy_multi: float
    mean_effective_locations_single: float
    mean_effective_locations_multi: float


def profile_concentration_report(result: MLPResult) -> ProfileConcentrationReport:
    """Compare profile entropy of single- vs multi-location users.

    A sound fit gives multi-location users systematically more spread
    (higher entropy / more effective locations) than single-location
    users.  Requires generator ground truth.
    """
    dataset = result.dataset
    if not dataset.has_ground_truth:
        raise ValueError("requires generator ground truth")
    ent_single, ent_multi = [], []
    for user in dataset.users:
        _locs, probs = _profile_vector(result, user.user_id)
        h = entropy(probs)
        (ent_multi if user.is_multi_location else ent_single).append(h)
    if not ent_single or not ent_multi:
        raise ValueError("need both single- and multi-location users")
    single = np.array(ent_single)
    multi = np.array(ent_multi)
    return ProfileConcentrationReport(
        mean_entropy_single=float(single.mean()),
        mean_entropy_multi=float(multi.mean()),
        mean_effective_locations_single=float(np.exp(single).mean()),
        mean_effective_locations_multi=float(np.exp(multi).mean()),
    )
