"""Tweeting models: location-based TL (Eq. 2, collapsed) and random TR.

TL is a per-location multinomial ``psi_l`` over venue names with a
symmetric Dirichlet(delta) prior.  In the collapsed Gibbs sampler
``psi`` is integrated out, so TL lives as count matrices
``phi_{l,v}`` updated incrementally; this module owns those counts and
the smoothed probability reads of Eq. 6/9.

TR is the empirical random tweeting model of Sec. 4.2:
``p(t<i,j> | TR) = (# mentions of v_j) / K``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.model import Dataset


class CollapsedTweetingModel:
    """TL with psi integrated out: venue-per-location count matrix.

    ``phi[l, v]`` counts location-based (nu=0) tweeting relationships
    currently assigned ``z = l`` with venue ``v``; ``totals[l]`` is the
    row sum.  Reads apply Dirichlet smoothing with the symmetric prior
    ``delta``.
    """

    def __init__(self, n_locations: int, n_venues: int, delta: float):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self._phi = np.zeros((n_locations, n_venues), dtype=np.float64)
        self._totals = np.zeros(n_locations, dtype=np.float64)
        self._delta = delta
        self._delta_sum = delta * n_venues
        self._n_venues = n_venues

    @property
    def delta(self) -> float:
        """The additive smoothing parameter."""
        return self._delta

    def increment(self, location: int, venue: int) -> None:
        """Add one mention to ``phi[location, venue]``."""
        self._phi[location, venue] += 1.0
        self._totals[location] += 1.0

    def decrement(self, location: int, venue: int) -> None:
        """Remove one mention; raises if a count goes negative."""
        self._phi[location, venue] -= 1.0
        self._totals[location] -= 1.0
        if self._phi[location, venue] < -1e-9 or self._totals[location] < -1e-9:
            raise RuntimeError(
                "tweeting count went negative -- increment/decrement mismatch"
            )

    def probability(self, location: int, venue: int) -> float:
        """Smoothed ``P(v | psi_l)`` -- the TL factor of Eq. 6."""
        return (self._phi[location, venue] + self._delta) / (
            self._totals[location] + self._delta_sum
        )

    def probability_over(self, candidates: np.ndarray, venue: int) -> np.ndarray:
        """``P(v | psi_l)`` for an array of candidate locations (Eq. 9)."""
        return (self._phi[candidates, venue] + self._delta) / (
            self._totals[candidates] + self._delta_sum
        )

    def venue_distribution(self, location: int) -> np.ndarray:
        """The full smoothed multinomial psi_l (used in reports/Fig 3b)."""
        return (self._phi[location] + self._delta) / (
            self._totals[location] + self._delta_sum
        )

    def counts_copy(self) -> np.ndarray:
        """Snapshot of the raw count matrix (tests, diagnostics)."""
        return self._phi.copy()

    def add_counts_into(self, accumulator: np.ndarray) -> None:
        """Accumulate a snapshot: ``accumulator += phi``.

        The venue-side analogue of
        :meth:`~repro.core.state.UserLocationCounts.add_into`; the
        inference driver averages these post-burn-in snapshots into the
        frozen psi table that serving fold-in scores against.
        """
        accumulator += self._phi

    def repack_flat(self) -> np.ndarray:
        """Repack counts into one flat arena ``[phi.ravel() | totals]``.

        The vectorized engine reads the Eq. 9 numerator (``phi[l, v]``)
        and denominator (``totals[l]``) of every candidate location in a
        single gather; backing both with one buffer makes that possible.
        After this call the model's own reads and writes go through
        views of the returned arena, so the two stay coherent whichever
        side mutates.  Current values are preserved; safe to call
        mid-run.
        """
        n_cells = self._phi.size
        arena = np.empty(n_cells + self._totals.size, dtype=np.float64)
        arena[:n_cells] = self._phi.reshape(-1)
        arena[n_cells:] = self._totals
        self._phi = arena[:n_cells].reshape(self._phi.shape)
        self._totals = arena[n_cells:]
        return arena


@dataclass(frozen=True, slots=True)
class RandomTweetingModel:
    """TR -- global venue popularity, learned empirically (Sec. 4.2)."""

    venue_probabilities: np.ndarray

    @classmethod
    def from_world(cls, world) -> "RandomTweetingModel":
        """Build from a compiled :class:`~repro.data.columnar.ColumnarWorld`.

        The world's mention counts are integer-accumulated, so the
        probabilities are bit-identical to the object-graph path.
        """
        return cls._from_counts(world.venue_mention_counts)

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "RandomTweetingModel":
        """Build the noise mention model from dataset counts."""
        return cls._from_counts(dataset.venue_mention_counts)

    @classmethod
    def _from_counts(cls, counts: np.ndarray) -> "RandomTweetingModel":
        total = counts.sum()
        if total == 0:
            # No tweets at all: fall back to uniform so probability()
            # stays well-defined (the tweeting side is then inert).
            probs = np.full_like(counts, 1.0 / max(1, counts.size))
        else:
            # Laplace-smooth so unseen venues keep nonzero random-model
            # mass (a zero here would make nu=1 impossible for them).
            probs = (counts + 1.0) / (total + counts.size)
        return cls(venue_probabilities=probs)

    def probability(self, venue: int) -> float:
        """``p(t<i,j> | TR)`` for venue ``v_j``."""
        return float(self.venue_probabilities[venue])
