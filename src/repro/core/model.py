"""The MLP facade: fit a dataset, get profiles and explanations.

This is the public entry point of the core library::

    from repro.core import MLPModel, MLPParams
    result = MLPModel(MLPParams(seed=1)).fit(dataset)
    result.profile_of(42).top_k(2)       # multiple location discovery
    result.predicted_home(42)            # home location prediction
    result.explanations[0]               # relationship explanation

The evaluation's ablations (Sec. 5 "Methods") are parameter presets:
:func:`mlp_u_params` (following network only) and :func:`mlp_c_params`
(tweets only).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ConvergenceTrace
from repro.core.gibbs_em import run_inference
from repro.core.params import MLPParams
from repro.core.priors import UserPriors, build_user_priors
from repro.core.results import EdgeExplanation, LocationProfile, TweetExplanation
from repro.data.columnar import ColumnarWorld, compile_world
from repro.data.model import Dataset
from repro.mathx.powerlaw import PowerLaw


@dataclass
class MLPResult:
    """Everything :meth:`MLPModel.fit` produces."""

    dataset: Dataset
    params: MLPParams
    profiles: tuple[LocationProfile, ...]
    explanations: tuple[EdgeExplanation, ...]
    tweet_explanations: tuple[TweetExplanation, ...]
    trace: ConvergenceTrace
    law_history: tuple[PowerLaw, ...]
    #: Multi-chain runs only: the pooled posterior with per-chain
    #: results and R-hat convergence diagnostics (None otherwise).
    posterior: "object | None" = None
    #: Frozen venue-side posterior table: post-burn-in mean of the
    #: collapsed TL counts ``phi_{l,v}`` (pooled across chains when
    #: ``n_chains > 1``).  Serving fold-in reads psi from it; None on
    #: results produced before this field existed.
    venue_counts: np.ndarray | None = None

    @property
    def fitted_law(self) -> PowerLaw:
        """The final (alpha, beta) power law used by the sampler."""
        return self.law_history[-1]

    def profile_of(self, user_id: int) -> LocationProfile:
        """The user's inferred location profile."""
        return self.profiles[user_id]

    def predicted_home(self, user_id: int) -> int:
        """The user's predicted home: argmax of theta (Sec. 4.5)."""
        home = self.profiles[user_id].home
        if home is None:
            raise ValueError(f"user {user_id} has an empty profile")
        return home

    def predicted_homes(self) -> np.ndarray:
        """Predicted home per user id, as one array."""
        return np.array(
            [self.predicted_home(u) for u in range(len(self.profiles))],
            dtype=np.int64,
        )

    def predicted_locations(self, user_id: int, k: int = 2) -> list[int]:
        """Top-k location set L-hat_ui (multi-location discovery)."""
        return self.profiles[user_id].top_k(k)

    def explanation_of(self, edge_index: int) -> EdgeExplanation:
        """The (x, y) explanation for one following edge."""
        return self.explanations[edge_index]

    def geo_groups(self, user_id: int, radius_miles: float = 100.0) -> dict[int, list[int]]:
        """Group a user's followers by the *user-side* assignment of the
        follow edge -- the "geo groups" application of Sec. 5.3.

        Returns {location id -> follower ids}; a follower lands in the
        group of the profiled user's own assignment (y for incoming
        edges), with nearby assignment locations merged into the first
        group seen within ``radius_miles``.
        """
        gaz = self.dataset.gazetteer
        groups: dict[int, list[int]] = {}
        for expl in self.explanations:
            if expl.friend != user_id:
                continue
            assigned = expl.y
            target = None
            for existing in groups:
                if gaz.distance(existing, assigned) <= radius_miles:
                    target = existing
                    break
            if target is None:
                target = assigned
                groups[target] = []
            groups[target].append(expl.follower)
        return groups


class MLPModel:
    """Multiple Location Profiling model (the paper's contribution).

    Stateless between fits: construct with params, call
    :meth:`fit` on a dataset, receive an :class:`MLPResult`.
    """

    def __init__(self, params: MLPParams | None = None):
        self.params = params or MLPParams()

    def fit(
        self,
        dataset: Dataset | ColumnarWorld,
        metric_callback=None,
    ) -> MLPResult:
        """Run full inference on a dataset (or a pre-compiled world).

        ``metric_callback(sampler, iteration) -> float`` is recorded in
        the convergence trace each sweep (used by the Fig. 5 driver).

        The dataset is compiled exactly once to the shared
        :class:`~repro.data.columnar.ColumnarWorld`; priors,
        calibration, every chain and (through the memo) a later serving
        fold-in all reuse that compiled form.

        With ``params.n_chains > 1`` the fit runs a
        :class:`~repro.engine.pool.ChainPool`: profiles come from the
        cross-chain pooled counts, explanations from the merged edge
        tallies, and ``result.posterior`` carries the per-chain results
        plus R-hat diagnostics.  The reported trace and law history are
        chain 0's (whose seed is the base seed, so a one-chain pool
        reproduces the plain fit exactly).
        """
        world = compile_world(dataset)
        priors = build_user_priors(world, self.params)
        if self.params.n_chains > 1:
            return self._fit_pooled(world, priors, metric_callback)
        run = run_inference(
            world, self.params, priors=priors, metric_callback=metric_callback
        )
        mean_counts = run.sampler.state.mean_theta_counts()
        profiles = self._profiles_from_counts(world, mean_counts, priors)
        explanations, tweet_explanations = self._explanations_from(
            world,
            run.sampler.state.edge_tally,
            lambda: run.sampler.current_home_estimates(),
        )
        return MLPResult(
            dataset=world.require_dataset(),
            params=self.params,
            profiles=profiles,
            explanations=explanations,
            tweet_explanations=tweet_explanations,
            trace=run.trace,
            law_history=tuple(run.law_history),
            venue_counts=run.mean_venue_counts(),
        )

    def _fit_pooled(
        self, world: ColumnarWorld, priors: UserPriors, metric_callback
    ) -> MLPResult:
        """K-chain inference via the engine's ChainPool."""
        # Lazy import: the engine package layers on top of core.
        import os

        from repro.engine.pool import ChainPool

        if metric_callback is not None:
            raise ValueError(
                "metric_callback is not supported with n_chains > 1 "
                "(chains may run in worker processes)"
            )
        pool = ChainPool(
            world,
            self.params,
            processes=min(self.params.n_chains, os.cpu_count() or 1),
            priors=priors,
        )
        posterior = pool.run()
        mean_counts = posterior.pooled_mean_counts()
        profiles = self._profiles_from_counts(world, mean_counts, priors)
        explanations, tweet_explanations = self._explanations_from(
            world,
            posterior.merged_edge_tally(),
            lambda: _homes_from_counts(mean_counts, priors),
        )
        first = posterior.chains[0]
        return MLPResult(
            dataset=world.require_dataset(),
            params=self.params,
            profiles=profiles,
            explanations=explanations,
            tweet_explanations=tweet_explanations,
            trace=first.trace,
            law_history=first.law_history,
            posterior=posterior,
            venue_counts=posterior.pooled_mean_venue_counts(),
        )

    def _profiles_from_counts(
        self, world: ColumnarWorld, mean_counts: np.ndarray, priors: UserPriors
    ) -> tuple[LocationProfile, ...]:
        """Eq. 10 over averaged post-burn-in counts, per user."""
        profiles = []
        for uid in range(world.n_users):
            cand = priors.candidates[uid]
            weights = mean_counts[uid, cand] + priors.gamma[uid]
            probs = weights / weights.sum()
            order = np.lexsort((cand, -probs))
            entries = tuple(
                (int(cand[i]), float(probs[i])) for i in order
            )
            profiles.append(LocationProfile(user_id=uid, entries=entries))
        return tuple(profiles)

    def _explanations_from(
        self, world: ColumnarWorld, tally, homes_factory
    ) -> tuple[tuple[EdgeExplanation, ...], tuple[TweetExplanation, ...]]:
        if tally is None or tally.n_samples == 0:
            return (), ()
        # Fallback for always-noise relationships: the involved users'
        # current modal locations (the best available explanation when
        # the sampler judged the edge random in every sample).
        provisional_homes = homes_factory()
        explanations = []
        if self.params.use_following:
            for s, (follower, friend) in enumerate(
                zip(world.edge_src.tolist(), world.edge_dst.tolist())
            ):
                modal = tally.modal_following(s)
                if modal is None:
                    x, y, support = (
                        int(provisional_homes[follower]),
                        int(provisional_homes[friend]),
                        0.0,
                    )
                else:
                    x, y, support = modal
                explanations.append(
                    EdgeExplanation(
                        edge_index=s,
                        follower=follower,
                        friend=friend,
                        x=x,
                        y=y,
                        support=support,
                        noise_probability=tally.noise_probability_following(s),
                    )
                )
        tweet_explanations = []
        if self.params.use_tweeting:
            for k, (user, venue_id) in enumerate(
                zip(world.tweet_user.tolist(), world.tweet_venue.tolist())
            ):
                modal_z = tally.modal_tweeting(k)
                if modal_z is None:
                    z, support = int(provisional_homes[user]), 0.0
                else:
                    z, support = modal_z
                tweet_explanations.append(
                    TweetExplanation(
                        edge_index=k,
                        user=user,
                        venue_id=venue_id,
                        z=z,
                        support=support,
                        noise_probability=tally.noise_probability_tweeting(k),
                    )
                )
        return tuple(explanations), tuple(tweet_explanations)


def _homes_from_counts(mean_counts: np.ndarray, priors: UserPriors) -> np.ndarray:
    """Argmax-theta home per user from a (pooled) mean count matrix.

    The pooled analogue of
    :meth:`~repro.core.gibbs.GibbsSampler.current_home_estimates`.
    """
    homes = np.empty(priors.n_users, dtype=np.int64)
    for uid in range(priors.n_users):
        cand = priors.candidates[uid]
        weights = mean_counts[uid, cand] + priors.gamma[uid]
        homes[uid] = cand[int(np.argmax(weights))]
    return homes


def mlp_u_params(base: MLPParams | None = None) -> MLPParams:
    """MLP_U: the model restricted to following relationships (Sec. 5)."""
    base = base or MLPParams()
    return base.with_overrides(use_following=True, use_tweeting=False)


def mlp_c_params(base: MLPParams | None = None) -> MLPParams:
    """MLP_C: the model restricted to tweeting relationships (Sec. 5)."""
    base = base or MLPParams()
    return base.with_overrides(use_following=False, use_tweeting=True)
