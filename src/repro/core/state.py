"""Collapsed Gibbs sampler state: assignments and count caches.

The sampler owns five assignment arrays (mu, x, y over following
relationships; nu, z over tweeting relationships -- Table 1's hidden
variables) and the user-side count matrix ``phi_{i,l}`` ("the frequency
that the l-th location has been observed from u_i's location
assignments", Sec. 4.5).  The venue-side counts live in
:class:`repro.core.tweeting.CollapsedTweetingModel`.

Post-burn-in accumulators support the two outputs: summed phi snapshots
for theta estimation (Eq. 10 over averaged counts) and per-edge
assignment tallies for relationship explanation.
"""

from __future__ import annotations

import numpy as np


class UserLocationCounts:
    """``phi_{i,l}``: per-user location-assignment counts, dense.

    Dense ``(N, L)`` float64 is the simplest structure that supports the
    sampler's random-access increment/decrement and vectorized candidate
    reads; at the scales this reproduction runs (N, L in the low
    thousands) it is a few tens of megabytes at most.
    """

    def __init__(self, n_users: int, n_locations: int):
        #: Raw count matrix; the sampler's hot loop reads and writes it
        #: directly (documented public access, no copies).
        self.phi = np.zeros((n_users, n_locations), dtype=np.float64)
        #: Row sums of ``phi``.
        self.totals = np.zeros(n_users, dtype=np.float64)

    def increment(self, user: int, location: int) -> None:
        """Add one assignment to ``phi[user, location]``."""
        self.phi[user, location] += 1.0
        self.totals[user] += 1.0

    def decrement(self, user: int, location: int) -> None:
        """Remove one assignment; raises if a count goes negative."""
        self.phi[user, location] -= 1.0
        self.totals[user] -= 1.0
        if self.phi[user, location] < -1e-9:
            raise RuntimeError(
                "user location count went negative -- "
                "increment/decrement mismatch"
            )

    def counts_over(self, user: int, candidates: np.ndarray) -> np.ndarray:
        """``phi_{i,l}`` for an array of candidate locations."""
        return self.phi[user, candidates]

    def total(self, user: int) -> float:
        """``phi_i`` -- total number of the user's assignments."""
        return float(self.totals[user])

    def row(self, user: int) -> np.ndarray:
        """Copy of the user's full count row (diagnostics)."""
        return self.phi[user].copy()

    def add_into(self, accumulator: np.ndarray) -> None:
        """Accumulate a snapshot: ``accumulator += phi`` (theta averaging)."""
        accumulator += self.phi


class EdgeAssignmentTally:
    """Post-burn-in tallies of per-edge assignments and noise selections.

    For following edge ``s`` we tally the sampled pair ``(x_s, y_s)``;
    for tweeting edge ``k`` the sampled ``z_k``; for both, how often the
    random model was selected.  Modes of these tallies become the
    relationship explanations.
    """

    def __init__(self, n_following: int, n_tweeting: int):
        self._xy: list[dict[tuple[int, int], int]] = [
            {} for _ in range(n_following)
        ]
        self._z: list[dict[int, int]] = [{} for _ in range(n_tweeting)]
        self._mu_noise = np.zeros(n_following, dtype=np.int64)
        self._nu_noise = np.zeros(n_tweeting, dtype=np.int64)
        self._samples = 0

    @property
    def n_samples(self) -> int:
        """Number of post-burn-in snapshots recorded."""
        return self._samples

    def record_iteration(
        self,
        mu: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        nu: np.ndarray,
        z: np.ndarray,
    ) -> None:
        """Record one post-burn-in sweep (noise samples carry no x/y/z)."""
        for s in range(len(x)):
            if mu[s] == 1:
                continue
            key = (int(x[s]), int(y[s]))
            tally = self._xy[s]
            tally[key] = tally.get(key, 0) + 1
        self._mu_noise += mu.astype(np.int64)
        for k in range(len(z)):
            if nu[k] == 1:
                continue
            zk = int(z[k])
            tally_z = self._z[k]
            tally_z[zk] = tally_z.get(zk, 0) + 1
        self._nu_noise += nu.astype(np.int64)
        self._samples += 1

    def copy(self) -> "EdgeAssignmentTally":
        """Deep copy (starting point for cross-chain merges)."""
        clone = EdgeAssignmentTally(len(self._xy), len(self._z))
        clone._xy = [dict(t) for t in self._xy]
        clone._z = [dict(t) for t in self._z]
        clone._mu_noise = self._mu_noise.copy()
        clone._nu_noise = self._nu_noise.copy()
        clone._samples = self._samples
        return clone

    def merge(self, other: "EdgeAssignmentTally") -> None:
        """Accumulate another tally over the same edges (chain pooling).

        Sample counts add, so modal explanations and noise
        probabilities are computed as if both chains' post-burn-in
        sweeps had been recorded into one tally.
        """
        if len(self._xy) != len(other._xy) or len(self._z) != len(other._z):
            raise ValueError("tallies cover different edge sets")
        for mine, theirs in zip(self._xy, other._xy):
            for key, count in theirs.items():
                mine[key] = mine.get(key, 0) + count
        for mine_z, theirs_z in zip(self._z, other._z):
            for z, count in theirs_z.items():
                mine_z[z] = mine_z.get(z, 0) + count
        self._mu_noise += other._mu_noise
        self._nu_noise += other._nu_noise
        self._samples += other._samples

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten the tally into plain arrays (serving artifact hook).

        Following tallies become parallel ``(edge, x, y, count)``
        columns, tweeting tallies ``(edge, z, count)`` columns, both in
        deterministic (edge, key) order; scalars ride in 1-element
        arrays.  :meth:`from_arrays` inverts this exactly.
        """
        f_edge, f_x, f_y, f_count = [], [], [], []
        for s, tally in enumerate(self._xy):
            for (x, y), count in sorted(tally.items()):
                f_edge.append(s)
                f_x.append(x)
                f_y.append(y)
                f_count.append(count)
        z_edge, z_z, z_count = [], [], []
        for k, tally_z in enumerate(self._z):
            for z, count in sorted(tally_z.items()):
                z_edge.append(k)
                z_z.append(z)
                z_count.append(count)
        return {
            "f_edge": np.array(f_edge, dtype=np.int64),
            "f_x": np.array(f_x, dtype=np.int64),
            "f_y": np.array(f_y, dtype=np.int64),
            "f_count": np.array(f_count, dtype=np.int64),
            "z_edge": np.array(z_edge, dtype=np.int64),
            "z_z": np.array(z_z, dtype=np.int64),
            "z_count": np.array(z_count, dtype=np.int64),
            "mu_noise": self._mu_noise.copy(),
            "nu_noise": self._nu_noise.copy(),
            "samples": np.array([self._samples], dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "EdgeAssignmentTally":
        """Rebuild a tally from :meth:`to_arrays` output."""
        tally = cls(len(arrays["mu_noise"]), len(arrays["nu_noise"]))
        for s, x, y, count in zip(
            arrays["f_edge"].tolist(),
            arrays["f_x"].tolist(),
            arrays["f_y"].tolist(),
            arrays["f_count"].tolist(),
        ):
            tally._xy[s][(x, y)] = count
        for k, z, count in zip(
            arrays["z_edge"].tolist(),
            arrays["z_z"].tolist(),
            arrays["z_count"].tolist(),
        ):
            tally._z[k][z] = count
        tally._mu_noise = arrays["mu_noise"].astype(np.int64).copy()
        tally._nu_noise = arrays["nu_noise"].astype(np.int64).copy()
        tally._samples = int(arrays["samples"][0])
        return tally

    def modal_following(
        self, edge_index: int
    ) -> tuple[int, int, float] | None:
        """Modal ``(x, y)`` pair and its support fraction for an edge.

        ``None`` when the edge was noise-selected in every sample.
        """
        if self._samples == 0:
            raise ValueError("no samples recorded")
        tally = self._xy[edge_index]
        if not tally:
            return None
        (x, y), count = max(
            tally.items(), key=lambda kv: (kv[1], -kv[0][0], -kv[0][1])
        )
        return x, y, count / self._samples

    def modal_tweeting(self, edge_index: int) -> tuple[int, float] | None:
        """Modal ``z`` and its support fraction for a tweeting edge.

        ``None`` when the mention was noise-selected in every sample.
        """
        if self._samples == 0:
            raise ValueError("no samples recorded")
        tally = self._z[edge_index]
        if not tally:
            return None
        z, count = max(tally.items(), key=lambda kv: (kv[1], -kv[0]))
        return z, count / self._samples

    def noise_probability_following(self, edge_index: int) -> float:
        """Posterior noise probability of one following edge."""
        if self._samples == 0:
            raise ValueError("no samples recorded")
        return float(self._mu_noise[edge_index]) / self._samples

    def noise_probability_tweeting(self, edge_index: int) -> float:
        """Posterior noise probability of one tweeting edge."""
        if self._samples == 0:
            raise ValueError("no samples recorded")
        return float(self._nu_noise[edge_index]) / self._samples


class GibbsState:
    """All mutable sampler state for one fit.

    Assignment arrays are allocated here but *initialized* by the
    sampler (it draws them from the priors); counts start at zero and
    are filled by the initialization pass.
    """

    def __init__(
        self,
        n_users: int,
        n_locations: int,
        n_following: int,
        n_tweeting: int,
        track_edges: bool,
    ):
        s = n_following
        k = n_tweeting
        self.mu = np.zeros(s, dtype=np.int8)
        self.x = np.full(s, -1, dtype=np.int64)
        self.y = np.full(s, -1, dtype=np.int64)
        self.nu = np.zeros(k, dtype=np.int8)
        self.z = np.full(k, -1, dtype=np.int64)
        self.user_counts = UserLocationCounts(n_users, n_locations)
        self.theta_accumulator = np.zeros(
            (n_users, n_locations), dtype=np.float64
        )
        self.theta_samples = 0
        self.edge_tally = (
            EdgeAssignmentTally(s, k) if track_edges else None
        )

    def accumulate_theta_snapshot(self) -> None:
        """Add the current phi counts into the theta accumulator."""
        self.user_counts.add_into(self.theta_accumulator)
        self.theta_samples += 1

    def record_edge_snapshot(self) -> None:
        """Tally the current assignments (post-burn-in only)."""
        if self.edge_tally is not None:
            self.edge_tally.record_iteration(
                self.mu, self.x, self.y, self.nu, self.z
            )

    def mean_theta_counts(self) -> np.ndarray:
        """Averaged phi over recorded snapshots (input to Eq. 10)."""
        if self.theta_samples == 0:
            raise RuntimeError("no theta snapshots recorded")
        return self.theta_accumulator / self.theta_samples
