"""Calibrating (alpha, beta): the initial fit and the EM refit.

Sec. 4.1 learns the power law from labeled-user pairs (the Fig. 3(a)
pipeline: bucket pair distances, measure per-bucket edge probability,
least-squares in log-log space).  Sec. 4.5 refines (alpha, beta) with
Gibbs-EM; the M-step here refits the power law from the sampled
location assignments of location-based (mu=0) edges.

Exact probabilities need all N^2 ordered pairs; like the paper's own
scale argument we estimate the pair-count denominator from a uniform
user subsample (unbiased, and the fit only needs the curve's shape).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.params import MLPParams
from repro.data.columnar import ColumnarWorld, compile_world
from repro.data.model import Dataset
from repro.mathx.buckets import log_spaced_bucket_following_pairs
from repro.mathx.powerlaw import PowerLaw, fit_power_law

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.gibbs import GibbsSampler

#: Refits are rejected unless the learned exponent stays meaningfully
#: negative; a flat or increasing "decay" means the assignments are
#: still disordered and the previous law should be kept.
_MIN_DECAY = -0.05


def fit_initial_power_law(
    dataset: Dataset | ColumnarWorld,
    params: MLPParams,
    max_users: int = 2000,
    n_buckets: int = 30,
    rng: np.random.Generator | None = None,
) -> PowerLaw:
    """Fit (alpha, beta) from labeled users' registered locations.

    This is the measurement behind Fig. 3(a): take (a sample of) the
    labeled users, compute all ordered pair distances between their
    registered locations, mark which pairs actually have a following
    relationship, bucket by distance, fit.

    Falls back to ``params``' built-in values when the labeled set is
    too small to produce a usable curve.
    """
    world = compile_world(dataset)
    rng = rng if rng is not None else np.random.default_rng(params.seed)
    fallback = PowerLaw(
        alpha=params.alpha, beta=params.beta, min_x=params.min_distance_miles
    )
    labeled = np.flatnonzero(world.labeled_mask)
    if labeled.size < 10 or world.n_following == 0:
        return fallback
    if labeled.size > max_users:
        labeled = rng.choice(labeled, size=max_users, replace=False)
    locs = world.observed_location[labeled]
    dmat = world.gazetteer.distance_matrix

    # Pair distances over the sample (ordered pairs, no self-pairs).
    pair_d = dmat[locs][:, locs]
    n = labeled.size
    off_diag = ~np.eye(n, dtype=bool)
    distances = pair_d[off_diag]

    # Which sampled pairs are edges?  One vectorized membership pass
    # over the flat edge arena instead of the old object-graph walk.
    index_of = np.full(world.n_users, -1, dtype=np.int64)
    index_of[labeled] = np.arange(n, dtype=np.int64)
    src_idx = index_of[world.edge_src]
    dst_idx = index_of[world.edge_dst]
    both = (src_idx >= 0) & (dst_idx >= 0)
    has_edge = np.zeros((n, n), dtype=bool)
    has_edge[src_idx[both], dst_idx[both]] = True
    edges = has_edge[off_diag]

    buckets = log_spaced_bucket_following_pairs(
        distances,
        edges,
        n_buckets=n_buckets,
        min_miles=params.min_distance_miles,
    ).nonzero()
    if len(buckets) < 2:
        return fallback
    try:
        law = fit_power_law(
            buckets.centers,
            buckets.probabilities,
            weights=buckets.totals,
            min_x=params.min_distance_miles,
        )
    except ValueError:
        return fallback
    if law.alpha > _MIN_DECAY:
        return fallback
    return law


def refit_power_law(
    dataset: Dataset | ColumnarWorld,
    sampler: GibbsSampler,
    params: MLPParams,
    max_users: int = 2000,
    n_buckets: int = 30,
    rng: np.random.Generator | None = None,
) -> PowerLaw:
    """Gibbs-EM M-step: refit (alpha, beta) from sampled assignments.

    Numerator: location-based (mu=0) edges at the distance of their
    current assignments d(x_s, y_s).  Denominator: the distance
    distribution of all ordered user pairs, estimated from a uniform
    user subsample placed at their current provisional home estimates
    and scaled up to N^2.
    """
    world = compile_world(dataset)
    rng = rng if rng is not None else np.random.default_rng(params.seed + 1)
    previous = sampler.following_model.law
    state = sampler.state
    mask = state.mu == 0
    if int(mask.sum()) < 20:
        return previous
    dmat = world.gazetteer.distance_matrix
    edge_d = dmat[state.x[mask], state.y[mask]]

    homes = sampler.current_home_estimates()
    n = world.n_users
    sample_n = min(max_users, n)
    chosen = rng.choice(n, size=sample_n, replace=False)
    locs = homes[chosen]
    pair_d = dmat[locs][:, locs]
    off_diag = ~np.eye(sample_n, dtype=bool)
    sample_distances = pair_d[off_diag]
    scale = (n * (n - 1)) / float(sample_n * (sample_n - 1))

    bounds_min = params.min_distance_miles
    bounds_max = max(float(dmat.max()), bounds_min * 10)
    bounds = np.logspace(
        np.log10(bounds_min), np.log10(bounds_max), n_buckets + 1
    )
    centers = np.sqrt(bounds[:-1] * bounds[1:])

    def bucketize(values: np.ndarray) -> np.ndarray:
        idx = np.clip(
            np.searchsorted(bounds, np.clip(values, bounds_min, bounds_max), side="right") - 1,
            0,
            n_buckets - 1,
        )
        return np.bincount(idx, minlength=n_buckets).astype(np.float64)

    edge_counts = bucketize(edge_d)
    pair_counts = bucketize(sample_distances) * scale
    usable = (edge_counts > 0) & (pair_counts > 0)
    if int(usable.sum()) < 2:
        return previous
    probs = edge_counts[usable] / pair_counts[usable]
    try:
        law = fit_power_law(
            centers[usable],
            probs,
            weights=pair_counts[usable],
            min_x=params.min_distance_miles,
        )
    except ValueError:
        return previous
    if law.alpha > _MIN_DECAY:
        return previous
    return law


