"""Result types: location profiles and relationship explanations.

These are the model's two outputs (Sec. 3's problem statement): a set
of locations per user (with probabilities, so the home is the argmax
and the profile is the top-K) and, per following relationship, the
location assignments that explain it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.gazetteer import Gazetteer


@dataclass(frozen=True, slots=True)
class LocationProfile:
    """A user's estimated location distribution theta_i, sparsely.

    ``entries`` holds ``(location_id, probability)`` sorted by
    descending probability (ties broken by location id, so results are
    deterministic).  Only candidate locations appear; everything else
    has probability zero.
    """

    user_id: int
    entries: tuple[tuple[int, float], ...]
    #: Lazily built location -> probability index backing
    #: :meth:`probability_of`; excluded from equality/repr so profiles
    #: compare by content alone.
    _prob_index: dict[int, float] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        probs = [p for _, p in self.entries]
        if any(p < 0 for p in probs):
            raise ValueError("profile probabilities must be non-negative")
        if probs and abs(sum(probs) - 1.0) > 1e-6:
            raise ValueError(f"profile must sum to 1, got {sum(probs)!r}")

    @property
    def home(self) -> int | None:
        """Predicted home location: the most probable location."""
        return self.entries[0][0] if self.entries else None

    def top_k(self, k: int) -> list[int]:
        """The ``k`` most probable locations (the paper's L-hat_ui)."""
        return [loc for loc, _ in self.entries[:k]]

    def above_threshold(self, threshold: float) -> list[int]:
        """Locations with probability above ``threshold``."""
        return [loc for loc, p in self.entries if p > threshold]

    def probability_of(self, location_id: int) -> float:
        """Probability mass of a specific location (0 if absent).

        O(1) after the first call: a location -> probability dict is
        built lazily, so repeated serving lookups never rescan the
        entry tuple.
        """
        if self._prob_index is None:
            object.__setattr__(self, "_prob_index", dict(self.entries))
        return self._prob_index.get(location_id, 0.0)

    def describe(self, gazetteer: Gazetteer, k: int = 3) -> str:
        """Human-readable top-k summary like "Los Angeles, CA (0.62); ..."."""
        parts = [
            f"{gazetteer.by_id(loc).name} ({p:.2f})"
            for loc, p in self.entries[:k]
        ]
        return "; ".join(parts) if parts else "(empty profile)"


@dataclass(frozen=True, slots=True)
class EdgeExplanation:
    """Explanation of one following relationship f<i,j>.

    ``x`` / ``y`` are the modal sampled location assignments of the
    follower and the friend; ``support`` is the fraction of post-burn-in
    samples agreeing with the mode; ``noise_probability`` is the
    posterior fraction of samples that selected the random model FR.
    """

    edge_index: int
    follower: int
    friend: int
    x: int
    y: int
    support: float
    noise_probability: float

    def describe(self, gazetteer: Gazetteer) -> str:
        """One-line description naming the edge's (x, y) cities."""
        return (
            f"u{self.follower} -> u{self.friend}: "
            f"{gazetteer.by_id(self.x).name} ; {gazetteer.by_id(self.y).name}"
            f" (support {self.support:.2f}, noise {self.noise_probability:.2f})"
        )


@dataclass(frozen=True, slots=True)
class TweetExplanation:
    """Explanation of one tweeting relationship t<i,j>."""

    edge_index: int
    user: int
    venue_id: int
    z: int
    support: float
    noise_probability: float
