"""The collapsed Gibbs sampler for MLP (Sec. 4.5, Eq. 5-9).

theta and psi are integrated out; the sampler sweeps over the model
selectors and location assignments of every relationship:

- following edge ``s`` from ``i`` to ``j``: selector ``mu_s`` (Eq. 5)
  and the assignment pair ``(x_s, y_s)`` (Eq. 7-8);
- tweeting edge ``k`` from ``i`` to venue ``v``: selector ``nu_k``
  (Eq. 6) and the assignment ``z_k`` (Eq. 9).

**Blocked sampling.**  The paper's generative process draws location
assignments *only* for location-based relationships (Sec. 4.4), yet
Eq. 5 as printed conditions the selector on fixed current assignments,
which under-weights the location branch (one sampled pair versus the
whole assignment space) and systematically over-selects noise.  We
therefore sample ``(mu, x, y)`` as a block, marginalizing the
assignments out of the selector decision::

    P(mu=1 | rest) ∝ rho_f * P(f | FR)
    P(mu=0 | rest) ∝ (1-rho_f) * sum_{l1, l2}
        prof_i(l1) * prof_j(l2) * beta * d(l1, l2)**alpha

with ``prof_i(l) = (phi_il + gamma_il) / (phi_i + sum gamma_i)`` -- the
collapsed profile of Eq. 7 -- and then, when the location branch wins,
draws ``(x, y)`` from the same joint table.  Tweeting relationships get
the analogous ``(nu, z)`` block using the collapsed TL term of Eq. 9.
The sum runs over the candidate sets (Sec. 4.3), which keeps each block
a small dense table.

Consequences, faithful to the generative semantics:

- noise-selected relationships carry **no** assignments (stored as -1)
  and contribute nothing to the user-side counts ``phi_{i,l}``;
- only nu=0 tweets count into the venue-side counts ``phi_{l,v}``;
- the "-1" in the paper's equations (exclude the current relationship's
  own contribution) is realized as decrement -> sample -> increment.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.convergence import ConvergenceTrace, IterationStats
from repro.core.following import LocationFollowingModel, RandomFollowingModel
from repro.core.params import MLPParams
from repro.core.priors import UserPriors, build_user_priors
from repro.core.state import GibbsState
from repro.core.tweeting import CollapsedTweetingModel, RandomTweetingModel
from repro.data.columnar import ColumnarWorld, compile_world
from repro.data.model import Dataset

#: Sentinel for "no assignment" (noise-selected relationship).
NO_ASSIGNMENT = -1


def _draw_index(rng: np.random.Generator, weights: np.ndarray) -> int:
    """Fast unchecked categorical draw used by the hot loop."""
    cumulative = np.cumsum(weights)
    total = cumulative[-1]
    if total <= 0.0 or not np.isfinite(total):
        # All-zero weights can only arise from a prior/counting bug;
        # failing loudly beats sampling garbage.
        raise RuntimeError("degenerate sampling weights in Gibbs sweep")
    u = rng.random() * total
    idx = int(np.searchsorted(cumulative, u, side="right"))
    return min(idx, len(weights) - 1)


class GibbsSampler:
    """One fit's sampler: owns the state and performs sweeps.

    Parameters
    ----------
    dataset:
        The profiling problem: a :class:`Dataset` (compiled to the
        shared :class:`~repro.data.columnar.ColumnarWorld` through the
        memoized ``compile_world``) or an already-compiled world.  All
        sweep-side structures read the compiled arrays; the object
        graph is only materialized if :attr:`dataset` is accessed.
    params:
        Hyper-parameters; ``use_following`` / ``use_tweeting`` implement
        the MLP_U / MLP_C ablations by excluding a relationship type
        from both the sweeps and the candidacy construction.
    priors:
        Optional precomputed :class:`UserPriors` (rebuilt otherwise).
    alpha, beta:
        Power-law parameters; default to ``params``.  The Gibbs-EM
        driver passes refined values between rounds.
    """

    def __init__(
        self,
        dataset: Dataset | ColumnarWorld,
        params: MLPParams,
        priors: UserPriors | None = None,
        alpha: float | None = None,
        beta: float | None = None,
    ):
        world = compile_world(dataset)
        self.world = world
        # Keep the input dataset alive for the sampler's lifetime (the
        # compile memo and the world's backref are both weak): callers
        # read `.dataset` expecting the original object graph, ground
        # truth and all, not a stripped re-materialization.
        self._source_dataset = dataset if isinstance(dataset, Dataset) else None
        self.params = params
        self.priors = (
            priors if priors is not None else build_user_priors(world, params)
        )
        self.rng = np.random.default_rng(params.seed)

        if alpha is None and beta is None and params.fit_alpha_beta:
            # Self-calibrate: the built-in (alpha, beta) defaults are
            # the paper's Twitter-scale values; edge *density* differs
            # by orders of magnitude across datasets, so beta must be
            # learned from this dataset's labeled pairs (Sec. 4.1).
            from repro.core.calibration import fit_initial_power_law

            law = fit_initial_power_law(world, params)
            alpha, beta = law.alpha, law.beta
        self.following_model = LocationFollowingModel.from_gazetteer(
            world.gazetteer,
            alpha=alpha if alpha is not None else params.alpha,
            beta=beta if beta is not None else params.beta,
            min_distance=params.min_distance_miles,
        )
        self.random_following = RandomFollowingModel.from_world(world)
        self.random_tweeting = RandomTweetingModel.from_world(world)
        self.tweeting_model = CollapsedTweetingModel(
            n_locations=world.n_locations,
            n_venues=world.n_venues,
            delta=params.delta,
        )

        # Edge arenas, shared read-only with the compiled world (empty
        # when the ablation disables a type).
        if params.use_following:
            self._followers = world.edge_src
            self._friends = world.edge_dst
        else:
            self._followers = np.empty(0, dtype=np.int64)
            self._friends = np.empty(0, dtype=np.int64)
        if params.use_tweeting:
            self._tw_users = world.tweet_user
            self._tw_venues = world.tweet_venue
        else:
            self._tw_users = np.empty(0, dtype=np.int64)
            self._tw_venues = np.empty(0, dtype=np.int64)

        self.state = GibbsState(
            n_users=world.n_users,
            n_locations=world.n_locations,
            n_following=len(self._followers),
            n_tweeting=len(self._tw_users),
            track_edges=params.track_edge_assignments,
        )
        self._initialized = False

    @property
    def dataset(self) -> Dataset:
        """The object-graph view (materialized from the world if needed)."""
        if self._source_dataset is not None:
            return self._source_dataset
        return self.world.require_dataset()

    # -- setup -----------------------------------------------------------

    def initialize(self) -> None:
        """Draw initial selectors/assignments from priors; fill counts."""
        rng = self.rng
        state = self.state
        priors = self.priors
        counts = state.user_counts
        params = self.params

        for s in range(len(self._followers)):
            i = int(self._followers[s])
            j = int(self._friends[s])
            if rng.random() < params.rho_f:
                state.mu[s] = 1
                state.x[s] = NO_ASSIGNMENT
                state.y[s] = NO_ASSIGNMENT
            else:
                state.mu[s] = 0
                xi = int(priors.candidates[i][_draw_index(rng, priors.gamma[i])])
                yj = int(priors.candidates[j][_draw_index(rng, priors.gamma[j])])
                state.x[s] = xi
                state.y[s] = yj
                counts.increment(i, xi)
                counts.increment(j, yj)

        for k in range(len(self._tw_users)):
            i = int(self._tw_users[k])
            v = int(self._tw_venues[k])
            if rng.random() < params.rho_t:
                state.nu[k] = 1
                state.z[k] = NO_ASSIGNMENT
            else:
                state.nu[k] = 0
                zk = int(priors.candidates[i][_draw_index(rng, priors.gamma[i])])
                state.z[k] = zk
                counts.increment(i, zk)
                self.tweeting_model.increment(zk, v)
        self._initialized = True

    # -- one sweep --------------------------------------------------------

    def sweep(self) -> float:
        """One full Gibbs sweep; returns the fraction of changed values."""
        if not self._initialized:
            raise RuntimeError("call initialize() before sweep()")
        changed = 0
        total = 0
        changed += self._sweep_following()
        total += 3 * len(self._followers)
        changed += self._sweep_tweeting()
        total += 2 * len(self._tw_users)
        return changed / total if total else 0.0

    def _sweep_following(self) -> int:
        params = self.params
        rng = self.rng
        state = self.state
        priors = self.priors
        law = self.following_model.law
        dmat = self.following_model.distance_matrix
        phi = state.user_counts.phi
        totals = state.user_counts.totals
        gamma_sum = priors.gamma_sum
        candidates = priors.candidates
        gammas = priors.gamma
        p_noise = params.rho_f * self.random_following.probability()
        one_minus_rho = 1.0 - params.rho_f
        changed = 0

        for s in range(len(self._followers)):
            i = int(self._followers[s])
            j = int(self._friends[s])
            old_mu = int(state.mu[s])
            old_x = int(state.x[s])
            old_y = int(state.y[s])

            # Exclude the current relationship's contribution ("-1").
            if old_mu == 0:
                phi[i, old_x] -= 1.0
                totals[i] -= 1.0
                phi[j, old_y] -= 1.0
                totals[j] -= 1.0

            cand_i = candidates[i]
            cand_j = candidates[j]

            # Joint table over candidate pairs: the Eq. 7 x Eq. 8 terms
            # times the Eq. 1 kernel.
            w_i = phi[i, cand_i] + gammas[i]
            w_j = phi[j, cand_j] + gammas[j]
            kernel = law(dmat[cand_i[:, None], cand_j[None, :]])
            joint = w_i[:, None] * (w_j[None, :] * kernel)
            joint_sum = float(joint.sum())

            # Blocked selector (Eq. 5, assignments marginalized out).
            denom = (totals[i] + gamma_sum[i]) * (totals[j] + gamma_sum[j])
            p_location = one_minus_rho * joint_sum / denom

            if rng.random() * (p_noise + p_location) < p_noise:
                mu, new_x, new_y = 1, NO_ASSIGNMENT, NO_ASSIGNMENT
            else:
                mu = 0
                flat = _draw_index(rng, joint.ravel())
                xi_idx, yj_idx = divmod(flat, cand_j.size)
                new_x = int(cand_i[xi_idx])
                new_y = int(cand_j[yj_idx])
                phi[i, new_x] += 1.0
                totals[i] += 1.0
                phi[j, new_y] += 1.0
                totals[j] += 1.0

            state.mu[s] = mu
            state.x[s] = new_x
            state.y[s] = new_y
            changed += (mu != old_mu) + (new_x != old_x) + (new_y != old_y)
        return changed

    def _sweep_tweeting(self) -> int:
        params = self.params
        rng = self.rng
        state = self.state
        priors = self.priors
        tl = self.tweeting_model
        tr = self.random_tweeting
        phi = state.user_counts.phi
        totals = state.user_counts.totals
        gamma_sum = priors.gamma_sum
        candidates = priors.candidates
        gammas = priors.gamma
        rho_t = params.rho_t
        one_minus_rho = 1.0 - rho_t
        changed = 0

        for k in range(len(self._tw_users)):
            i = int(self._tw_users[k])
            v = int(self._tw_venues[k])
            old_nu = int(state.nu[k])
            old_z = int(state.z[k])

            if old_nu == 0:
                phi[i, old_z] -= 1.0
                totals[i] -= 1.0
                tl.decrement(old_z, v)

            cand_i = candidates[i]
            # Eq. 9 weights: collapsed profile times collapsed TL.
            weights = (phi[i, cand_i] + gammas[i]) * tl.probability_over(
                cand_i, v
            )
            weight_sum = float(weights.sum())

            # Blocked selector (Eq. 6, assignment marginalized out).
            p_noise = rho_t * tr.probability(v)
            p_location = (
                one_minus_rho * weight_sum / (totals[i] + gamma_sum[i])
            )

            if rng.random() * (p_noise + p_location) < p_noise:
                nu, new_z = 1, NO_ASSIGNMENT
            else:
                nu = 0
                new_z = int(cand_i[_draw_index(rng, weights)])
                phi[i, new_z] += 1.0
                totals[i] += 1.0
                tl.increment(new_z, v)

            state.nu[k] = nu
            state.z[k] = new_z
            changed += (nu != old_nu) + (new_z != old_z)
        return changed

    # -- full runs -----------------------------------------------------------

    def run(
        self,
        metric_callback: Callable[["GibbsSampler", int], float] | None = None,
    ) -> ConvergenceTrace:
        """Run the configured schedule; returns the convergence trace.

        ``metric_callback(sampler, iteration)`` -- when given -- is
        evaluated after every sweep (the Fig. 5 experiment passes a
        home-prediction-accuracy probe).  The Gibbs-EM refits of
        (alpha, beta) live in :func:`repro.core.gibbs_em.run_inference`;
        this plain runner keeps the initial law throughout.
        """
        params = self.params
        if not self._initialized:
            self.initialize()
        trace = ConvergenceTrace()
        for it in range(params.n_iterations):
            changed = self.sweep()
            if it >= params.burn_in:
                self.state.accumulate_theta_snapshot()
                self.state.record_edge_snapshot()
            metric = (
                metric_callback(self, it) if metric_callback is not None else None
            )
            trace.append(
                IterationStats(
                    iteration=it,
                    changed_fraction=changed,
                    noise_following_fraction=(
                        float(self.state.mu.mean()) if len(self.state.mu) else 0.0
                    ),
                    noise_tweeting_fraction=(
                        float(self.state.nu.mean()) if len(self.state.nu) else 0.0
                    ),
                    metric=metric,
                )
            )
        return trace

    def set_following_law(self, law) -> None:
        """Swap in refined (alpha, beta) between Gibbs-EM rounds."""
        self.following_model = LocationFollowingModel(
            law=law, distance_matrix=self.world.gazetteer.distance_matrix
        )

    # -- estimates -------------------------------------------------------------

    def theta_for(self, user_id: int, counts_row: np.ndarray) -> np.ndarray:
        """Eq. 10 over a counts row, restricted to the user's candidates."""
        cand = self.priors.candidates[user_id]
        gamma = self.priors.gamma[user_id]
        weights = counts_row[cand] + gamma
        return weights / weights.sum()

    def current_home_estimates(self) -> np.ndarray:
        """Provisional argmax-theta home per user from *current* counts.

        Cheap enough to run every sweep; used by convergence probes.
        """
        phi = self.state.user_counts.phi
        homes = np.empty(self.world.n_users, dtype=np.int64)
        for uid in range(self.world.n_users):
            cand = self.priors.candidates[uid]
            weights = phi[uid, cand] + self.priors.gamma[uid]
            homes[uid] = cand[int(np.argmax(weights))]
        return homes
