"""Convergence tracking for the Gibbs sampler (Fig. 5 of the paper).

The paper plots "accuracy change" per iteration and observes
convergence in ~14 rounds.  We track, per sweep: the fraction of
assignments that changed, the fraction of relationships on the random
model, and an optional user-supplied metric (the Fig. 5 experiment
passes home-prediction accuracy against held-out truth).

Single-chain traces only diagnose *within*-chain mixing.  The
multi-chain engine (:mod:`repro.engine.pool`) additionally applies the
Gelman-Rubin potential scale reduction factor
(:func:`potential_scale_reduction`) across independently-seeded chains:
R-hat near 1 means the chains are sampling the same distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence


@dataclass(frozen=True, slots=True)
class IterationStats:
    """Summary of one Gibbs sweep."""

    iteration: int
    changed_fraction: float
    noise_following_fraction: float
    noise_tweeting_fraction: float
    metric: float | None = None

    @property
    def is_post_burn_in(self) -> bool:
        """True when this sweep recorded a post-burn-in metric."""
        # Set by the trace when appended; iteration index is 0-based.
        return self.metric is not None


@dataclass
class ConvergenceTrace:
    """Accumulates :class:`IterationStats` across a fit."""

    iterations: list[IterationStats] = field(default_factory=list)

    def append(self, stats: IterationStats) -> None:
        """Record one sweep's stats."""
        self.iterations.append(stats)

    def __len__(self) -> int:
        return len(self.iterations)

    def changed_fractions(self) -> list[float]:
        """Per-sweep fraction of assignments that changed."""
        return [s.changed_fraction for s in self.iterations]

    def noise_following_fractions(self) -> list[float]:
        """Per-sweep noise fraction among following edges."""
        return [s.noise_following_fraction for s in self.iterations]

    def noise_tweeting_fractions(self) -> list[float]:
        """Per-sweep noise fraction among tweeting edges."""
        return [s.noise_tweeting_fraction for s in self.iterations]

    def metrics(self) -> list[float | None]:
        """Per-sweep held-out metric (None during burn-in)."""
        return [s.metric for s in self.iterations]

    def metric_changes(self) -> list[float]:
        """Absolute metric change between consecutive sweeps.

        This is the series Fig. 5 plots (|accuracy change| vs
        iteration, log scale).  Sweeps without a metric are skipped.
        """
        values = [s.metric for s in self.iterations if s.metric is not None]
        return [abs(b - a) for a, b in zip(values, values[1:])]

    def converged_at(self, tolerance: float = 1e-3) -> int | None:
        """First iteration whose metric change drops below tolerance."""
        changes = self.metric_changes()
        for i, change in enumerate(changes):
            if change < tolerance:
                return i + 1
        return None


def potential_scale_reduction(chains: Sequence[Sequence[float]]) -> float:
    """Gelman-Rubin R-hat over per-chain scalar draw sequences.

    ``chains`` holds one series per independently-seeded chain (e.g.
    the post-burn-in ``noise_following_fraction`` values).  The classic
    estimator compares the between-chain variance ``B`` of the chain
    means with the mean within-chain variance ``W``::

        R-hat = sqrt(((n - 1)/n * W + B/n) / W)

    Values near 1 indicate the chains agree; > ~1.1 is the usual "keep
    sampling" signal.  Degenerate cases are resolved conservatively:

    - fewer than two chains, or chains shorter than two draws, raise
      ``ValueError`` (the statistic is undefined);
    - zero within-chain variance returns 1.0 when the chains agree
      exactly and ``inf`` when they do not (frozen chains stuck at
      different values have emphatically not converged).
    """
    if len(chains) < 2:
        raise ValueError("R-hat needs at least two chains")
    lengths = {len(c) for c in chains}
    if len(lengths) != 1:
        raise ValueError("chains must have equal length")
    n = lengths.pop()
    if n < 2:
        raise ValueError("R-hat needs at least two draws per chain")
    draws = [[float(v) for v in chain] for chain in chains]
    means = [sum(c) / n for c in draws]
    grand = sum(means) / len(draws)
    b = n * sum((m - grand) ** 2 for m in means) / (len(draws) - 1)
    w = sum(
        sum((v - m) ** 2 for v in c) / (n - 1)
        for c, m in zip(draws, means)
    ) / len(draws)
    if w == 0.0:
        return 1.0 if b == 0.0 else float("inf")
    var_plus = (n - 1) / n * w + b / n
    return float(var_plus / w) ** 0.5


#: Trace series extractable by :func:`trace_scale_reduction`.
TRACE_SERIES = ("noise_following", "noise_tweeting", "changed")


def trace_scale_reduction(
    traces: Sequence[ConvergenceTrace],
    series: str = "noise_following",
    burn_in: int = 0,
) -> float:
    """R-hat across :class:`ConvergenceTrace` objects.

    The statistical-equivalence harness runs the same world through
    different engines (or the same engine under different seeds) and
    asks whether the resulting chains target the same distribution:
    extract one scalar ``series`` per trace (``noise_following``,
    ``noise_tweeting`` or ``changed``), drop the first ``burn_in``
    sweeps, truncate to the shortest remaining length, and apply
    :func:`potential_scale_reduction`.  Engines that mix toward the
    same posterior produce R-hat near 1 even when their chains are not
    bit-comparable.
    """
    if series not in TRACE_SERIES:
        raise ValueError(
            f"series must be one of {TRACE_SERIES}, got {series!r}"
        )
    extract = {
        "noise_following": ConvergenceTrace.noise_following_fractions,
        "noise_tweeting": ConvergenceTrace.noise_tweeting_fractions,
        "changed": ConvergenceTrace.changed_fractions,
    }[series]
    chains = [extract(t)[burn_in:] for t in traces]
    shortest = min((len(c) for c in chains), default=0)
    return potential_scale_reduction([c[:shortest] for c in chains])


#: Signature of the per-iteration metric callback: receives the sweep
#: index and a *provisional* theta estimate, returns a scalar.
MetricCallback = Callable[[int], float]
