"""Convergence tracking for the Gibbs sampler (Fig. 5 of the paper).

The paper plots "accuracy change" per iteration and observes
convergence in ~14 rounds.  We track, per sweep: the fraction of
assignments that changed, the fraction of relationships on the random
model, and an optional user-supplied metric (the Fig. 5 experiment
passes home-prediction accuracy against held-out truth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True, slots=True)
class IterationStats:
    """Summary of one Gibbs sweep."""

    iteration: int
    changed_fraction: float
    noise_following_fraction: float
    noise_tweeting_fraction: float
    metric: float | None = None

    @property
    def is_post_burn_in(self) -> bool:
        # Set by the trace when appended; iteration index is 0-based.
        return self.metric is not None


@dataclass
class ConvergenceTrace:
    """Accumulates :class:`IterationStats` across a fit."""

    iterations: list[IterationStats] = field(default_factory=list)

    def append(self, stats: IterationStats) -> None:
        self.iterations.append(stats)

    def __len__(self) -> int:
        return len(self.iterations)

    def changed_fractions(self) -> list[float]:
        return [s.changed_fraction for s in self.iterations]

    def metrics(self) -> list[float | None]:
        return [s.metric for s in self.iterations]

    def metric_changes(self) -> list[float]:
        """Absolute metric change between consecutive sweeps.

        This is the series Fig. 5 plots (|accuracy change| vs
        iteration, log scale).  Sweeps without a metric are skipped.
        """
        values = [s.metric for s in self.iterations if s.metric is not None]
        return [abs(b - a) for a, b in zip(values, values[1:])]

    def converged_at(self, tolerance: float = 1e-3) -> int | None:
        """First iteration whose metric change drops below tolerance."""
        changes = self.metric_changes()
        for i, change in enumerate(changes):
            if change < tolerance:
                return i + 1
        return None


#: Signature of the per-iteration metric callback: receives the sweep
#: index and a *provisional* theta estimate, returns a scalar.
MetricCallback = Callable[[int], float]
