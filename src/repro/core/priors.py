"""Partially available supervision: candidacy vectors and gamma priors.

Implements Sec. 4.3 of the paper:

- the **observation vector** ``eta_i`` marks a labeled user's observed
  home location;
- the **boosting matrix** ``Lambda`` (diagonal, as in the paper's
  implementation) converts an observation into a large prior
  pseudo-count for that location;
- the **candidacy vector** ``lambda_i`` restricts each user to the
  locations *observed from their relationships* -- labeled neighbours'
  homes and the referent cities of tweeted venue names -- which both
  matches reality ("92% users whose locations appear in their
  relationships") and makes sampling tractable (Eq. 7-9 only score
  candidate locations);
- the per-user prior ``gamma_i = eta_i x Lambda x gamma + tau * lambda_i``
  (Eq. 3).

The sampler consumes the result in sparse form: per user, an array of
candidate location ids and a parallel array of gamma values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import MLPParams
from repro.data.model import Dataset


@dataclass(frozen=True, slots=True)
class UserPriors:
    """Sparse per-user Dirichlet priors over candidate locations.

    ``candidates[i]`` is a sorted array of candidate location ids for
    user ``i``; ``gamma[i]`` is the parallel array of prior values;
    ``gamma_sum[i]`` caches its sum (the denominator of Eq. 7-10).
    """

    candidates: tuple[np.ndarray, ...]
    gamma: tuple[np.ndarray, ...]
    gamma_sum: np.ndarray

    @property
    def n_users(self) -> int:
        return len(self.candidates)

    def candidate_count(self) -> np.ndarray:
        """Number of candidate locations per user."""
        return np.array([c.size for c in self.candidates])


def venue_referent_map(dataset: Dataset) -> dict[int, tuple[int, ...]]:
    """venue id -> location ids the (ambiguous) venue name may refer to."""
    gaz = dataset.gazetteer
    return {
        vid: tuple(loc.location_id for loc in gaz.lookup_name(name))
        for vid, name in enumerate(gaz.venue_vocabulary)
    }


def candidate_locations_for(
    dataset: Dataset,
    user_id: int,
    referents: dict[int, tuple[int, ...]],
    use_following: bool = True,
    use_tweeting: bool = True,
) -> set[int]:
    """The candidacy set lambda_i of one user (Sec. 4.3).

    A location is a candidate iff it is *observed from the user's
    relationships*: a labeled neighbour (friend or follower) registered
    it, or a venue the user tweeted has it among its referent cities.
    The user's own observed location, when present, is always a
    candidate (the boost term of Eq. 3 presumes it is in play).
    """
    observed = dataset.observed_locations
    candidates: set[int] = set()
    own = observed.get(user_id)
    if own is not None:
        candidates.add(own)
    if use_following:
        for nb in dataset.neighbors_of[user_id]:
            loc = observed.get(nb)
            if loc is not None:
                candidates.add(loc)
    if use_tweeting:
        for vid in set(dataset.venues_of[user_id]):
            candidates.update(referents[vid])
    return candidates


def build_user_priors(dataset: Dataset, params: MLPParams) -> UserPriors:
    """Build candidacy vectors and gamma_i for every user (Eq. 3).

    For a labeled user the observed home location receives
    ``boost + tau`` prior mass; every other candidate receives ``tau``.
    Users with an empty candidacy set (isolated, no usable signal) fall
    back to the full gazetteer with a flat ``tau`` prior -- the model
    can still place them via whatever relationships they do have.
    """
    referents = venue_referent_map(dataset)
    n_loc = len(dataset.gazetteer)
    all_locations = np.arange(n_loc, dtype=np.int64)
    observed = dataset.observed_locations

    candidates_out: list[np.ndarray] = []
    gamma_out: list[np.ndarray] = []
    sums = np.empty(dataset.n_users, dtype=np.float64)

    for user in dataset.users:
        if params.use_candidacy:
            cand_set = candidate_locations_for(
                dataset,
                user.user_id,
                referents,
                use_following=params.use_following,
                use_tweeting=params.use_tweeting,
            )
        else:
            cand_set = set()  # ablation: fall through to full gazetteer
        if cand_set:
            cand = np.array(sorted(cand_set), dtype=np.int64)
        else:
            cand = all_locations
        gamma = np.full(cand.size, params.tau, dtype=np.float64)
        own = observed.get(user.user_id)
        if own is not None:
            pos = int(np.searchsorted(cand, own))
            # own observed location is guaranteed in cand by construction
            # unless the fallback path was taken; guard either way.
            if pos < cand.size and cand[pos] == own:
                gamma[pos] += params.boost
        candidates_out.append(cand)
        gamma_out.append(gamma)
        sums[user.user_id] = float(gamma.sum())

    return UserPriors(
        candidates=tuple(candidates_out),
        gamma=tuple(gamma_out),
        gamma_sum=sums,
    )
