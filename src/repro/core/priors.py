"""Partially available supervision: candidacy vectors and gamma priors.

Implements Sec. 4.3 of the paper:

- the **observation vector** ``eta_i`` marks a labeled user's observed
  home location;
- the **boosting matrix** ``Lambda`` (diagonal, as in the paper's
  implementation) converts an observation into a large prior
  pseudo-count for that location;
- the **candidacy vector** ``lambda_i`` restricts each user to the
  locations *observed from their relationships* -- labeled neighbours'
  homes and the referent cities of tweeted venue names -- which both
  matches reality ("92% users whose locations appear in their
  relationships") and makes sampling tractable (Eq. 7-9 only score
  candidate locations);
- the per-user prior ``gamma_i = eta_i x Lambda x gamma + tau * lambda_i``
  (Eq. 3).

The sampler consumes the result in sparse form: per user, an array of
candidate location ids and a parallel array of gamma values.
Construction runs on the shared :class:`~repro.data.columnar.ColumnarWorld`
substrate: the default full-signal candidacy is a precompiled slice,
ablation variants are assembled from the world's CSR tables, and the
packed arena layout the vectorized engine needs is built once per
priors instance (:meth:`UserPriors.packed`) and shared read-only by
every chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.params import MLPParams
from repro.data.columnar import ColumnarWorld, compile_world
from repro.data.model import Dataset


@dataclass(frozen=True, slots=True, eq=False)
class PackedPriors:
    """The priors' flat arena layout, shared read-only across chains.

    ``offsets[u]:offsets[u+1]`` is user ``u``'s slot range in the
    packed candidate arena; ``flat_candidates`` holds the candidate
    location ids slot by slot, ``slot_user`` the owning user of each
    slot, ``flat_gamma`` the parallel gamma values and ``gamma_list``
    their Python-float mirror (the sweep hot loop reads scalars).
    """

    offsets: np.ndarray
    flat_candidates: np.ndarray
    slot_user: np.ndarray
    flat_gamma: np.ndarray
    gamma_list: list[float]

    @property
    def total_slots(self) -> int:
        """Total candidate slots across all users."""
        return int(self.offsets[-1])


@dataclass(frozen=True, slots=True, eq=False)
class UserPriors:
    """Sparse per-user Dirichlet priors over candidate locations.

    ``candidates[i]`` is a sorted array of candidate location ids for
    user ``i``; ``gamma[i]`` is the parallel array of prior values;
    ``gamma_sum[i]`` caches its sum (the denominator of Eq. 7-10).
    """

    candidates: tuple[np.ndarray, ...]
    gamma: tuple[np.ndarray, ...]
    gamma_sum: np.ndarray
    _packed: "PackedPriors | None" = field(
        default=None, init=False, repr=False
    )

    @property
    def n_users(self) -> int:
        """Number of users covered by the priors."""
        return len(self.candidates)

    def candidate_count(self) -> np.ndarray:
        """Number of candidate locations per user."""
        return np.array([c.size for c in self.candidates])

    def packed(self) -> PackedPriors:
        """The flat arena layout, built lazily once and then shared.

        A K-chain pool hands the same ``UserPriors`` to every chain, so
        the vectorized engine's per-fit arena construction collapses to
        one build per priors instance instead of one per sampler.
        """
        if self._packed is None:
            n = self.n_users
            counts = np.fromiter(
                (c.size for c in self.candidates), dtype=np.int64, count=n
            )
            offsets = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            flat_candidates = (
                np.concatenate(self.candidates)
                if n
                else np.empty(0, dtype=np.int64)
            )
            flat_gamma = (
                np.concatenate(self.gamma) if n else np.empty(0, dtype=np.float64)
            )
            packed = PackedPriors(
                offsets=offsets,
                flat_candidates=flat_candidates,
                slot_user=np.repeat(np.arange(n, dtype=np.int64), counts),
                flat_gamma=flat_gamma,
                gamma_list=flat_gamma.tolist(),
            )
            object.__setattr__(self, "_packed", packed)
        return self._packed


def venue_referent_map(dataset: Dataset) -> dict[int, tuple[int, ...]]:
    """venue id -> location ids the (ambiguous) venue name may refer to."""
    gaz = dataset.gazetteer
    return {
        vid: tuple(loc.location_id for loc in gaz.lookup_name(name))
        for vid, name in enumerate(gaz.venue_vocabulary)
    }


def candidate_locations_for(
    dataset: Dataset,
    user_id: int,
    referents: dict[int, tuple[int, ...]],
    use_following: bool = True,
    use_tweeting: bool = True,
) -> set[int]:
    """The candidacy set lambda_i of one user (Sec. 4.3).

    A location is a candidate iff it is *observed from the user's
    relationships*: a labeled neighbour (friend or follower) registered
    it, or a venue the user tweeted has it among its referent cities.
    The user's own observed location, when present, is always a
    candidate (the boost term of Eq. 3 presumes it is in play).

    This is the object-graph reference implementation;
    :func:`build_user_priors` computes the same sets from the compiled
    world's CSR tables.
    """
    observed = dataset.observed_locations
    candidates: set[int] = set()
    own = observed.get(user_id)
    if own is not None:
        candidates.add(own)
    if use_following:
        for nb in dataset.neighbors_of[user_id]:
            loc = observed.get(nb)
            if loc is not None:
                candidates.add(loc)
    if use_tweeting:
        for vid in set(dataset.venues_of[user_id]):
            candidates.update(referents[vid])
    return candidates


def _variant_candidates(
    world: ColumnarWorld, user_id: int, params: MLPParams
) -> np.ndarray:
    """Candidacy under ablation flags, from the world's CSR tables."""
    observed = world.observed_location
    parts: list[np.ndarray] = []
    own = int(observed[user_id])
    if own >= 0:
        parts.append(np.array([own], dtype=np.int64))
    if params.use_following:
        nbr_obs = observed[world.neighbors_of(user_id)]
        parts.append(nbr_obs[nbr_obs >= 0])
    if params.use_tweeting:
        vids = np.unique(world.venues_of(user_id))
        parts.extend(world.referents_of(int(v)) for v in vids)
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def build_user_priors(
    dataset: Dataset | ColumnarWorld, params: MLPParams
) -> UserPriors:
    """Build candidacy vectors and gamma_i for every user (Eq. 3).

    For a labeled user the observed home location receives
    ``boost + tau`` prior mass; every other candidate receives ``tau``.
    Users with an empty candidacy set (isolated, no usable signal) fall
    back to the full gazetteer with a flat ``tau`` prior -- the model
    can still place them via whatever relationships they do have.

    Accepts either a :class:`Dataset` (compiled through the memoized
    :func:`~repro.data.columnar.compile_world`) or an
    already-compiled :class:`ColumnarWorld`.  The default full-signal
    parameterization reads the world's precompiled candidate CSR
    directly; ablations recombine the same tables.
    """
    world = compile_world(dataset)
    n_loc = world.n_locations
    all_locations = np.arange(n_loc, dtype=np.int64)
    observed = world.observed_location
    full_signal = params.use_following and params.use_tweeting

    candidates_out: list[np.ndarray] = []
    gamma_out: list[np.ndarray] = []
    sums = np.empty(world.n_users, dtype=np.float64)

    for uid in range(world.n_users):
        if params.use_candidacy:
            cand = (
                world.candidates_of(uid)
                if full_signal
                else _variant_candidates(world, uid, params)
            )
        else:
            cand = np.empty(0, dtype=np.int64)  # ablation: full gazetteer
        if cand.size == 0:
            cand = all_locations
        gamma = np.full(cand.size, params.tau, dtype=np.float64)
        own = int(observed[uid])
        if own >= 0:
            pos = int(np.searchsorted(cand, own))
            # own observed location is guaranteed in cand by construction
            # unless the fallback path was taken; guard either way.
            if pos < cand.size and cand[pos] == own:
                gamma[pos] += params.boost
        candidates_out.append(cand)
        gamma_out.append(gamma)
        sums[uid] = float(gamma.sum())

    return UserPriors(
        candidates=tuple(candidates_out),
        gamma=tuple(gamma_out),
        gamma_sum=sums,
    )
