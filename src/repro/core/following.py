"""Following models: location-based FL (Eq. 1) and random FR.

FL: ``P(f<i,j> | alpha, beta, x_i, y_j) = beta * d(x_i, y_j)**alpha``
with the distance clamped at ``min_distance_miles`` (see DESIGN.md).

FR: the empirical random model of Sec. 4.2,
``p(f<i,j>=1 | FR) = S / N**2`` -- the global density of following
relationships over ordered user pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.model import Dataset
from repro.geo.gazetteer import Gazetteer
from repro.mathx.powerlaw import PowerLaw


@dataclass(frozen=True, slots=True)
class LocationFollowingModel:
    """FL -- the power-law following probability over location pairs.

    Wraps a :class:`PowerLaw` together with the gazetteer distance
    matrix, exposing the two query shapes the sampler needs: a single
    location pair, and "one fixed endpoint vs an array of candidates".
    """

    law: PowerLaw
    distance_matrix: np.ndarray

    @classmethod
    def from_gazetteer(
        cls, gazetteer: Gazetteer, alpha: float, beta: float, min_distance: float
    ) -> "LocationFollowingModel":
        """Bind an (alpha, beta) law to the gazetteer's distances."""
        return cls(
            law=PowerLaw(alpha=alpha, beta=beta, min_x=min_distance),
            distance_matrix=gazetteer.distance_matrix,
        )

    def probability(self, x: int, y: int) -> float:
        """``P(f | x, y)`` for one location pair (Eq. 1)."""
        return float(self.law(self.distance_matrix[x, y]))

    def kernel(self, x: int, y: int) -> float:
        """``d(x, y)**alpha`` -- the beta-free factor of Eq. 7-8."""
        return float(self.law.distance_kernel(self.distance_matrix[x, y]))

    def kernel_against(self, candidates: np.ndarray, other: int) -> np.ndarray:
        """``d(l, other)**alpha`` for every candidate ``l`` at once."""
        return self.law.distance_kernel(self.distance_matrix[candidates, other])


@dataclass(frozen=True, slots=True)
class RandomFollowingModel:
    """FR -- the empirical probability of a random following edge."""

    edge_probability: float

    @classmethod
    def from_world(cls, world) -> "RandomFollowingModel":
        """Build from a compiled :class:`~repro.data.columnar.ColumnarWorld`."""
        n = world.n_users
        if n == 0:
            raise ValueError("empty dataset")
        return cls(edge_probability=world.n_following / float(n * n))

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "RandomFollowingModel":
        """Estimate the flat edge probability from a dataset."""
        n = dataset.n_users
        if n == 0:
            raise ValueError("empty dataset")
        return cls(edge_probability=dataset.n_following / float(n * n))

    def probability(self) -> float:
        """``p(f<i,j>=1 | FR)`` -- constant per dataset."""
        return self.edge_probability
