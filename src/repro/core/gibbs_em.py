"""Inference driver: burn-in, Gibbs-EM refits, accumulation.

The outer Gibbs-EM loop of Sec. 4.5: the E-step is the Gibbs chain
itself (:class:`~repro.core.gibbs.GibbsSampler`), the M-step refits
(alpha, beta) from the sampled assignments
(:func:`repro.core.calibration.refit_power_law`).

The sampler class is chosen by ``params.engine`` through
:func:`repro.engine.factory.make_sampler`, so the vectorized engine
slots into the same schedule (including mid-run law swaps) unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.calibration import fit_initial_power_law, refit_power_law
from repro.core.convergence import ConvergenceTrace, IterationStats
from repro.core.gibbs import GibbsSampler
from repro.core.params import MLPParams
from repro.core.priors import UserPriors, build_user_priors
from repro.data.columnar import ColumnarWorld, compile_world
from repro.data.model import Dataset
from repro.mathx.powerlaw import PowerLaw


@dataclass
class InferenceRun:
    """Everything a finished inference produced."""

    sampler: GibbsSampler
    trace: ConvergenceTrace
    law_history: list[PowerLaw] = field(default_factory=list)
    #: Sum of post-burn-in venue-side count snapshots (``phi_{l,v}``)
    #: and how many were taken; the venue analogue of the theta
    #: accumulator in :class:`~repro.core.state.GibbsState`.
    venue_count_accumulator: np.ndarray | None = None
    venue_samples: int = 0

    @property
    def final_law(self) -> PowerLaw:
        """The last (alpha, beta) law accepted by the EM loop."""
        return self.law_history[-1]

    def mean_venue_counts(self) -> np.ndarray:
        """Averaged venue-side counts over recorded snapshots.

        This is the frozen TL table serving fold-in needs: psi_l is
        read as ``(mean_counts[l, v] + delta) / (row_sum + delta * V)``.
        """
        if self.venue_count_accumulator is None or self.venue_samples == 0:
            raise RuntimeError("no venue count snapshots recorded")
        return self.venue_count_accumulator / self.venue_samples


def run_inference(
    dataset: Dataset | ColumnarWorld,
    params: MLPParams,
    priors: UserPriors | None = None,
    metric_callback=None,
) -> InferenceRun:
    """Full inference schedule: initial fit, burn-in, EM refits, sampling.

    Sweep budget is exactly ``params.n_iterations``:
    ``burn_in`` sweeps of pure burn-in, then ``em_rounds`` refits of
    (alpha, beta) spread immediately after burn-in, then accumulation
    sweeps that feed theta estimation and edge tallies.

    The dataset is compiled once (memoized) to the shared
    :class:`~repro.data.columnar.ColumnarWorld`; calibration, priors
    and the sampler all run on the same compiled arrays.
    """
    # Engine dispatch lives in repro.engine; imported lazily because the
    # engine package layers on top of this module.
    from repro.engine.factory import make_sampler

    world = compile_world(dataset)
    priors = priors if priors is not None else build_user_priors(world, params)
    if params.fit_alpha_beta and params.use_following:
        law = fit_initial_power_law(world, params)
    else:
        law = PowerLaw(
            alpha=params.alpha, beta=params.beta, min_x=params.min_distance_miles
        )
    laws = [law]
    sampler = make_sampler(
        world, params, priors=priors, alpha=law.alpha, beta=law.beta
    )
    sampler.initialize()
    trace = ConvergenceTrace()
    it = 0

    # Opt-in sweep observer (repro.obs.hooks): fetched once per fit; the
    # hot loop pays a None check per sweep when nobody is observing and a
    # perf_counter pair + callback when somebody is.  Observers receive
    # only (engine, iteration, seconds) -- never sampler state -- so they
    # cannot perturb the chain.
    from repro.obs.hooks import sweep_observer

    observer = sweep_observer()
    engine_name = str(params.engine)

    def timed_sweep() -> float:
        if observer is None:
            return sampler.sweep()
        t0 = time.perf_counter()
        changed = sampler.sweep()
        observer(engine_name, it, time.perf_counter() - t0)
        return changed

    def record(changed: float) -> None:
        nonlocal it
        metric = metric_callback(sampler, it) if metric_callback else None
        trace.append(
            IterationStats(
                iteration=it,
                changed_fraction=changed,
                noise_following_fraction=(
                    float(sampler.state.mu.mean()) if len(sampler.state.mu) else 0.0
                ),
                noise_tweeting_fraction=(
                    float(sampler.state.nu.mean()) if len(sampler.state.nu) else 0.0
                ),
                metric=metric,
            )
        )
        it += 1

    for _ in range(params.burn_in):
        record(timed_sweep())

    if params.fit_alpha_beta and params.use_following:
        for _ in range(params.em_rounds):
            law = refit_power_law(world, sampler, params)
            laws.append(law)
            sampler.set_following_law(law)

    venue_acc = np.zeros(
        (world.n_locations, world.n_venues), dtype=np.float64
    )
    venue_samples = 0
    for _ in range(params.n_iterations - params.burn_in):
        record(timed_sweep())
        sampler.state.accumulate_theta_snapshot()
        sampler.state.record_edge_snapshot()
        sampler.tweeting_model.add_counts_into(venue_acc)
        venue_samples += 1

    return InferenceRun(
        sampler=sampler,
        trace=trace,
        law_history=laws,
        venue_count_accumulator=venue_acc,
        venue_samples=venue_samples,
    )
