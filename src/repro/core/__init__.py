"""The paper's primary contribution: the MLP model and its inference.

Module map (paper section in parentheses):

- :mod:`repro.core.params` -- the model parameters Omega (Table 1).
- :mod:`repro.core.priors` -- observation/candidacy vectors, boosting
  matrix and per-user Dirichlet priors gamma_i (Sec. 4.3, Eq. 3).
- :mod:`repro.core.following` -- location-based following model FL
  (Eq. 1) and random model FR (Sec. 4.2).
- :mod:`repro.core.tweeting` -- location-based tweeting model TL
  (Eq. 2) and random model TR (Sec. 4.2).
- :mod:`repro.core.state` -- collapsed sampler state (counts phi).
- :mod:`repro.core.gibbs` -- the Gibbs sampler (Eq. 5-9, Sec. 4.5).
- :mod:`repro.core.gibbs_em` -- the outer Gibbs-EM loop refining
  (alpha, beta) (end of Sec. 4.5).
- :mod:`repro.core.model` -- the :class:`MLPModel` facade plus the
  MLP_U / MLP_C ablation variants used in the evaluation.
- :mod:`repro.core.results` -- location profiles, edge explanations.
"""

from repro.core.model import MLPModel, MLPResult, mlp_c_params, mlp_u_params
from repro.core.params import MLPParams
from repro.core.priors import UserPriors, build_user_priors
from repro.core.results import EdgeExplanation, LocationProfile
from repro.core.convergence import ConvergenceTrace, IterationStats

__all__ = [
    "ConvergenceTrace",
    "EdgeExplanation",
    "IterationStats",
    "LocationProfile",
    "MLPModel",
    "MLPParams",
    "MLPResult",
    "UserPriors",
    "build_user_priors",
    "mlp_c_params",
    "mlp_u_params",
]
