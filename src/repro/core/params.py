"""Model parameters Omega (Table 1 of the paper) plus inference knobs.

The paper's given parameters are ``rho_f``, ``rho_t``, ``alpha``,
``beta``, FR, TR, ``gamma_i`` and ``delta``; FR/TR are learned
empirically from the data (Sec. 4.2) and ``gamma_i`` is derived per
user (Eq. 3), so what remains configurable here is the scalar prior
machinery and the sampler schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class MLPParams:
    """Hyper-parameters and inference schedule for :class:`MLPModel`.

    Attributes mirror the paper's notation where one exists:

    - ``alpha``, ``beta``: the power-law following model (Sec. 4.1;
      fitted to -0.55 / 0.0045 on Twitter).  When ``fit_alpha_beta`` is
      true these are re-learned from the labeled users before sampling
      and refined by Gibbs-EM rounds.
    - ``rho_f``, ``rho_t``: Bernoulli priors of selecting the random
      (noise) model for a following / tweeting relationship.
    - ``tau``: prior value of each candidate location (0.1 in the
      paper: "values of hyper parameter below 1 prefer sparse
      distributions").
    - ``boost``: the diagonal of the boosting matrix Lambda times the
      base prior -- the pseudo-count added to a labeled user's observed
      home location.
    - ``delta``: symmetric Dirichlet prior of each per-location venue
      multinomial psi_l.
    """

    alpha: float = -0.55
    beta: float = 0.0045
    min_distance_miles: float = 1.0
    rho_f: float = 0.15
    rho_t: float = 0.20
    tau: float = 0.1
    boost: float = 50.0
    delta: float = 0.05
    #: Sampler schedule.  The paper's corpus converges in ~14 sweeps
    #: (Fig. 5); the smaller synthetic worlds need longer chains for
    #: the same mixing, so the default is more conservative.
    n_iterations: int = 40
    burn_in: int = 15
    seed: int = 0
    #: Re-learn (alpha, beta) from labeled users before sampling, and
    #: refine with this many Gibbs-EM outer rounds (0 = fixed values).
    fit_alpha_beta: bool = True
    em_rounds: int = 1
    #: Number of user pairs sampled to estimate the non-edge denominator
    #: in the (alpha, beta) fit (the paper uses all ~2.5e10 pairs; a
    #: uniform sample is unbiased and tractable).
    em_pair_sample: int = 200_000
    #: Ablation switches: MLP_U uses only following relationships,
    #: MLP_C only tweeting relationships (Sec. 5 "Methods").
    use_following: bool = True
    use_tweeting: bool = True
    #: Candidacy vectors (Sec. 4.3).  False gives every user the full
    #: gazetteer as candidates -- the ablation quantifying the paper's
    #: "candidacy vectors greatly improve the efficiency" claim.
    use_candidacy: bool = True
    #: Sweep implementation (see :mod:`repro.engine`): ``loop`` is the
    #: reference sampler, ``vectorized`` replays the identical chain
    #: from precomputed per-edge layouts (faster, more memory),
    #: ``partitioned`` sweeps conflict-free color blocks set-at-a-time
    #: (fastest; statistically equivalent rather than bit-identical).
    #: Valid names come from :mod:`repro.engine.registry`.
    engine: str = "loop"
    #: Worker threads for ``engine=partitioned`` color sweeps (other
    #: engines ignore it).  Results are independent of ``n_jobs``.
    n_jobs: int = 1
    #: Independent chains to run (>= 2 pools posteriors and enables
    #: R-hat cross-chain convergence checks via the ChainPool).
    n_chains: int = 1
    #: Keep per-edge assignment tallies after burn-in (needed for the
    #: relationship-explanation task; costs memory on huge datasets).
    track_edge_assignments: bool = True

    def __post_init__(self) -> None:
        if self.alpha >= 0:
            raise ValueError("alpha must be negative (distance decay)")
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.min_distance_miles <= 0:
            raise ValueError("min_distance_miles must be positive")
        if not 0.0 <= self.rho_f < 1.0:
            raise ValueError("rho_f must be in [0, 1)")
        if not 0.0 <= self.rho_t < 1.0:
            raise ValueError("rho_t must be in [0, 1)")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.boost < 0:
            raise ValueError("boost must be non-negative")
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if not 0 <= self.burn_in < self.n_iterations:
            raise ValueError("burn_in must be in [0, n_iterations)")
        if self.em_rounds < 0:
            raise ValueError("em_rounds must be >= 0")
        if not (self.use_following or self.use_tweeting):
            raise ValueError("at least one relationship type must be used")
        # Cheap import: the registry holds only the name table, never
        # the sampler implementations (params sits below repro.engine).
        from repro.engine.registry import engine_names

        if self.engine not in engine_names():
            raise ValueError(
                f"engine must be one of {list(engine_names())}, "
                f"got {self.engine!r}"
            )
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.n_chains < 1:
            raise ValueError("n_chains must be >= 1")

    def with_overrides(self, **kwargs) -> "MLPParams":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **kwargs)
