"""Venue extraction: find gazetteer venue names mentioned in tweets.

A *venue* in the paper is the name of a geo signal (a city in our
gazetteer-driven setup); a single name may refer to many locations.
The extractor matches the gazetteer's venue vocabulary against tweet
token streams with greedy longest-first n-gram matching, so
"los angeles" is recognised as one venue rather than leaking "angeles".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.gazetteer import Gazetteer
from repro.text.tokenizer import tokenize


@dataclass(frozen=True, slots=True)
class VenueMention:
    """One venue mention found in a piece of text."""

    venue: str
    venue_id: int
    token_start: int
    token_end: int  # exclusive


class VenueExtractor:
    """Extract venue mentions from tweet text against a gazetteer.

    The extractor precomputes, for every vocabulary entry, its token
    tuple, and indexes entries by first token.  Matching is greedy
    longest-first at each position, and a matched span is consumed
    (non-overlapping mentions).
    """

    def __init__(self, gazetteer: Gazetteer):
        self._gazetteer = gazetteer
        self._venue_index = gazetteer.venue_index
        self._by_first_token: dict[str, list[tuple[tuple[str, ...], str]]] = {}
        self._max_len = 1
        for venue in gazetteer.venue_vocabulary:
            parts = tuple(venue.split())
            if not parts:
                continue
            self._max_len = max(self._max_len, len(parts))
            self._by_first_token.setdefault(parts[0], []).append((parts, venue))
        # Longest names first so greedy matching prefers "los angeles"
        # over a hypothetical single-token "los".
        for entries in self._by_first_token.values():
            entries.sort(key=lambda item: -len(item[0]))

    @property
    def gazetteer(self) -> Gazetteer:
        """The gazetteer this extractor matches against."""
        return self._gazetteer

    def extract(self, text: str) -> list[VenueMention]:
        """All non-overlapping venue mentions in ``text``, left to right.

        >>> from repro.geo import builtin_gazetteer
        >>> ex = VenueExtractor(builtin_gazetteer())
        >>> [m.venue for m in ex.extract("Moving from Round Rock to Los Angeles!")]
        ['round rock', 'los angeles']
        """
        tokens = tokenize(text)
        return self.extract_from_tokens(tokens)

    def extract_from_tokens(self, tokens: list[str]) -> list[VenueMention]:
        """Match venues over an already tokenized stream."""
        mentions: list[VenueMention] = []
        i = 0
        n = len(tokens)
        while i < n:
            entries = self._by_first_token.get(tokens[i])
            matched = False
            if entries:
                for parts, venue in entries:
                    end = i + len(parts)
                    if end <= n and tuple(tokens[i:end]) == parts:
                        mentions.append(
                            VenueMention(
                                venue=venue,
                                venue_id=self._venue_index[venue],
                                token_start=i,
                                token_end=end,
                            )
                        )
                        i = end
                        matched = True
                        break
            if not matched:
                i += 1
        return mentions

    def extract_venue_ids(self, text: str) -> list[int]:
        """Convenience: just the venue ids mentioned in ``text``."""
        return [m.venue_id for m in self.extract(text)]
