"""U.S. state name / abbreviation normalization.

The profile parser accepts registered locations in both the
``"Los Angeles, California"`` and ``"Los Angeles, CA"`` forms, so it
needs the full bidirectional mapping.  DC is included because the
gazetteer carries Washington, DC.
"""

from __future__ import annotations

#: Abbreviation -> full state name.
STATE_NAMES: dict[str, str] = {
    "AL": "Alabama",
    "AK": "Alaska",
    "AZ": "Arizona",
    "AR": "Arkansas",
    "CA": "California",
    "CO": "Colorado",
    "CT": "Connecticut",
    "DE": "Delaware",
    "DC": "District of Columbia",
    "FL": "Florida",
    "GA": "Georgia",
    "HI": "Hawaii",
    "ID": "Idaho",
    "IL": "Illinois",
    "IN": "Indiana",
    "IA": "Iowa",
    "KS": "Kansas",
    "KY": "Kentucky",
    "LA": "Louisiana",
    "ME": "Maine",
    "MD": "Maryland",
    "MA": "Massachusetts",
    "MI": "Michigan",
    "MN": "Minnesota",
    "MS": "Mississippi",
    "MO": "Missouri",
    "MT": "Montana",
    "NE": "Nebraska",
    "NV": "Nevada",
    "NH": "New Hampshire",
    "NJ": "New Jersey",
    "NM": "New Mexico",
    "NY": "New York",
    "NC": "North Carolina",
    "ND": "North Dakota",
    "OH": "Ohio",
    "OK": "Oklahoma",
    "OR": "Oregon",
    "PA": "Pennsylvania",
    "RI": "Rhode Island",
    "SC": "South Carolina",
    "SD": "South Dakota",
    "TN": "Tennessee",
    "TX": "Texas",
    "UT": "Utah",
    "VT": "Vermont",
    "VA": "Virginia",
    "WA": "Washington",
    "WV": "West Virginia",
    "WI": "Wisconsin",
    "WY": "Wyoming",
}

#: Lowercased full state name -> abbreviation.
STATE_ABBREVIATIONS: dict[str, str] = {
    name.casefold(): abbrev for abbrev, name in STATE_NAMES.items()
}


def normalize_state(text: str) -> str | None:
    """Normalize a state string to its 2-letter abbreviation.

    Accepts abbreviations in any case ("tx", "TX") and full names
    ("Texas", "NEW YORK").  Returns ``None`` when the text is not a
    U.S. state.

    >>> normalize_state("texas")
    'TX'
    >>> normalize_state("D.C.")
    'DC'
    >>> normalize_state("my home") is None
    True
    """
    cleaned = text.strip().replace(".", "")
    upper = cleaned.upper()
    if upper in STATE_NAMES:
        return upper
    return STATE_ABBREVIATIONS.get(" ".join(cleaned.casefold().split()))
