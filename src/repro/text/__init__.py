"""Text substrate: tokenization, place-name normalization, extraction.

The paper extracts two text-derived signals:

- **registered locations** from user profile fields, accepted only in
  the forms ``"cityName, stateName"`` / ``"cityName, stateAbbreviation"``
  (the rules of Cheng et al. CIKM'10) -- :mod:`repro.text.profile_parser`;
- **venues** mentioned in tweet bodies, matched against the gazetteer's
  venue vocabulary -- :mod:`repro.text.venues`.
"""

from repro.text.normalize import (
    STATE_ABBREVIATIONS,
    STATE_NAMES,
    normalize_state,
)
from repro.text.profile_parser import ParsedProfileLocation, parse_profile_location
from repro.text.tokenizer import tokenize
from repro.text.venues import VenueExtractor, VenueMention

__all__ = [
    "STATE_ABBREVIATIONS",
    "STATE_NAMES",
    "ParsedProfileLocation",
    "VenueExtractor",
    "VenueMention",
    "normalize_state",
    "parse_profile_location",
    "tokenize",
]
