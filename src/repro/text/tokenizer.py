"""A small, deterministic tweet tokenizer.

Venue extraction needs word boundaries that survive tweet punctuation
(hashtags, @-mentions, URLs, emoji runs).  We keep the rules explicit
and testable rather than reaching for a full NLP stack:

- URLs, @-mentions are dropped (they carry no venue signal);
- the ``#`` of a hashtag is stripped but the tag text is kept
  ("#austin" is exactly the kind of venue mention we want);
- remaining text is lowercased and split on non-alphanumeric runs,
  keeping internal apostrophes out ("let's" -> "let", "s" is avoided by
  treating the apostrophe as a joiner and dropping one-letter pieces).
"""

from __future__ import annotations

import re

_URL_RE = re.compile(r"https?://\S+|www\.\S+", re.IGNORECASE)
_MENTION_RE = re.compile(r"@\w+")
_TOKEN_RE = re.compile(r"[a-z0-9]+(?:'[a-z0-9]+)?")


def tokenize(text: str) -> list[str]:
    """Tokenize tweet text into lowercase word tokens.

    >>> tokenize("See Gaga in Hollywood! http://t.co/x @lucy #Austin")
    ['see', 'gaga', 'in', 'hollywood', 'austin']
    """
    text = _URL_RE.sub(" ", text)
    text = _MENTION_RE.sub(" ", text)
    text = text.replace("#", " ")
    tokens = _TOKEN_RE.findall(text.casefold())
    return [tok.replace("'", "") for tok in tokens if len(tok) > 1]
