"""Parse registered locations from Twitter profile fields.

Sec. 5 of the paper: *"we extracted locations with city-level labels in
the form of 'cityName, stateName' and 'cityName, stateAbbreviation'"*
(the rules of Cheng et al. CIKM'10), resolving against the gazetteer.
Everything else -- nonsensical ("my home"), state-only ("CA"), blank --
is rejected, exactly the filtering that makes only ~16% of users
"labeled".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.gazetteer import Gazetteer, Location
from repro.text.normalize import normalize_state


@dataclass(frozen=True, slots=True)
class ParsedProfileLocation:
    """A successfully parsed city-level registered location."""

    location: Location
    raw_text: str


def parse_profile_location(
    text: str | None, gazetteer: Gazetteer
) -> ParsedProfileLocation | None:
    """Parse a profile location field into a gazetteer location.

    Returns ``None`` unless the field is of the form
    ``"cityName, stateName"`` or ``"cityName, stateAbbrev"`` *and* the
    city/state pair resolves in the gazetteer.

    >>> gaz = __import__("repro.geo", fromlist=["builtin_gazetteer"]).builtin_gazetteer()
    >>> parse_profile_location("Los Angeles, CA", gaz).location.name
    'Los Angeles, CA'
    >>> parse_profile_location("los angeles, california", gaz).location.name
    'Los Angeles, CA'
    >>> parse_profile_location("CA", gaz) is None
    True
    >>> parse_profile_location("my home", gaz) is None
    True
    """
    if not text:
        return None
    raw = text.strip()
    if "," not in raw:
        return None
    city_part, _, state_part = raw.rpartition(",")
    city_part = city_part.strip()
    state = normalize_state(state_part)
    if not city_part or state is None:
        return None
    location = gazetteer.lookup_city_state(city_part, state)
    if location is None:
        return None
    return ParsedProfileLocation(location=location, raw_text=raw)
