"""CI perf-regression gate: bench_run.json vs the committed baseline.

The benchmark harness (``make bench-smoke``) writes machine-readable
measurements to ``benchmarks/results/bench_run.json``.  This gate
compares that run against ``benchmarks/results/baseline.json`` -- a
*committed* contract naming, per benchmark, the machine-independent
numbers (speedup ratios, not wall-clock seconds) that must not drop
below their floor.  A PR that silently costs the vectorized engine its
2x, the batch fold-in its 5x or the delta splice its 10x fails CI here
instead of shipping.

Baseline format (one entry per check)::

    {"checks": [
        {"name": "batch_foldin_throughput",   # matched on the journal
         "match": {"name": "batch_foldin_throughput"},  # entry fields
         "field": "batch_over_sequential",
         "min": 5.0},                          # optional: "max", too
        {"name": "columnar scaling points",
         "match": {"name": "columnar_generate_compile"},
         "count": 3},                          # presence-only check
        {"name": "partitioned engine speedup",
         "match": {"name": "partitioned_head_to_head"},
         "field": "partitioned_over_vectorized",
         "min": 2.0,
         "requires_env": "BENCH_LARGE"}        # gated benchmark
    ]}

A check carrying ``requires_env`` is evaluated only when that
environment variable is set truthy (anything but empty/``"0"``): the
large-world scaling points take minutes, so default CI runs skip both
the benchmarks and their gates together, while ``make bench-large``
runs and gates them.

Every check must match at least one journal entry (a vanished
benchmark is itself a regression).  Run directly or via
``make bench-gate``::

    python tools/bench_gate.py
    python tools/bench_gate.py --run path/to/bench_run.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RUN = REPO_ROOT / "benchmarks" / "results" / "bench_run.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "results" / "baseline.json"


def merge_run_entry(entry: dict, run_path: Path = DEFAULT_RUN) -> Path:
    """Merge one timing entry into the bench run journal in place.

    Out-of-band harnesses (``tools/loadgen.py --compare-workers``)
    call this so their measurements sit in ``bench_run.json`` next to
    the pytest bench suite's and are gateable by the same baseline
    checks.  An existing entry with the same ``name`` is replaced, not
    duplicated; a missing run file is created with a bare skeleton.
    """
    try:
        run = json.loads(run_path.read_text())
    except FileNotFoundError:
        run = {"exit_status": 0, "entries": []}
    run["entries"] = [
        existing
        for existing in run.get("entries", [])
        if existing.get("name") != entry.get("name")
    ]
    run["entries"].append(entry)
    run_path.parent.mkdir(parents=True, exist_ok=True)
    run_path.write_text(json.dumps(run, indent=2) + "\n")
    return run_path


def matching_entries(entries: list[dict], match: dict) -> list[dict]:
    """Journal entries whose fields equal every ``match`` item."""
    return [
        entry
        for entry in entries
        if all(entry.get(key) == value for key, value in match.items())
    ]


def run_check(check: dict, entries: list[dict]) -> list[str]:
    """Evaluate one baseline check; returns failure messages (empty = pass)."""
    name = check.get("name", "<unnamed check>")
    matched = matching_entries(entries, check.get("match", {}))
    failures: list[str] = []
    if not matched:
        return [
            f"{name}: no journal entry matches {check.get('match', {})} "
            "(benchmark removed or renamed without updating the baseline?)"
        ]
    expected_count = check.get("count")
    if expected_count is not None and len(matched) < expected_count:
        failures.append(
            f"{name}: expected >= {expected_count} matching entries, "
            f"found {len(matched)}"
        )
    field = check.get("field")
    if field is None:
        return failures
    for entry in matched:
        if field not in entry:
            failures.append(f"{name}: entry lacks field {field!r}: {entry}")
            continue
        value = entry[field]
        low, high = check.get("min"), check.get("max")
        if low is not None and value < low:
            failures.append(
                f"{name}: {field} = {value} dropped below the baseline "
                f"floor {low}"
            )
        if high is not None and value > high:
            failures.append(
                f"{name}: {field} = {value} exceeds the baseline "
                f"ceiling {high}"
            )
    return failures


def gate(run_path: Path, baseline_path: Path) -> int:
    """Compare one bench run against the baseline; 0 = pass, 1 = fail."""
    try:
        run = json.loads(run_path.read_text())
    except FileNotFoundError:
        print(
            f"bench-gate: no bench run at {run_path} -- run "
            "`make bench-smoke` first",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(baseline_path.read_text())
    entries = [
        entry for entry in run.get("entries", ())
        if entry.get("kind") == "timing"
    ]
    if run.get("exit_status") not in (0, None):
        print(
            f"bench-gate: bench run recorded exit status "
            f"{run['exit_status']} -- fix the benchmarks before gating",
            file=sys.stderr,
        )
        return 1
    failures: list[str] = []
    passed = 0
    skipped = 0
    for check in baseline.get("checks", ()):
        env = check.get("requires_env")
        if env and os.environ.get(env, "") in ("", "0"):
            skipped += 1
            continue
        problems = run_check(check, entries)
        if problems:
            failures.extend(problems)
        else:
            passed += 1
    for message in failures:
        print(f"bench-gate: FAIL {message}", file=sys.stderr)
    total = passed + len(failures)
    skipped_note = f", {skipped} env-gated checks skipped" if skipped else ""
    if failures:
        print(
            f"bench-gate: {len(failures)} of {total} checks failed "
            f"against {baseline_path.name}{skipped_note}",
            file=sys.stderr,
        )
        return 1
    print(
        f"bench-gate: all {passed} baseline checks passed{skipped_note} "
        f"({run.get('python', '?')} / numpy {run.get('numpy', '?')})"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Gate bench_run.json against the committed baseline bands."""
    parser = argparse.ArgumentParser(
        description="fail when bench_run.json regresses past the "
        "committed baseline bands"
    )
    parser.add_argument(
        "--run",
        type=Path,
        default=DEFAULT_RUN,
        help="bench run journal (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline contract (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    return gate(args.run, args.baseline)


if __name__ == "__main__":
    sys.exit(main())
