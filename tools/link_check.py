"""Markdown link lint: relative links and anchors must resolve.

Walks ``README.md`` and ``docs/*.md``, extracts every inline markdown
link, and fails when a **relative** link points at a file that does not
exist or an ``#anchor`` that no heading in the target document
generates.  External (``http://``/``https://``/``mailto:``) links are
skipped -- this gate is about keeping the repo's *internal*
cross-references (README -> docs/API.md -> OBSERVABILITY.md -> ...)
from rotting, not about probing the network from CI.

Anchors are derived from headings with GitHub's slug rules: lowercase,
spaces to hyphens, punctuation dropped, duplicate slugs suffixed
``-1``, ``-2``, ...

Run directly or via ``make link-check`` (part of the lint CI job)::

    python tools/link_check.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documents whose outgoing relative links are checked.
CHECKED_DOCS = ("README.md", "docs/*.md")

#: Inline markdown links: ``[text](target)``, ignoring images' leading
#: ``!`` (image targets are checked the same way).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

CODE_FENCE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor slug: lowercase, drop punctuation."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def document_anchors(path: Path) -> set[str]:
    """Every anchor the document's headings generate (slug rules)."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def extract_links(path: Path) -> list[str]:
    """All inline link targets outside fenced code blocks."""
    targets: list[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        targets.extend(LINK.findall(line))
    return targets


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "ftp://"))


def broken_links(root: Path) -> list[str]:
    """Human-readable diagnostics for every unresolvable link."""
    documents: list[Path] = []
    for pattern in CHECKED_DOCS:
        documents.extend(sorted(root.glob(pattern)))
    problems: list[str] = []
    for doc in documents:
        for target in extract_links(doc):
            if _is_external(target):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = (doc.parent / file_part).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{doc.relative_to(root)}: broken link "
                        f"{target!r} (no such file)"
                    )
                    continue
            else:
                resolved = doc
            if anchor:
                if resolved.suffix != ".md" or not resolved.is_file():
                    continue  # anchors into non-markdown: not checkable
                if anchor not in document_anchors(resolved):
                    problems.append(
                        f"{doc.relative_to(root)}: broken anchor "
                        f"{target!r} (no heading generates "
                        f"#{anchor} in {resolved.name})"
                    )
    return problems


def main() -> int:
    """Run the lint; print broken links and return an exit code."""
    problems = broken_links(REPO_ROOT)
    if problems:
        print("link-check: broken relative links:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    n_docs = sum(len(list(REPO_ROOT.glob(p))) for p in CHECKED_DOCS)
    print(f"link-check: OK ({n_docs} documents)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
