"""Documentation lint: public modules *and* functions need docstrings.

Walks ``src/repro`` (and the benchmark/tool scripts), parses each file
with :mod:`ast`, and fails with a list when a module -- or any public
function or method inside one -- lacks a docstring.  "Public" follows
Python convention: anything whose name does not start with ``_``, minus
a few families whose contract lives elsewhere:

- ``test_*`` functions (the assertion *is* the documentation) and
  pytest fixture/hook machinery in test-style files;
- dunders (``__init__``, ``__iter__``, ...): documented by the class;
- ``@overload`` stubs and one-line ``@property`` trampolines are still
  checked -- a reader landing on them deserves a sentence too.

This codebase treats docstrings as the primary architecture
documentation (see docs/ARCHITECTURE.md), so an undocumented public
surface is a build error, not a style nit.

Run directly or via ``make docs-check``::

    python tools/docs_check.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories whose .py files must carry module docstrings.
CHECKED_TREES = ("src/repro", "benchmarks", "tools", "examples")

#: Function-name prefixes exempt from the function-docstring rule.
EXEMPT_PREFIXES = ("_", "test_")


def _is_public_def(node: ast.AST) -> bool:
    """True for a named def/async def that the docstring rule covers."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    name = node.name
    if name.startswith(EXEMPT_PREFIXES):
        return False
    if name.startswith("__") and name.endswith("__"):
        return False
    return True


def undocumented_functions(tree: ast.Module) -> list[ast.FunctionDef]:
    """Public functions/methods in *tree* without a docstring.

    Walks the whole module, so methods of nested classes are covered;
    functions defined *inside* other functions are implementation
    detail and stay exempt.
    """
    flagged: list[ast.FunctionDef] = []
    enclosing: list[ast.AST] = [tree]
    while enclosing:
        scope = enclosing.pop()
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                enclosing.append(node)
            elif _is_public_def(node):
                if not ast.get_docstring(node):
                    flagged.append(node)
    return flagged


def missing_docstrings(root: Path) -> list[str]:
    """``path`` / ``path:line name()`` diagnostics for every gap."""
    missing: list[str] = []
    for tree in CHECKED_TREES:
        for path in sorted((root / tree).rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            try:
                node = ast.parse(source, filename=str(path))
            except SyntaxError as exc:  # unparseable is worse than undocumented
                raise SystemExit(f"docs-check: cannot parse {path}: {exc}")
            rel = path.relative_to(root)
            if not ast.get_docstring(node):
                missing.append(f"{rel} (module docstring)")
            for fn in sorted(undocumented_functions(node), key=lambda f: f.lineno):
                missing.append(f"{rel}:{fn.lineno} {fn.name}()")
    return missing


def main() -> int:
    """Run the lint; print gaps and return an exit code."""
    missing = missing_docstrings(REPO_ROOT)
    if missing:
        print("docs-check: public surface without a docstring:")
        for entry in missing:
            print(f"  {entry}")
        print(f"docs-check: {len(missing)} missing")
        return 1
    total = sum(
        len(list((REPO_ROOT / tree).rglob("*.py"))) for tree in CHECKED_TREES
    )
    print(f"docs-check: OK ({total} modules, all public functions documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
