"""Documentation lint: every public module must carry a docstring.

Walks ``src/repro`` (and the benchmark/tool scripts), parses each file
with :mod:`ast`, and fails with a file list when a module lacks a
docstring.  "Public" means every module in the package -- this codebase
treats module docstrings as the primary architecture documentation (see
docs/ARCHITECTURE.md), so an undocumented module is a build error, not
a style nit.

Run directly or via ``make docs-check``::

    python tools/docs_check.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories whose .py files must carry module docstrings.
CHECKED_TREES = ("src/repro", "benchmarks", "tools", "examples")


def modules_missing_docstrings(root: Path) -> list[Path]:
    """Paths under the checked trees whose module docstring is absent."""
    missing = []
    for tree in CHECKED_TREES:
        for path in sorted((root / tree).rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            try:
                node = ast.parse(source, filename=str(path))
            except SyntaxError as exc:  # unparseable is worse than undocumented
                raise SystemExit(f"docs-check: cannot parse {path}: {exc}")
            if not ast.get_docstring(node):
                missing.append(path.relative_to(root))
    return missing


def main() -> int:
    missing = modules_missing_docstrings(REPO_ROOT)
    if missing:
        print("docs-check: modules without a module docstring:")
        for path in missing:
            print(f"  {path}")
        return 1
    total = sum(
        len(list((REPO_ROOT / tree).rglob("*.py"))) for tree in CHECKED_TREES
    )
    print(f"docs-check: OK ({total} modules documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
