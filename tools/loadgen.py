"""Open-loop load harness for the repro serving layer.

Drives a running ``repro serve`` instance with a Poisson arrival
process (seeded, so a run is reproducible) over a mixed workload of
``POST /predict-home`` and ``POST /ingest`` requests, then reports
throughput and latency quantiles and appends them to the performance
trajectory journal (``benchmarks/results/bench_trajectory.jsonl``)
under ``"source": "loadgen"``.

Open loop means arrivals are dispatched on schedule regardless of how
fast the server answers -- the harness measures the latency a given
*offered* load produces instead of letting a slow server throttle its
own measurement (closed-loop coordination omission).  Each arrival runs
on its own thread; ``--max-inflight`` bounds runaway concurrency if the
server falls far behind.

Usage::

    python tools/loadgen.py --url http://127.0.0.1:8000 \\
        --rate 200 --duration 10 --ingest-fraction 0.05

    # Self-contained smoke (builds a tiny artifact, serves in-process):
    PYTHONPATH=src python tools/loadgen.py --smoke

    # Same, but through the multi-process topology (store + forked
    # workers + coalescing front end):
    PYTHONPATH=src python tools/loadgen.py --smoke --workers 2

    # Head-to-head worker scaling; merges a ``loadgen_worker_scaling``
    # entry (with ``rps_ratio``) into bench_run.json for bench_gate:
    PYTHONPATH=src python tools/loadgen.py --smoke --compare-workers 1,4

``--spec-mode unique`` sends every predict request with a fresh random
evidence spec (explicit friends/venues) instead of replaying known
users, defeating the LRU cache so posterior solves dominate the served
work.  Replayed traffic measures the HTTP plane; unique traffic
measures solve throughput, which is what extra worker processes scale.

Exit status is non-zero when the error rate exceeds ``--max-error-rate``
(default 1%), so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
TOOLS_DIR = Path(__file__).resolve().parent


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    """Parse the load-harness CLI flags."""
    parser = argparse.ArgumentParser(
        prog="loadgen",
        description="Open-loop Poisson load harness for `repro serve`.",
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8000",
        help="server base URL (default: %(default)s)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=100.0,
        help="mean offered load in requests/second (default: %(default)s)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=10.0,
        help="length of the arrival schedule in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--ingest-fraction",
        type=float,
        default=0.05,
        help="fraction of arrivals that POST /ingest instead of "
        "/predict-home (default: %(default)s)",
    )
    parser.add_argument(
        "--spec-mode",
        choices=("replay", "unique"),
        default=None,
        help="predict workload: 'replay' known users (cache-friendly) "
        "or 'unique' random evidence specs (cache-busting; solves "
        "dominate).  Defaults to replay, or unique under "
        "--compare-workers.",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed for arrivals and workload (default: %(default)s)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="cap on concurrently dispatched requests (default: %(default)s)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request timeout in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--max-error-rate",
        type=float,
        default=0.01,
        help="exit non-zero past this error fraction (default: %(default)s)",
    )
    parser.add_argument(
        "--label",
        default="loadgen",
        help="timing entry name in the trajectory journal "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--no-journal",
        action="store_true",
        help="print the summary but do not append to bench_trajectory.jsonl",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="self-contained mode: fit a tiny artifact, serve it "
        "in-process, drive a short load, then exit (needs "
        "PYTHONPATH=src)",
    )
    parser.add_argument(
        "--smoke-users",
        type=int,
        default=120,
        help="world size for --smoke (default: %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="for --smoke: serve through the multi-process topology "
        "with N forked workers (0 = threaded server; default: "
        "%(default)s)",
    )
    parser.add_argument(
        "--coalesce-ms",
        type=float,
        default=2.0,
        help="micro-batch coalescing window for --workers > 0 "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--compare-workers",
        default=None,
        metavar="N,M[,...]",
        help="run the smoke load once per worker count (0 = threaded), "
        "report each, and merge a loadgen_worker_scaling entry with "
        "rps_ratio (last vs first count) into bench_run.json "
        "(implies --smoke; e.g. --compare-workers 1,4)",
    )
    return parser.parse_args(argv)


def poisson_arrivals(
    rate: float, duration: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival offsets (seconds) of a Poisson process over [0, duration)."""
    if rate <= 0 or duration <= 0:
        return np.empty(0, dtype=np.float64)
    # Draw enough exponential gaps to cover the window, then trim.
    expected = int(rate * duration * 1.5) + 32
    gaps = rng.exponential(1.0 / rate, size=expected)
    times = np.cumsum(gaps)
    while times.size and times[-1] < duration:
        gaps = rng.exponential(1.0 / rate, size=expected)
        times = np.concatenate([times, times[-1] + np.cumsum(gaps)])
    return times[times < duration]


def _request(
    url: str, payload: dict | list | None, timeout: float
) -> tuple[int, float]:
    """One HTTP call; returns (status, latency_seconds)."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    t0 = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        error.read()
        status = error.code
    except (urllib.error.URLError, OSError, TimeoutError):
        status = 0
    return status, time.perf_counter() - t0


def build_predict_specs(
    spec_mode: str,
    n_requests: int,
    n_users: int,
    n_venues: int,
    rng: np.random.Generator,
) -> list[dict]:
    """One predict-home user entry per arrival, drawn deterministically.

    ``replay`` re-asks about known users (the cache answers most of
    them); ``unique`` fabricates a fresh evidence spec each time so
    every request costs a posterior solve.
    """
    specs: list[dict] = []
    for _ in range(n_requests):
        if spec_mode == "unique":
            k = int(rng.integers(3, 9))
            spec = {"friends": rng.integers(0, n_users, size=k).tolist()}
            if n_venues:
                spec["venues"] = rng.integers(0, n_venues, size=2).tolist()
            specs.append(spec)
        else:
            specs.append({"user_id": int(rng.integers(0, n_users))})
    return specs


def run_load(
    base_url: str,
    rate: float,
    duration: float,
    ingest_fraction: float,
    seed: int,
    max_inflight: int,
    timeout: float,
    spec_mode: str = "replay",
) -> dict:
    """Drive the open-loop schedule; returns the summary dict."""
    rng = np.random.default_rng(seed)
    status, artifact, _ = _get_json(f"{base_url}/artifact", timeout)
    if status != 200:
        raise RuntimeError(
            f"cannot reach {base_url}/artifact (status {status}); "
            "is the server running?"
        )
    n_users = int(artifact["users"])
    n_venues = int(artifact.get("venues", 0))

    arrivals = poisson_arrivals(rate, duration, rng)
    kinds = rng.random(arrivals.size) < ingest_fraction
    specs = build_predict_specs(
        spec_mode, arrivals.size, n_users, n_venues, rng
    )

    results: list[tuple[str, int, float]] = []
    results_lock = threading.Lock()
    inflight = threading.Semaphore(max_inflight)
    threads: list[threading.Thread] = []

    def fire(kind: str, spec: dict) -> None:
        try:
            if kind == "ingest":
                status, latency = _request(
                    f"{base_url}/ingest", {"new_users": [{}]}, timeout
                )
            else:
                status, latency = _request(
                    f"{base_url}/predict-home", {"users": [spec]}, timeout
                )
            with results_lock:
                results.append((kind, status, latency))
        finally:
            inflight.release()

    start = time.perf_counter()
    for offset, is_ingest, spec in zip(
        arrivals.tolist(), kinds.tolist(), specs
    ):
        now = time.perf_counter() - start
        if offset > now:
            time.sleep(offset - now)
        inflight.acquire()
        kind = "ingest" if is_ingest else "predict"
        thread = threading.Thread(target=fire, args=(kind, spec), daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=timeout + 5)
    elapsed = time.perf_counter() - start

    summary = summarize(results, offered=arrivals.size, elapsed=elapsed)
    summary["spec_mode"] = spec_mode
    return summary


def _get_json(url: str, timeout: float) -> tuple[int, dict, float]:
    t0 = time.perf_counter()
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return (
                response.status,
                json.loads(response.read()),
                time.perf_counter() - t0,
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), time.perf_counter() - t0
    except (urllib.error.URLError, OSError, TimeoutError):
        return 0, {}, time.perf_counter() - t0


def summarize(
    results: list[tuple[str, int, float]], offered: int, elapsed: float
) -> dict:
    """Throughput + latency quantiles over one completed run."""
    latencies = np.array([latency for _, _, latency in results])
    ok = sum(1 for _, status, _ in results if status == 200)
    errors = len(results) - ok
    summary = {
        "offered": int(offered),
        "completed": len(results),
        "ok": ok,
        "errors": errors,
        "error_rate": (errors / len(results)) if results else 1.0,
        "duration_s": round(elapsed, 3),
        "rps": round(len(results) / elapsed, 2) if elapsed > 0 else 0.0,
        "predict_requests": sum(1 for k, _, _ in results if k == "predict"),
        "ingest_requests": sum(1 for k, _, _ in results if k == "ingest"),
    }
    if latencies.size:
        summary.update(
            p50_ms=round(float(np.percentile(latencies, 50)) * 1e3, 3),
            p95_ms=round(float(np.percentile(latencies, 95)) * 1e3, 3),
            p99_ms=round(float(np.percentile(latencies, 99)) * 1e3, 3),
            max_ms=round(float(latencies.max()) * 1e3, 3),
        )
    return summary


def _git_commit() -> str | None:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).parent,
            check=True,
        ).stdout.strip()
    except Exception:
        return None


def append_trajectory(summary: dict, label: str) -> Path:
    """Append one loadgen run to the shared perf trajectory journal."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "source": "loadgen",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "platform": platform.platform(),
        "commit": _git_commit(),
        "timings": [{"kind": "timing", "name": label, **summary}],
    }
    path = RESULTS_DIR / "bench_trajectory.jsonl"
    with path.open("a") as fh:
        fh.write(json.dumps(entry) + "\n")
    return path


def _fit_smoke_result(args: argparse.Namespace):
    """Fit the tiny smoke artifact once; reused across compared configs."""
    from repro.core.model import MLPModel
    from repro.core.params import MLPParams
    from repro.data.generator import SyntheticWorldConfig, generate_world

    world = generate_world(
        SyntheticWorldConfig(n_users=args.smoke_users, seed=7)
    )
    params = MLPParams(
        n_iterations=8,
        burn_in=3,
        seed=0,
        engine="vectorized",
        track_edge_assignments=False,
    )
    return MLPModel(params).fit(world)


def _serve_threaded(predictor):
    """Stand up the threaded server; returns (base_url, stop_callable)."""
    from repro.serving.server import make_server

    server = make_server(predictor, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]

    def stop() -> None:
        server.shutdown()
        server.server_close()

    return f"http://{host}:{port}", stop


def _serve_multiprocess(predictor, workers: int, coalesce_ms: float):
    """Stand up store + worker pool + coalescing front end in-process."""
    import shutil
    import tempfile

    from repro.serving.frontend import FrontendThread, make_frontend
    from repro.serving.store import WorldStore

    store_dir = tempfile.mkdtemp(prefix="loadgen-store-")
    store = WorldStore(store_dir, predictor.world.gazetteer)
    frontend = make_frontend(
        predictor,
        store,
        n_workers=workers,
        port=0,
        coalesce_ms=coalesce_ms,
    )
    thread = FrontendThread(frontend).start()

    def stop() -> None:
        try:
            thread.stop()
        finally:
            store.close()
            shutil.rmtree(store_dir, ignore_errors=True)

    return f"http://127.0.0.1:{thread.port}", stop


def run_smoke(args: argparse.Namespace, result=None) -> dict:
    """Fit a tiny artifact, serve it in-process, and drive a short load."""
    from repro.serving.foldin import FoldInPredictor

    if result is None:
        result = _fit_smoke_result(args)
    # A fresh predictor per run: ingests advance the served world, and
    # compared configs must all start from the same generation 0.
    predictor = FoldInPredictor(result, artifact_id="loadgen-smoke")
    if args.workers > 0:
        base_url, stop = _serve_multiprocess(
            predictor, args.workers, args.coalesce_ms
        )
    else:
        base_url, stop = _serve_threaded(predictor)
    try:
        return run_load(
            base_url=base_url,
            rate=args.rate,
            duration=args.duration,
            ingest_fraction=args.ingest_fraction,
            seed=args.seed,
            max_inflight=args.max_inflight,
            timeout=args.timeout,
            spec_mode=args.spec_mode,
        )
    finally:
        stop()


def _annotate(summary: dict, args: argparse.Namespace) -> dict:
    summary["rate"] = args.rate
    summary["ingest_fraction"] = args.ingest_fraction
    summary["seed"] = args.seed
    summary["workers"] = args.workers
    summary["coalesce_ms"] = args.coalesce_ms if args.workers > 0 else None
    return summary


def run_compare(args: argparse.Namespace, counts: list[int]) -> int:
    """Drive the identical smoke load once per worker count.

    Fits one artifact, serves it per config (0 = threaded, N = that
    many forked workers), and merges a ``loadgen_worker_scaling``
    timing entry -- carrying ``rps_ratio`` of the last count over the
    first -- into ``bench_run.json`` so ``make bench-gate`` can hold a
    multi-worker throughput floor (env-gated on ``LOADGEN_SCALE``).
    """
    sys.path.insert(0, str(TOOLS_DIR))
    from bench_gate import DEFAULT_RUN, merge_run_entry

    result = _fit_smoke_result(args)
    summaries: dict[int, dict] = {}
    worst_error_rate = 0.0
    for workers in counts:
        per_run = argparse.Namespace(**vars(args))
        per_run.workers = workers
        summary = _annotate(run_smoke(per_run, result=result), per_run)
        summaries[workers] = summary
        worst_error_rate = max(worst_error_rate, summary["error_rate"])
        mode = "threaded" if workers == 0 else f"{workers} workers"
        print(
            f"[loadgen] {mode}: {summary['rps']} rps, "
            f"p50 {summary.get('p50_ms', '?')} ms, "
            f"p99 {summary.get('p99_ms', '?')} ms, "
            f"errors {summary['errors']}",
            file=sys.stderr,
        )
        if not args.no_journal:
            append_trajectory(summary, f"{args.label}_w{workers}")
    base, top = counts[0], counts[-1]
    ratio = (
        summaries[top]["rps"] / summaries[base]["rps"]
        if summaries[base]["rps"]
        else 0.0
    )
    entry = {
        "kind": "timing",
        "name": "loadgen_worker_scaling",
        "workers": counts,
        "rps": {str(n): summaries[n]["rps"] for n in counts},
        "p99_ms": {str(n): summaries[n].get("p99_ms") for n in counts},
        "rps_ratio": round(ratio, 3),
        "spec_mode": args.spec_mode,
        "rate": args.rate,
        "duration": args.duration,
        "ingest_fraction": args.ingest_fraction,
        "coalesce_ms": args.coalesce_ms,
        "seed": args.seed,
    }
    print(json.dumps(entry, indent=2))
    if not args.no_journal:
        path = merge_run_entry(entry, DEFAULT_RUN)
        print(f"[loadgen] merged scaling entry into {path}", file=sys.stderr)
    if worst_error_rate > args.max_error_rate:
        print(
            f"[loadgen] error rate {worst_error_rate:.3f} exceeds "
            f"--max-error-rate {args.max_error_rate}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Run the load harness per CLI flags; return an exit code."""
    args = parse_args(argv)
    if args.compare_workers is not None:
        args.smoke = True
        try:
            counts = [int(part) for part in args.compare_workers.split(",")]
        except ValueError:
            print(
                f"[loadgen] bad --compare-workers {args.compare_workers!r}; "
                "expected comma-separated integers like 1,4",
                file=sys.stderr,
            )
            return 2
        if len(counts) < 2:
            print(
                "[loadgen] --compare-workers needs at least two counts",
                file=sys.stderr,
            )
            return 2
        # Scaling is about solve throughput, so bust the cache and
        # offer more load than one worker can absorb.
        if args.spec_mode is None:
            args.spec_mode = "unique"
        if args.rate == 100.0:
            args.rate = 400.0
        if args.duration == 10.0:
            args.duration = 4.0
        return run_compare(args, counts)
    if args.spec_mode is None:
        args.spec_mode = "replay"
    if args.smoke:
        # Short, self-contained, CI-friendly defaults unless overridden.
        if args.rate == 100.0:
            args.rate = 50.0
        if args.duration == 10.0:
            args.duration = 4.0
        summary = run_smoke(args)
    else:
        summary = run_load(
            base_url=args.url.rstrip("/"),
            rate=args.rate,
            duration=args.duration,
            ingest_fraction=args.ingest_fraction,
            seed=args.seed,
            max_inflight=args.max_inflight,
            timeout=args.timeout,
            spec_mode=args.spec_mode,
        )
    _annotate(summary, args)
    print(json.dumps(summary, indent=2))
    if not args.no_journal:
        path = append_trajectory(summary, args.label)
        print(f"[loadgen] appended run to {path}", file=sys.stderr)
    if summary["error_rate"] > args.max_error_rate:
        print(
            f"[loadgen] error rate {summary['error_rate']:.3f} exceeds "
            f"--max-error-rate {args.max_error_rate}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
