"""Shared fixtures.

Expensive artifacts (gazetteer, synthetic worlds, one fitted MLP) are
session-scoped: the suite builds each exactly once and treats them as
immutable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.geo.us_cities import builtin_gazetteer


@pytest.fixture(scope="session")
def gazetteer():
    """The embedded US-city gazetteer (immutable, shared)."""
    return builtin_gazetteer()


@pytest.fixture(scope="session")
def tiny_world():
    """A 60-user world for fast structural tests."""
    return generate_world(SyntheticWorldConfig(n_users=60, seed=5))


@pytest.fixture(scope="session")
def small_world():
    """A 250-user world for sampler and evaluation tests."""
    return generate_world(SyntheticWorldConfig(n_users=250, seed=13))


@pytest.fixture(scope="session")
def small_params():
    """A short-but-real inference schedule for the small world."""
    return MLPParams(n_iterations=12, burn_in=5, seed=3)


@pytest.fixture(scope="session")
def fitted_result(small_world, small_params):
    """One full MLP fit on the small world, shared by result-shape tests."""
    return MLPModel(small_params).fit(small_world)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
